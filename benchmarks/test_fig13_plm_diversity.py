"""Fig 13: diversity with PLM / PEARLM baselines.

Paper shape: PLM-family baselines are more diverse than PGPR/CAFE, but
PCST still enhances diversity further."""

from statistics import mean

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig13_plm_diversity(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure13, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig13_plm_diversity", render_panels("Fig 13", panels))

    k = ci_bench.config.k_max
    wins = 0
    total = 0
    for series in panels.values():
        if k in series["PCST"] and k in series[BASELINE]:
            total += 1
            if series["PCST"][k] >= series[BASELINE][k] - 0.02:
                wins += 1
    assert wins >= total * 0.5
