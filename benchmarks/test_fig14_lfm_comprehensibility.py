"""Fig 14: comprehensibility on the LFM1M-shaped dataset.

Paper shape: the ML1M conclusions (Fig 2) carry over unchanged."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig14_lfm_comprehensibility(benchmark, lfm_bench, emit):
    panels = benchmark.pedantic(
        figures.figure14, args=(lfm_bench,), rounds=1, iterations=1
    )
    emit("fig14_lfm_comprehensibility", render_panels("Fig 14", panels))

    k = lfm_bench.config.k_max
    st = f"ST λ={lfm_bench.config.lambdas[-1]:g}"
    for name, series in panels.items():
        if k in series[st] and k in series[BASELINE]:
            assert series[st][k] > series[BASELINE][k], name
