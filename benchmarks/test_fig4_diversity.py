"""Fig 4: diversity vs k.

Paper shape: baselines lowest (fixed 3-hop repetition), PCST highest."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig4_diversity(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure4, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig4_diversity", render_panels("Fig 4", panels))

    k = ci_bench.config.k_max
    wins = 0
    total = 0
    for series in panels.values():
        if k in series["PCST"] and k in series[BASELINE]:
            total += 1
            if series["PCST"][k] >= series[BASELINE][k]:
                wins += 1
    assert wins >= total * 0.6
