"""§VI: the simulated user study (paper: 78.67% prefer summaries)."""

from repro.experiments.report import format_table
from repro.experiments.user_study import simulate_user_study


def test_user_study_sim(benchmark, ci_bench, emit):
    result = benchmark.pedantic(
        simulate_user_study,
        args=(ci_bench,),
        kwargs={"num_participants": 30, "num_pairs": 5},
        rounds=1,
        iterations=1,
    )
    rows = [["preference for summaries", f"{result.preference_share:.2%}"]]
    rows.extend(
        [f"usefulness: {metric}", f"{rating:.2f}/5"]
        for metric, rating in result.metric_ratings.items()
    )
    emit(
        "user_study",
        format_table(
            "User study (simulated; paper reports 78.67% and 4.52/4.45 "
            "top ratings)",
            ["quantity", "value"],
            rows,
        ),
    )
    assert result.preference_share > 0.6
    assert 1.0 <= result.metric_ratings["comprehensibility"] <= 5.0
