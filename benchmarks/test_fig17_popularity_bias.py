"""Fig 17: comprehensibility for popular vs unpopular items (CAFE).

Paper shape: the baseline's comprehensibility is significantly worse for
unpopular items; the summaries do not exhibit that bias."""

from statistics import mean

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig17_popularity_bias(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure17, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig17_popularity_bias", render_panels("Fig 17", panels))

    if set(panels) >= {"popular", "unpopular"}:
        def mean_of(bucket, label):
            points = panels[bucket].get(label, {})
            return mean(points.values()) if points else None

        st = f"ST λ={ci_bench.config.lambdas[1]:g}"
        base_gap = _gap(mean_of("popular", BASELINE),
                        mean_of("unpopular", BASELINE))
        st_gap = _gap(mean_of("popular", st), mean_of("unpopular", st))
        if base_gap is not None and st_gap is not None:
            # Summarization narrows (or at least does not widen much)
            # the popular/unpopular comprehensibility gap.
            assert st_gap <= base_gap * 2.0 + 0.05


def _gap(a, b):
    if a is None or b is None:
        return None
    return abs(a - b)
