"""Ablations called out in DESIGN.md / the paper's future work:

- PCST prize policies (binary vs weight-range vs centrality vs item-
  boosted) — §VII "testing additional PCST prize assignment policies";
- GW strong pruning vs the paper's growth heuristic;
- Union-of-paths summary vs ST (the §III strawman);
- weighted-PCST (the configuration the paper tried and rejected).
"""

from statistics import mean

from repro.core.pcst_summary import PCSTSummarizer, PrizePolicy
from repro.core.scenarios import Scenario
from repro.experiments.report import format_table
from repro.metrics import (
    actionability,
    comprehensibility,
    evaluate_explanation,
)


def _user_tasks(bench, k=6, limit=6):
    tasks = bench.tasks(Scenario.USER_CENTRIC, "PGPR", k)
    return list(tasks.values())[:limit]


def test_pcst_prize_policy_ablation(benchmark, ci_bench, emit):
    tasks = _user_tasks(ci_bench)

    def run():
        rows = []
        for policy in PrizePolicy:
            summarizer = PCSTSummarizer(
                ci_bench.graph, prize_policy=policy, side_prize=0.4
            )
            summaries = [summarizer.summarize(t) for t in tasks]
            rows.append(
                [
                    policy.value,
                    mean(s.subgraph.num_edges for s in summaries),
                    mean(comprehensibility(s) for s in summaries),
                    mean(actionability(s) for s in summaries),
                    mean(s.terminal_coverage for s in summaries),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_prize_policies",
        format_table(
            "Ablation: PCST prize policies (user-centric, k=6)",
            ["policy", "edges", "comprehens.", "actionability", "coverage"],
            rows,
        ),
    )
    by_policy = {row[0]: row for row in rows}
    # Item-boosted prizes should not hurt actionability vs binary.
    assert (
        by_policy["item-boosted"][3] >= by_policy["binary"][3] - 0.1
    )


def test_strong_pruning_ablation(benchmark, ci_bench, emit):
    tasks = _user_tasks(ci_bench)

    def run():
        grown = [
            PCSTSummarizer(ci_bench.graph).summarize(t) for t in tasks
        ]
        pruned = [
            PCSTSummarizer(
                ci_bench.graph, strong_pruning=True
            ).summarize(t)
            for t in tasks
        ]
        return (
            mean(s.subgraph.num_nodes for s in grown),
            mean(s.subgraph.num_nodes for s in pruned),
            mean(s.terminal_coverage for s in pruned),
        )

    grown_nodes, pruned_nodes, pruned_coverage = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_strong_pruning",
        format_table(
            "Ablation: GW strong pruning (binary prizes collapse, "
            "explaining why the paper skips it)",
            ["variant", "mean nodes", "terminal coverage"],
            [
                ["growth heuristic", grown_nodes, 1.0],
                ["strong pruning", pruned_nodes, pruned_coverage],
            ],
        ),
    )
    assert pruned_nodes <= grown_nodes


def test_union_vs_st_ablation(benchmark, ci_bench, emit):
    tasks = _user_tasks(ci_bench)

    def run():
        st = ci_bench.summarizer(f"ST λ={ci_bench.config.lambdas[1]:g}")
        union = ci_bench.summarizer("Union")
        st_reports = [
            evaluate_explanation(st.summarize(t), ci_bench.graph)
            for t in tasks
        ]
        union_reports = [
            evaluate_explanation(union.summarize(t), ci_bench.graph)
            for t in tasks
        ]
        return st_reports, union_reports

    st_reports, union_reports = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    st_comp = mean(r.comprehensibility for r in st_reports)
    union_comp = mean(r.comprehensibility for r in union_reports)
    emit(
        "ablation_union_vs_st",
        format_table(
            "Ablation: union-of-paths strawman vs ST (§III)",
            ["method", "mean comprehensibility"],
            [["Union", union_comp], ["ST", st_comp]],
        ),
    )
    # The ST summary must beat the naive union it motivates.
    assert st_comp >= union_comp


def test_weighted_pcst_ablation(benchmark, ci_bench, emit):
    """The paper: 'using edge weights in the PCST summarization led to
    excessively large summaries', which is why the experiments use unit
    costs and binary prizes. The rejected configuration is the §IV-B
    formal one — weight-range prizes over weighted edges."""
    tasks = _user_tasks(ci_bench, k=4, limit=4)

    def run():
        plain = [
            PCSTSummarizer(ci_bench.graph).summarize(t) for t in tasks
        ]
        weighted = [
            PCSTSummarizer(
                ci_bench.graph,
                use_edge_weights=True,
                prize_policy=PrizePolicy.WEIGHT_RANGE,
            ).summarize(t)
            for t in tasks
        ]
        return (
            mean(s.subgraph.num_edges for s in plain),
            mean(s.subgraph.num_edges for s in weighted),
        )

    plain_edges, weighted_edges = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_weighted_pcst",
        format_table(
            "Ablation: PCST simplified (unit costs, binary prizes) vs "
            "the rejected §IV-B formal configuration",
            ["variant", "mean edges"],
            [
                ["unit costs + binary prizes (paper)", plain_edges],
                ["edge weights + weight-range prizes", weighted_edges],
            ],
        ),
    )
    # "Excessively large": the formal configuration blows up.
    assert weighted_edges > plain_edges
