"""Observability overhead benchmark: the ≤3% tracing-disabled gate.

Runs the same skewed batch of group-summary tasks against a synthetic
10k-node knowledge graph on the processes backend under three
observability settings:

- **off** — ``ObservabilityConfig(metrics=False, trace=False)``: the
  baseline with every telemetry hook compiled down to one attribute
  check that fails.
- **default** — ``ObservabilityConfig()`` (metrics on, tracing off):
  what every session ships with. The CI gate lives here — the default
  configuration may cost at most 3% wall-clock over the fully-off
  baseline.
- **traced** — metrics + tracing on: informational only, recorded so
  the artifact shows what opting in costs.

Each leg pays pool spawn + graph export with a sacrificial warmup
batch before the clock starts, and runs the measured batch
``--repeats`` times taking the best (min) wall-clock, so scheduler
jitter does not fail the gate. Results land in the repo-root
``BENCH_obs.json`` trajectory artifact (joining ``BENCH_cache.json``
et al.).

Not a pytest module (the ``bench_`` prefix keeps it out of
collection); run it directly::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py \\
        --nodes 10000 --tasks 64 --assert-overhead  # the CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api import (  # noqa: E402
    ExplanationSession,
    ObservabilityConfig,
    ParallelConfig,
    SchedulerConfig,
)
from repro.core.scenarios import Scenario, SummaryTask  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    SyntheticSpec,
    generate_random_kg,
)

SEED = 11

#: The acceptance bound: default observability (metrics on, tracing
#: off) may cost at most this fraction of wall-clock over fully-off.
MAX_OVERHEAD = 0.03


def build_graph(nodes: int):
    spec = SyntheticSpec(nodes, edges_per_node=8.0)
    return generate_random_kg(spec, np.random.default_rng(SEED))


def skewed_tasks(graph, count: int) -> list[SummaryTask]:
    """Hot-set mix: eight users rotating in pairs over three items."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    hot_items = tuple(items[:3])
    tasks = []
    for i in range(count):
        group = (users[i % 8], users[(i + 1) % 8])
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_GROUP,
                terminals=(*group, *hot_items),
                paths=(),
                anchors=hot_items,
                focus=group,
            )
        )
    return tasks


def warmup_tasks(graph) -> list[SummaryTask]:
    """Tiny sacrificial batch (terminals outside the mix) that pays
    pool spawn + graph export before the clock starts."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    group = (users[-1], users[-2])
    picks = (items[-1], items[-2])
    return [
        SummaryTask(
            scenario=Scenario.USER_GROUP,
            terminals=(*group, *picks),
            paths=(),
            anchors=picks,
            focus=group,
        )
    ]


def run_leg(
    graph, tasks, *, obs: ObservabilityConfig, workers: int, repeats: int
) -> dict:
    session = ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=workers),
        scheduler=SchedulerConfig(mode="work-stealing"),
        obs=obs,
    )
    timings = []
    with session:
        session.run(warmup_tasks(graph))  # spawn pool, export graph
        for _ in range(repeats):
            start = time.perf_counter()
            report = session.run(tasks)
            timings.append(time.perf_counter() - start)
            if report.failed:
                raise RuntimeError(
                    f"{report.failed} tasks failed under obs={obs}"
                )
    best = min(timings)
    return {
        "elapsed_seconds": best,
        "tasks_per_second": len(tasks) / best,
        "all_runs_seconds": timings,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--tasks", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="measured runs per leg; the best (min) is compared",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_obs.json")
    )
    parser.add_argument(
        "--assert-overhead",
        action="store_true",
        help="exit 1 if default observability (metrics on, tracing "
        f"off) costs more than {MAX_OVERHEAD:.0%} over fully-off",
    )
    args = parser.parse_args()

    graph = build_graph(args.nodes)
    tasks = skewed_tasks(graph, args.tasks)
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges, "
        f"{args.tasks} tasks, {args.workers} process workers, "
        f"best of {args.repeats}"
    )

    legs = {}
    for name, obs in (
        ("off", ObservabilityConfig(metrics=False, trace=False)),
        ("default", ObservabilityConfig()),
        ("traced", ObservabilityConfig(metrics=True, trace=True)),
    ):
        legs[name] = run_leg(
            graph,
            tasks,
            obs=obs,
            workers=args.workers,
            repeats=args.repeats,
        )
        print(
            f"{name:8s} {legs[name]['elapsed_seconds']:7.3f}s"
            f" ({legs[name]['tasks_per_second']:6.1f} tasks/s)"
        )

    off = legs["off"]["elapsed_seconds"]
    overhead = (legs["default"]["elapsed_seconds"] - off) / off
    trace_overhead = (legs["traced"]["elapsed_seconds"] - off) / off
    print(
        f"default-vs-off overhead {overhead:+.2%} "
        f"(gate <= {MAX_OVERHEAD:.0%}), "
        f"traced-vs-off {trace_overhead:+.2%} (informational)"
    )

    artifact = {
        "schema": "bench-obs/v1",
        "cpu_count": os.cpu_count(),
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "tasks": args.tasks,
        "workers": args.workers,
        "repeats": args.repeats,
        "legs": legs,
        "default_overhead": overhead,
        "traced_overhead": trace_overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.assert_overhead and overhead > MAX_OVERHEAD:
        print(
            f"GATE FAILED: default observability overhead "
            f"{overhead:+.2%} > {MAX_OVERHEAD:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
