"""Fig 16: comprehensibility and diversity across (β1, β2) mixes.

Paper shape: rating-dominant weighting maximizes comprehensibility;
recency-dominant weighting maximizes diversity."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig


def test_fig16_recency(benchmark, ci_config, emit):
    panels = benchmark.pedantic(
        figures.figure16, args=(ci_config,), rounds=1, iterations=1
    )
    blocks = []
    from repro.experiments.report import format_series_table

    for panel, series in panels.items():
        blocks.append(
            format_series_table(
                f"Fig 16 [{panel}]", series, x_label="β1/β2"
            )
        )
    emit("fig16_recency", "\n\n".join(blocks))

    for panel, series in panels.items():
        comp = series["comprehensibility"]
        div = series["diversity"]
        assert comp and div, panel
        # All five combos produce valid metric values.
        assert all(v > 0 for v in comp.values())
        assert all(0 <= v <= 1 for v in div.values())
