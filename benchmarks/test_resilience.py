"""Resilience benchmark: batch completion under injected worker crashes.

The claim under test (ISSUE 7): supervised recovery degrades
*proportionally* — a worker crash costs roughly one task redo plus one
respawn, not a collapse of the whole batch to the serial fallback (the
pre-supervision behavior, where the first dead worker broke the pool
and the session re-ran everything locally).

The workload is the familiar 10k-node synthetic graph serving
singleton user-centric tasks. Three timed runs inject 0 / 1 / 2
crashes via seeded :class:`FaultPlan.scatter` plans — identical task
lists, identical crash sites per seed — and the gates assert:

- every run completes all tasks successfully (retry budget absorbs
  the crashes; zero typed failures, zero local fallbacks);
- ``SessionStats.worker_deaths`` equals the injected crash count;
- results stay bit-identical to the crash-free run;
- wall-clock degradation stays bounded (each crash costs at most a
  flush-grace + respawn + redo, far under a serial fallback).

Refreshes the repo-root ``BENCH_resilience.json`` trajectory artifact
(uploaded by the CI ``chaos`` job).
"""

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro.api import ExplanationSession, ParallelConfig, SchedulerConfig
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.paths import Path as GraphPath
from repro.graph.shortest_paths import bfs_distances_indexed
from repro.graph.types import NodeType
from repro.serving.config import ResilienceConfig
from repro.serving.faults import FaultPlan

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_NODES = 10_000
NUM_TASKS = 48
ITEMS_PER_TASK = 2
CRASH_COUNTS = (0, 1, 2)
SCATTER_SEED = 23
#: Per-crash overhead bound: the injected flush grace (0.2s) + a
#: worker respawn + one task redo, with headroom for one-core CI. A
#: serial-fallback collapse re-runs all NUM_TASKS and blows way past
#: this.
PER_CRASH_BUDGET_SECONDS = 2.5


def _singleton_workload():
    """10k nodes; NUM_TASKS user-centric singleton tasks."""
    spec = SyntheticSpec(NUM_NODES, edges_per_node=8.0)
    graph = generate_random_kg(spec, np.random.default_rng(11))
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen, max(range(frozen.num_nodes), key=frozen.degree)
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    items = sorted(
        (n for n in in_component if NodeType.of(n) is NodeType.ITEM),
        key=graph.degree,
        reverse=True,
    )[:40]
    users = [n for n in in_component if NodeType.of(n) is NodeType.USER]
    assert len(users) >= NUM_TASKS and len(items) >= ITEMS_PER_TASK
    tasks = []
    for index in range(NUM_TASKS):
        user = users[index]
        chosen = tuple(
            items[(index * ITEMS_PER_TASK + j) % len(items)]
            for j in range(ITEMS_PER_TASK)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *chosen),
                paths=tuple(
                    GraphPath(nodes=(user, item))
                    for item in chosen
                    if graph.has_edge(user, item)
                ),
                anchors=chosen,
                focus=(user,),
                k=ITEMS_PER_TASK,
            )
        )
    return graph, tasks


def _canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


def _timed_chaos_run(graph, tasks, crashes: int, workers: int):
    """One warm batch with ``crashes`` injected worker kills."""
    plan = FaultPlan.scatter(SCATTER_SEED, len(tasks), crashes=crashes)
    session = ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=workers),
        scheduler=SchedulerConfig(max_workers=workers),
        resilience=ResilienceConfig(max_task_retries=3),
        faults=plan if crashes else None,
    )
    with warnings.catch_warnings():
        # A silent local fallback would time the wrong code path.
        warnings.simplefilter("error", RuntimeWarning)
        with session:
            session.run(tasks[:workers])  # spawn + freeze, off-clock
            start = time.perf_counter()
            report = session.run(tasks)
            seconds = time.perf_counter() - start
            stats = session.stats
    assert len(report.results) == len(tasks)
    assert report.failed == 0
    assert all(result.ok for result in report.results)
    assert stats.worker_deaths == crashes
    assert stats.local_fallbacks == 0
    return report, {
        "crashes": crashes,
        "crash_sites": sorted(fault.at for fault in plan.faults),
        "workers": workers,
        "seconds": seconds,
        "ops_per_sec": len(tasks) / seconds,
        "worker_deaths": stats.worker_deaths,
        "task_retries": stats.task_retries,
        "retried": report.retried,
    }


def test_resilience_degradation_artifact(emit):
    cpus = os.cpu_count() or 1
    workers = min(4, max(2, cpus))
    graph, tasks = _singleton_workload()

    reports, rows = [], []
    for crashes in CRASH_COUNTS:
        report, row = _timed_chaos_run(graph, tasks, crashes, workers)
        reports.append(report)
        rows.append(row)

    # Crashes must not change a single bit of any successful result.
    baseline_report = reports[0]
    for report in reports[1:]:
        for want, got in zip(baseline_report.results, report.results):
            assert _canonical(got.explanation) == (
                _canonical(want.explanation)
            ), got.index

    # Proportional degradation: each crash buys one bounded redo, not
    # a fall back to re-running the whole batch serially.
    baseline = rows[0]["seconds"]
    for row in rows[1:]:
        budget = baseline + row["crashes"] * PER_CRASH_BUDGET_SECONDS
        assert row["seconds"] <= budget, (
            f"{row['crashes']} crash(es) took {row['seconds']:.2f}s; "
            f"budget {budget:.2f}s (baseline {baseline:.2f}s)"
        )

    artifact = {
        "schema": "bench-resilience/v1",
        "cpu_count": cpus,
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "tasks": NUM_TASKS,
        "method": "ST",
        "scatter_seed": SCATTER_SEED,
        "per_crash_budget_seconds": PER_CRASH_BUDGET_SECONDS,
        "results": rows,
    }
    (REPO_ROOT / "BENCH_resilience.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    emit(
        "resilience",
        "\n".join(
            [
                f"{NUM_TASKS} singleton tasks, {workers} workers "
                f"({cpus} cpus), retry budget 3:",
                *(
                    f"  {row['crashes']} crash(es): "
                    f"{row['seconds']:6.2f} s "
                    f"{row['ops_per_sec']:7.1f} tasks/s | "
                    f"deaths={row['worker_deaths']} "
                    f"retried={row['retried']}"
                    for row in rows
                ),
            ]
        ),
    )
