"""Fig 2: comprehensibility vs k, 8 panels (scenario x PGPR/CAFE).

Paper shape: ST beats everything; PCST beats baselines only in
user-group scenarios; baselines decay ~1/(3k)."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig2_comprehensibility(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure2, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig2_comprehensibility", render_panels("Fig 2", panels))

    k = ci_bench.config.k_max
    st = f"ST λ={ci_bench.config.lambdas[-1]:g}"
    # ST > baseline at k_max; strict in the user panels, tie-tolerant in
    # the item panels where CI-scale audiences can be single paths (a
    # one-path "set" and its summary are identical by construction).
    for name, series in panels.items():
        if k in series[st] and k in series[BASELINE]:
            if name.startswith("user"):
                assert series[st][k] > series[BASELINE][k], name
            else:
                assert series[st][k] >= series[BASELINE][k], name
    # PCST beats the baseline in the user-group panels.
    for name in ("user-group PGPR", "user-group CAFE"):
        series = panels[name]
        assert series["PCST"][k] > series[BASELINE][k], name
