"""Micro-benchmarks of the two summarization kernels (honest multi-round
pytest-benchmark timing, unlike the one-shot figure reproductions)."""

import pytest

from repro.core.scenarios import Scenario
from repro.graph.pcst import paper_pcst
from repro.graph.steiner import steiner_tree


@pytest.fixture(scope="module")
def kernel_inputs(ci_bench):
    task = next(
        iter(ci_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 10).values())
    )
    group_task = next(
        iter(ci_bench.tasks(Scenario.USER_GROUP, "PGPR", 10).values())
    )
    return ci_bench.graph, task, group_task


def test_steiner_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    tree = benchmark(
        steiner_tree, graph, list(task.terminals), lambda u, v, w: 1.0
    )
    assert tree.num_nodes >= len(task.terminals)


def test_pcst_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    prizes = {t: 1.0 for t in task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 1


def test_steiner_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    tree = benchmark.pedantic(
        steiner_tree,
        args=(graph, list(group_task.terminals), lambda u, v, w: 1.0),
        rounds=2,
        iterations=1,
    )
    assert tree.num_nodes >= 2


def test_pcst_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    prizes = {t: 1.0 for t in group_task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 2
