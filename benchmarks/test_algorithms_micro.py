"""Micro-benchmarks of the two summarization kernels (honest multi-round
pytest-benchmark timing, unlike the one-shot figure reproductions), plus
the CSR engine benchmarks: dict vs frozen Dijkstra on a ~10k-node
synthetic graph, and batch vs per-task summarization throughput over
100+ tasks (the freeze-then-batch acceptance gate)."""

import time

import numpy as np
import pytest

from repro.core.batch import BatchSummarizer
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.pcst import paper_pcst
from repro.graph.shortest_paths import (
    bfs_distances_indexed,
    dijkstra,
    dijkstra_indexed,
)
from repro.graph.steiner import steiner_tree
from repro.graph.types import NodeType


@pytest.fixture(scope="module")
def kernel_inputs(ci_bench):
    task = next(
        iter(ci_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 10).values())
    )
    group_task = next(
        iter(ci_bench.tasks(Scenario.USER_GROUP, "PGPR", 10).values())
    )
    return ci_bench.graph, task, group_task


def test_steiner_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    tree = benchmark(
        steiner_tree, graph, list(task.terminals), lambda u, v, w: 1.0
    )
    assert tree.num_nodes >= len(task.terminals)


def test_pcst_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    prizes = {t: 1.0 for t in task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 1


def test_steiner_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    tree = benchmark.pedantic(
        steiner_tree,
        args=(graph, list(group_task.terminals), lambda u, v, w: 1.0),
        rounds=2,
        iterations=1,
    )
    assert tree.num_nodes >= 2


def test_pcst_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    prizes = {t: 1.0 for t in group_task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 2


# ----------------------------------------------------------------------
# CSR engine: dict vs frozen traversal, single vs batch throughput
# ----------------------------------------------------------------------
NUM_BATCH_TASKS = 100
ITEMS_PER_TASK = 5
POOL_SIZE = 40  # popular-item pool shared across tasks (like real top-k)


@pytest.fixture(scope="module")
def synthetic_graph():
    """~10k-node synthetic KG (Table III shape, thinned edge budget)."""
    spec = SyntheticSpec(10_000, edges_per_node=8.0)
    return generate_random_kg(spec, np.random.default_rng(7))


@pytest.fixture(scope="module")
def batch_tasks(synthetic_graph):
    """100+ user-centric tasks over a shared popular-item pool.

    Users and items are restricted to one connected component (so no
    task triggers the narrowing fallback) and items are drawn from a
    degree-sorted pool, mirroring how production top-k lists concentrate
    on popular items — the overlap the closure cache feeds on.
    """
    graph = synthetic_graph
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen,
        max(range(frozen.num_nodes), key=frozen.degree),
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    items = sorted(
        (n for n in in_component if NodeType.of(n) is NodeType.ITEM),
        key=graph.degree,
        reverse=True,
    )[:POOL_SIZE]
    users = [
        n for n in in_component if NodeType.of(n) is NodeType.USER
    ][:NUM_BATCH_TASKS]
    assert len(users) == NUM_BATCH_TASKS and len(items) == POOL_SIZE
    tasks = []
    for index, user in enumerate(users):
        chosen = tuple(
            items[(index * ITEMS_PER_TASK + j) % len(items)]
            for j in range(ITEMS_PER_TASK)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *chosen),
                paths=(),
                anchors=chosen,
                focus=(user,),
                k=ITEMS_PER_TASK,
            )
        )
    return tasks


def test_dijkstra_dict_kernel(benchmark, synthetic_graph):
    source = next(iter(synthetic_graph.nodes()))
    dist, _ = benchmark.pedantic(
        dijkstra, args=(synthetic_graph, source), rounds=3, iterations=1
    )
    assert len(dist) > 1


def test_dijkstra_csr_kernel(benchmark, synthetic_graph):
    frozen = synthetic_graph.freeze()
    source_id = next(iter(synthetic_graph.nodes()))
    dist, prev = benchmark.pedantic(
        dijkstra_indexed,
        args=(frozen, frozen.index_of(source_id)),
        rounds=3,
        iterations=1,
    )
    # Parity with the dict kernel: distances AND predecessor trees.
    dict_dist, dict_prev = dijkstra(synthetic_graph, source_id)
    ids = frozen.ids
    assert dict_dist == {ids[n]: d for n, d in dist.items()}
    assert dict_prev == {ids[n]: ids[p] for n, p in prev.items()}


def test_batch_vs_single_task_loop(synthetic_graph, batch_tasks, emit):
    """The acceptance gate: BatchSummarizer beats the per-task loop."""
    single = Summarizer(synthetic_graph, method="ST")
    start = time.perf_counter()
    expected = [single.summarize(task) for task in batch_tasks]
    single_seconds = time.perf_counter() - start

    engine = BatchSummarizer(synthetic_graph, method="ST")
    report = engine.run(batch_tasks)

    for exp, result in zip(expected, report.results):
        assert sorted(exp.subgraph.nodes()) == sorted(
            result.explanation.subgraph.nodes()
        )
        assert {e.key() for e in exp.subgraph.edges()} == {
            e.key() for e in result.explanation.subgraph.edges()
        }

    emit(
        "batch_throughput",
        "\n".join(
            [
                f"single-task loop: {single_seconds * 1000.0:9.1f} ms "
                f"({len(batch_tasks) / single_seconds:.1f} tasks/s)",
                report.summary(),
                f"speedup: {single_seconds / report.total_seconds:.2f}x",
            ]
        ),
    )
    assert report.cache_hits > 0
    assert report.total_seconds < single_seconds
