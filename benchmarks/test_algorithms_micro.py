"""Micro-benchmarks of the two summarization kernels (honest multi-round
pytest-benchmark timing, unlike the one-shot figure reproductions), plus
the CSR engine benchmarks: dict vs frozen Dijkstra / Mehlhorn / PCST on
synthetic graphs — emitting the machine-readable
``results/BENCH_engine.json`` perf-trajectory artifact and asserting the
indexed Mehlhorn and PCST speedups (>= 1.3x on the 10k-node graph) —
and batch vs per-task summarization throughput over 100+ tasks (the
freeze-then-batch acceptance gate)."""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import BatchSummarizer
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.mehlhorn import mehlhorn_steiner_tree
from repro.graph.pcst import paper_pcst
from repro.graph.shortest_paths import (
    bfs_distances_indexed,
    dijkstra,
    dijkstra_indexed,
)
from repro.graph.steiner import steiner_tree
from repro.graph.types import NodeType

# Mirrors conftest.RESULTS_DIR without importing conftest (a bare
# conftest import breaks whole-repo collection runs).
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def kernel_inputs(ci_bench):
    task = next(
        iter(ci_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 10).values())
    )
    group_task = next(
        iter(ci_bench.tasks(Scenario.USER_GROUP, "PGPR", 10).values())
    )
    return ci_bench.graph, task, group_task


def test_steiner_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    tree = benchmark(
        steiner_tree, graph, list(task.terminals), lambda u, v, w: 1.0
    )
    assert tree.num_nodes >= len(task.terminals)


def test_pcst_kernel_user_centric(benchmark, kernel_inputs):
    graph, task, _ = kernel_inputs
    prizes = {t: 1.0 for t in task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 1


def test_steiner_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    tree = benchmark.pedantic(
        steiner_tree,
        args=(graph, list(group_task.terminals), lambda u, v, w: 1.0),
        rounds=2,
        iterations=1,
    )
    assert tree.num_nodes >= 2


def test_pcst_kernel_group(benchmark, kernel_inputs):
    graph, _, group_task = kernel_inputs
    prizes = {t: 1.0 for t in group_task.terminals}
    forest = benchmark(paper_pcst, graph, prizes)
    assert forest.num_nodes >= 2


# ----------------------------------------------------------------------
# CSR engine: dict vs frozen traversal, single vs batch throughput
# ----------------------------------------------------------------------
NUM_BATCH_TASKS = 100
ITEMS_PER_TASK = 5
POOL_SIZE = 40  # popular-item pool shared across tasks (like real top-k)


@pytest.fixture(scope="module")
def synthetic_graph():
    """~10k-node synthetic KG (Table III shape, thinned edge budget)."""
    spec = SyntheticSpec(10_000, edges_per_node=8.0)
    return generate_random_kg(spec, np.random.default_rng(7))


@pytest.fixture(scope="module")
def batch_tasks(synthetic_graph):
    """100+ user-centric tasks over a shared popular-item pool.

    Users and items are restricted to one connected component (so no
    task triggers the narrowing fallback) and items are drawn from a
    degree-sorted pool, mirroring how production top-k lists concentrate
    on popular items — the overlap the closure cache feeds on.
    """
    graph = synthetic_graph
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen,
        max(range(frozen.num_nodes), key=frozen.degree),
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    items = sorted(
        (n for n in in_component if NodeType.of(n) is NodeType.ITEM),
        key=graph.degree,
        reverse=True,
    )[:POOL_SIZE]
    users = [
        n for n in in_component if NodeType.of(n) is NodeType.USER
    ][:NUM_BATCH_TASKS]
    assert len(users) == NUM_BATCH_TASKS and len(items) == POOL_SIZE
    tasks = []
    for index, user in enumerate(users):
        chosen = tuple(
            items[(index * ITEMS_PER_TASK + j) % len(items)]
            for j in range(ITEMS_PER_TASK)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *chosen),
                paths=(),
                anchors=chosen,
                focus=(user,),
                k=ITEMS_PER_TASK,
            )
        )
    return tasks


def test_dijkstra_dict_kernel(benchmark, synthetic_graph):
    source = next(iter(synthetic_graph.nodes()))
    dist, _ = benchmark.pedantic(
        dijkstra, args=(synthetic_graph, source), rounds=3, iterations=1
    )
    assert len(dist) > 1


def test_dijkstra_csr_kernel(benchmark, synthetic_graph):
    frozen = synthetic_graph.freeze()
    source_id = next(iter(synthetic_graph.nodes()))
    dist, prev = benchmark.pedantic(
        dijkstra_indexed,
        args=(frozen, frozen.index_of(source_id)),
        rounds=3,
        iterations=1,
    )
    # Parity with the dict kernel: distances AND predecessor trees.
    dict_dist, dict_prev = dijkstra(synthetic_graph, source_id)
    ids = frozen.ids
    assert dict_dist == {ids[n]: d for n, d in dist.items()}
    assert dict_prev == {ids[n]: ids[p] for n, p in prev.items()}


# ----------------------------------------------------------------------
# Engine comparison artifact: method x engine x graph size -> ops/s
# ----------------------------------------------------------------------
ENGINE_BENCH_SIZES = (2_500, 10_000)
ENGINE_BENCH_ROUNDS = 3
ENGINE_BENCH_TERMINALS = 24
MIN_ENGINE_SPEEDUP = 1.3  # CI gate on the 10k-node graph


def _component_terminals(graph, count):
    """Deterministic high-degree terminals within one component."""
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen, max(range(frozen.num_nodes), key=frozen.degree)
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    return sorted(in_component, key=graph.degree, reverse=True)[:count]


def _best_seconds(fn, rounds=ENGINE_BENCH_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_speedups_artifact(emit):
    """Time every ported kernel on both engines, persist the trajectory
    as machine-readable JSON, and gate the 10k-node speedups."""
    unit = lambda _u, _v, _w: 1.0  # noqa: E731
    rows = []
    speedups_10k = {}
    for num_nodes in ENGINE_BENCH_SIZES:
        spec = SyntheticSpec(num_nodes, edges_per_node=8.0)
        graph = generate_random_kg(spec, np.random.default_rng(7))
        frozen = graph.freeze()
        terminals = _component_terminals(graph, ENGINE_BENCH_TERMINALS)
        prizes = {t: 1.0 for t in terminals}
        unit_costs = frozen.costs_from(unit)
        source = terminals[0]
        source_idx = frozen.index_of(source)

        timings = {
            ("dijkstra", "dict"): _best_seconds(
                lambda: dijkstra(graph, source)
            ),
            ("dijkstra", "csr"): _best_seconds(
                lambda: dijkstra_indexed(frozen, source_idx)
            ),
            ("mehlhorn", "dict"): _best_seconds(
                lambda: mehlhorn_steiner_tree(graph, terminals, cost_fn=unit)
            ),
            ("mehlhorn", "csr"): _best_seconds(
                lambda: mehlhorn_steiner_tree(
                    graph,
                    terminals,
                    cost_fn=unit,
                    frozen=frozen,
                    slot_costs=unit_costs,
                )
            ),
            ("pcst", "dict"): _best_seconds(
                lambda: paper_pcst(graph, prizes, seeds=terminals)
            ),
            ("pcst", "csr"): _best_seconds(
                lambda: paper_pcst(
                    graph, prizes, seeds=terminals, frozen=frozen
                )
            ),
        }
        for (method, engine), seconds in timings.items():
            rows.append(
                {
                    "method": method,
                    "engine": engine,
                    "graph_nodes": graph.num_nodes,
                    "graph_edges": graph.num_edges,
                    "seconds": seconds,
                    "ops_per_sec": 1.0 / seconds if seconds > 0 else None,
                }
            )
        if num_nodes == 10_000:
            for method in ("dijkstra", "mehlhorn", "pcst"):
                speedups_10k[method] = (
                    timings[(method, "dict")] / timings[(method, "csr")]
                )

    artifact = {
        "schema": "bench-engine/v1",
        "rounds": ENGINE_BENCH_ROUNDS,
        "terminals": ENGINE_BENCH_TERMINALS,
        "results": rows,
        "speedups_10k": speedups_10k,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    emit(
        "engine_speedups",
        "\n".join(
            [
                "dict -> csr speedups (10k-node graph, best of "
                f"{ENGINE_BENCH_ROUNDS}):",
                *(
                    f"  {method:<9} {speedup:5.2f}x"
                    for method, speedup in speedups_10k.items()
                ),
                "full trajectory in results/BENCH_engine.json",
            ]
        ),
    )
    # The CI gate: each ported hot loop must beat its dict oracle.
    assert speedups_10k["mehlhorn"] >= MIN_ENGINE_SPEEDUP
    assert speedups_10k["pcst"] >= MIN_ENGINE_SPEEDUP


def test_batch_vs_single_task_loop(synthetic_graph, batch_tasks, emit):
    """The acceptance gate: BatchSummarizer beats the per-task loop."""
    single = Summarizer(synthetic_graph, method="ST")
    start = time.perf_counter()
    expected = [single.summarize(task) for task in batch_tasks]
    single_seconds = time.perf_counter() - start

    engine = BatchSummarizer(synthetic_graph, method="ST")
    report = engine.run(batch_tasks)

    for exp, result in zip(expected, report.results):
        assert sorted(exp.subgraph.nodes()) == sorted(
            result.explanation.subgraph.nodes()
        )
        assert {e.key() for e in exp.subgraph.edges()} == {
            e.key() for e in result.explanation.subgraph.edges()
        }

    emit(
        "batch_throughput",
        "\n".join(
            [
                f"single-task loop: {single_seconds * 1000.0:9.1f} ms "
                f"({len(batch_tasks) / single_seconds:.1f} tasks/s)",
                report.summary(),
                f"speedup: {single_seconds / report.total_seconds:.2f}x",
            ]
        ),
    )
    assert report.cache_hits > 0
    assert report.total_seconds < single_seconds
