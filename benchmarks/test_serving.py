"""Scheduler comparison: work-stealing vs static chunking on a skewed mix.

The workload is the serving layer's worst case for static chunks: a
10k-node graph serving 64 tasks of which 4 are heavy group scenarios
(a dozen users x a pool of items, ~22 terminals each, each worth
dozens of singletons) sitting at the *end* of the batch, behind 60
singletons. Static ``ceil(n / 4w)`` chunking packs all four stragglers
into the final chunk — one worker grinds them sequentially while the
rest of the pool idles — whereas work-stealing spreads them one per
worker the moment they surface. (Four heavies land in one chunk for
every pool width the gate runs at: chunk size is 4 at w=4, 6 at w=3,
8 at w=2 — the straggler cluster never outnumbers the idle workers.)

Emits the repo-root ``BENCH_serving.json`` trajectory artifact and
gates (on multi-core machines) the two CI acceptance criteria:

- work-stealing completes the skewed mix >= 1.2x faster than static
  chunking (same backend, same worker count, warm pools);
- the first streamed result lands before the first static chunk would
  (gated on every machine — one task always beats a four-task chunk).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import ExplanationSession, ParallelConfig, SchedulerConfig
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.paths import Path as GraphPath
from repro.graph.shortest_paths import bfs_distances_indexed
from repro.graph.types import NodeType

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_NODES = 10_000
NUM_TASKS = 64
NUM_HEAVY = 4
HEAVY_USERS = 12
HEAVY_ITEMS = 10
LIGHT_ITEMS = 2
MIN_STEAL_SPEEDUP = 1.2  # CI gate, multi-core only


def _skewed_workload():
    """10k nodes; 60 singletons followed by 4 heavy group tasks."""
    spec = SyntheticSpec(NUM_NODES, edges_per_node=8.0)
    graph = generate_random_kg(spec, np.random.default_rng(11))
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen, max(range(frozen.num_nodes), key=frozen.degree)
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    items = sorted(
        (n for n in in_component if NodeType.of(n) is NodeType.ITEM),
        key=graph.degree,
        reverse=True,
    )[:40]
    users = [n for n in in_component if NodeType.of(n) is NodeType.USER]
    num_light = NUM_TASKS - NUM_HEAVY
    needed = num_light + NUM_HEAVY * HEAVY_USERS
    assert len(users) >= needed and len(items) >= HEAVY_ITEMS

    def boost_paths(user_pool, item_pool):
        return tuple(
            GraphPath(nodes=(user, item))
            for user in user_pool
            for item in item_pool
            if graph.has_edge(user, item)
        )

    tasks = []
    for index in range(num_light):
        user = users[index]
        chosen = tuple(
            items[(index * LIGHT_ITEMS + j) % len(items)]
            for j in range(LIGHT_ITEMS)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *chosen),
                paths=boost_paths([user], chosen),
                anchors=chosen,
                focus=(user,),
                k=LIGHT_ITEMS,
            )
        )
    # Every heavy task shares one popular-item pool (its cost comes from
    # its 12 unique users), so per-worker cache locality is identical
    # under any dispatch order — the schedulers race on scheduling
    # alone, not on which worker happens to have which items cached.
    heavy_items = tuple(items[:HEAVY_ITEMS])
    for heavy in range(NUM_HEAVY):
        group = users[
            num_light + heavy * HEAVY_USERS :
            num_light + (heavy + 1) * HEAVY_USERS
        ]
        chosen = heavy_items
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_GROUP,
                terminals=(*group, *chosen),
                paths=boost_paths(group, chosen),
                anchors=chosen,
                focus=tuple(group),
                k=HEAVY_ITEMS,
            )
        )
    assert len(tasks) == NUM_TASKS
    return graph, tasks


def _canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


def _timed_mode(graph, tasks, mode: str, workers: int):
    """Warm a pool for one scheduler mode, then time run() and stream()."""
    session = ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=workers),
        # max_workers pinned to the comparison's worker count so the
        # elastic pool cannot out-size the chunked executor it races.
        scheduler=SchedulerConfig(mode=mode, max_workers=workers),
    )
    with session:
        session.run(tasks[:workers])  # spawn + attach + freeze, off-clock
        start = time.perf_counter()
        report = session.run(tasks)
        seconds = time.perf_counter() - start
        stream_start = time.perf_counter()
        iterator = session.stream(tasks)
        next(iterator)
        first_ms = (time.perf_counter() - stream_start) * 1000.0
        for _ in iterator:
            pass
        stats = session.stats
        return report, {
            "scheduler": mode,
            "workers": workers,
            "seconds": seconds,
            "ops_per_sec": len(tasks) / seconds,
            "first_result_ms": first_ms,
            "latency_p50_ms": report.latency_p50_ms,
            "latency_p95_ms": report.latency_p95_ms,
            "steals": stats.steals,
            "grows": stats.grows,
            "peak_queue_depth": stats.peak_queue_depth,
        }


def test_serving_scheduler_artifact(emit):
    cpus = os.cpu_count() or 1
    workers = min(4, max(2, cpus))
    graph, tasks = _skewed_workload()

    stealing_report, stealing = _timed_mode(
        graph, tasks, "work-stealing", workers
    )
    chunked_report, chunked = _timed_mode(graph, tasks, "chunked", workers)

    # Bit-parity across schedulers on the full skewed mix.
    for a, b in zip(stealing_report.results, chunked_report.results):
        assert _canonical(a.explanation) == _canonical(b.explanation)

    speedup = chunked["seconds"] / stealing["seconds"]
    artifact = {
        "schema": "bench-serving/v1",
        "cpu_count": cpus,
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "tasks": NUM_TASKS,
        "heavy_tasks": NUM_HEAVY,
        "heavy_terminals": HEAVY_USERS + HEAVY_ITEMS,
        "method": "ST",
        "results": [stealing, chunked],
        "stealing_speedup_vs_chunked": speedup,
    }
    (REPO_ROOT / "BENCH_serving.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    emit(
        "serving_scheduler",
        "\n".join(
            [
                f"skewed mix: {NUM_TASKS - NUM_HEAVY} singletons + "
                f"{NUM_HEAVY} group tasks, {workers} workers "
                f"({cpus} cpus):",
                *(
                    f"  {row['scheduler']:<14} {row['seconds']:7.2f} s "
                    f"{row['ops_per_sec']:7.1f} tasks/s | first result "
                    f"{row['first_result_ms']:7.1f} ms | steals "
                    f"{row['steals']}"
                    for row in (stealing, chunked)
                ),
                f"work-stealing speedup vs chunked: {speedup:.2f}x",
                "trajectory in BENCH_serving.json (repo root)",
            ]
        ),
    )

    # A single task must always stream out before a 4-task chunk lands.
    assert stealing["first_result_ms"] < chunked["first_result_ms"], (
        stealing["first_result_ms"],
        chunked["first_result_ms"],
    )
    if cpus >= 2:
        # The CI acceptance gate; on one core both schedules serialize
        # and the ratio is noise, so it is recorded but not gated.
        assert speedup >= MIN_STEAL_SPEEDUP, artifact
    else:
        pytest.skip(
            f"single-core machine: speedup {speedup:.2f}x recorded in "
            "BENCH_serving.json, throughput gate skipped"
        )
