"""Fig 5: redundancy vs k (lower is better).

Paper shape: PGPR/CAFE most redundant; ST least; PCST in between."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig5_redundancy(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure5, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig5_redundancy", render_panels("Fig 5", panels))

    k = ci_bench.config.k_max
    st = f"ST λ={ci_bench.config.lambdas[1]:g}"
    for name, series in panels.items():
        if k in series[st] and k in series[BASELINE]:
            assert series[st][k] <= series[BASELINE][k] + 0.05, name
