"""Fig 7: relevance vs k.

Paper shape: baselines most relevant in user-centric; ST relevance grows
with λ (more user-item interaction edges pulled into the tree)."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig7_relevance(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure7, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig7_relevance", render_panels("Fig 7", panels))

    k = ci_bench.config.k_max
    lambdas = ci_bench.config.lambdas
    low, high = f"ST λ={lambdas[0]:g}", f"ST λ={lambdas[-1]:g}"
    # λ trend: in most panels high-λ ST is at least as relevant as low-λ.
    wins = 0
    total = 0
    for series in panels.values():
        if k in series[low] and k in series[high]:
            total += 1
            if series[high][k] >= series[low][k] * 0.9:
                wins += 1
    assert wins >= total * 0.6
    # Non-negative everywhere.
    for panel in panels.values():
        for points in panel.values():
            assert all(v >= 0 for v in points.values())
