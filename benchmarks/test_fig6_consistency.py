"""Fig 6: consistency (J(S_k, S_{k+1})) vs k.

Paper shape: baselines most consistent in user-centric (incremental path
sets barely change); ST/PCST high and stable across scenarios."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig6_consistency(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure6, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig6_consistency", render_panels("Fig 6", panels))

    series = panels["user-centric PGPR"]
    last_k = max(series[BASELINE])
    # Baselines dominate consistency in user-centric panels.
    st = f"ST λ={ci_bench.config.lambdas[1]:g}"
    assert series[BASELINE][last_k] >= series[st][last_k] - 0.1
    # All values are Jaccard similarities.
    for panel in panels.values():
        for points in panel.values():
            for value in points.values():
                assert 0.0 <= value <= 1.0
