"""Table III: synthetic random graph statistics (G1..G5, scaled)."""

from repro.experiments.report import format_table
from repro.experiments.tables import table3

SCALE = 0.02


def test_table3_synthetic_stats(benchmark, emit):
    rows_data = benchmark.pedantic(
        table3, args=(SCALE,), rounds=1, iterations=1
    )
    rows = [
        [
            f"G{i}",
            spec.num_users,
            spec.num_items,
            spec.num_external,
            stats.num_nodes,
            stats.num_edges,
        ]
        for i, (spec, stats) in enumerate(rows_data, start=1)
    ]
    report = format_table(
        f"Table III: synthetic graph statistics (scale={SCALE})",
        ["graph", "users", "items", "external", "nodes", "edges"],
        rows,
    )
    emit("table3", report)
    nodes = [stats.num_nodes for _spec, stats in rows_data]
    assert nodes == sorted(nodes)
    assert len(rows_data) == 5
