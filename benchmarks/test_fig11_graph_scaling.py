"""Fig 11: time and memory vs synthetic graph size (G1..G5).

Paper shape: both methods slow down as the graph grows; PCST's rate of
increase is lower, especially for groups on the larger graphs."""

from reporting import render_panels

from repro.experiments import figures

SCALE = 0.02  # G1..G5 at 200..600 nodes
GROUP = 12
K = 10


def test_fig11_graph_scaling(benchmark, emit):
    panels = benchmark.pedantic(
        figures.figure11,
        kwargs={"scale": SCALE, "k": K, "group_size": GROUP},
        rounds=1,
        iterations=1,
    )
    emit("fig11_graph_scaling", render_panels("Fig 11", panels))

    group_time = panels["user-group time"]
    st, pcst = group_time["ST"], group_time["PCST"]
    graphs = sorted(set(st) & set(pcst))
    assert len(graphs) >= 3
    largest = graphs[-1]
    # PCST faster than ST on the largest synthetic graph (group panel).
    assert pcst[largest] < st[largest]
