"""Fig 3: actionability vs k.

Paper shape: ST λ=100 highest (prioritizes rated items), PCST least."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig3_actionability(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure3, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig3_actionability", render_panels("Fig 3", panels))

    k = ci_bench.config.k_max
    st_high = f"ST λ={ci_bench.config.lambdas[-1]:g}"
    wins = 0
    total = 0
    for series in panels.values():
        if k in series[st_high] and k in series["PCST"]:
            total += 1
            if series[st_high][k] >= series["PCST"][k] - 0.02:
                wins += 1
    # ST λ=100 at or above PCST in at least half the panels (CI-scale
    # item panels have near-degenerate audiences and add noise; see
    # EXPERIMENTS.md).
    assert wins >= total * 0.5
