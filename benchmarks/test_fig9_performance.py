"""Fig 9: execution time and peak memory vs k per scenario.

Paper shape: PCST significantly faster, the gap widening with k
(especially in group scenarios where |T| grows with k)."""

from statistics import mean

from repro.experiments import figures
from repro.experiments.report import format_series_table


def test_fig9_performance(benchmark, ci_bench, emit):
    results = benchmark.pedantic(
        figures.figure9, args=(ci_bench,), rounds=1, iterations=1
    )
    blocks = []
    for scenario, sides in results.items():
        blocks.append(
            format_series_table(
                f"Fig 9 [{scenario} time (s)]", sides["time"]
            )
        )
        blocks.append(
            format_series_table(
                f"Fig 9 [{scenario} memory (MiB)]", sides["memory"]
            )
        )
    emit("fig9_performance", "\n\n".join(blocks))

    # PCST mean time below ST mean time in the group scenarios.
    st_label = f"ST λ={ci_bench.config.lambdas[1]:g}"
    for scenario in ("user-group", "item-group"):
        times = results[scenario]["time"]
        if times[st_label] and times["PCST"]:
            assert mean(times["PCST"].values()) < mean(
                times[st_label].values()
            ), scenario
