"""Recovery-time benchmark for the durability tier.

Measures what the mutation journal actually costs and buys:

- **Recovery sweep** — journals of increasing record counts are laid
  down against a workbench-scale seed graph, the store is aborted (a
  simulated ``kill -9``: no flush, no compaction), and a fresh
  :class:`repro.serving.journal.GraphJournal` is timed recovering from
  the wreckage (snapshot load + full journal replay). Each recovered
  graph is checked bit-identical to a never-crashed in-memory control.
- **Compaction** — the same store is compacted and recovery re-timed:
  the replay count must drop to zero, leaving snapshot-load as the
  whole cost. This is the knob that bounds restart time.
- **Append throughput per fsync policy** — ``never`` / ``interval`` /
  ``always``, quantifying the durability/latency trade documented in
  the README.

Results land in the repo-root ``BENCH_durability.json`` trajectory
artifact (joining ``BENCH_server.json`` et al.).

Not a pytest module (the ``bench_`` prefix keeps it out of
collection); run it directly::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py \\
        --records 64 512 --append-records 256 \\
        --assert-bit-identical --assert-compaction-resets  # the CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import protocol  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.workbench import Workbench  # noqa: E402
from repro.serving.config import JournalConfig  # noqa: E402
from repro.serving.journal import GraphJournal, apply_mutations  # noqa: E402


def clone(graph):
    """Codec round trip: preserves every iteration order + the version."""
    return protocol.graph_state_from_json(protocol.graph_state_to_json(graph))


def mutation_ops(count: int) -> list[list[dict]]:
    """``count`` single-op records: edges to fresh item nodes."""
    return [
        [
            {
                "op": "add_edge",
                "args": [
                    f"u:{k % 7}",
                    f"i:9{k:05d}",
                    1.0 + (k % 13) * 0.25,
                ],
            }
        ]
        for k in range(count)
    ]


def bit_identical(got, want) -> bool:
    if list(got.nodes()) != list(want.nodes()):
        return False
    for node in want.nodes():
        if list(got.neighbors(node).items()) != (
            list(want.neighbors(node).items())
        ):
            return False
    return (
        list(got._names.items()) == list(want._names.items())
        and list(got._relations.items()) == list(want._relations.items())
        and got.num_edges == want.num_edges
        and got.version == want.version
    )


def recovery_point(seed, records: int, state_root: Path) -> dict:
    """Journal ``records`` mutations, abort, and time the recovery."""
    state_dir = state_root / f"recovery-{records}"
    config = JournalConfig(fsync="never", compact_every_records=0)

    control = clone(seed)
    store = GraphJournal(state_dir, clone(seed), config)
    ops = mutation_ops(records)
    began = time.perf_counter()
    for batch in ops:
        store.apply(batch)
        apply_mutations(control, batch)
    append_seconds = time.perf_counter() - began
    journal_bytes = store.journal.size_bytes
    store.abort()  # simulated kill -9: nothing flushed, nothing compacted

    began = time.perf_counter()
    recovered = GraphJournal(state_dir, clone(seed), config)
    recovery_seconds = time.perf_counter() - began
    identical = bit_identical(recovered.graph, control)
    replayed = recovered.replayed_records

    # Compaction folds the journal into the snapshot; a restart then
    # replays nothing — snapshot load is the whole recovery cost.
    began = time.perf_counter()
    recovered.compact()
    compact_seconds = time.perf_counter() - began
    recovered.abort()
    began = time.perf_counter()
    compacted = GraphJournal(state_dir, clone(seed), config)
    compacted_recovery_seconds = time.perf_counter() - began
    compacted_replayed = compacted.replayed_records
    compacted_identical = bit_identical(compacted.graph, control)
    compacted.abort()

    return {
        "records": records,
        "journal_bytes": journal_bytes,
        "append_seconds": append_seconds,
        "recovery_seconds": recovery_seconds,
        "replayed_records": replayed,
        "records_per_second": (
            replayed / recovery_seconds if recovery_seconds > 0 else 0.0
        ),
        "bit_identical": identical,
        "compact_seconds": compact_seconds,
        "compacted_recovery_seconds": compacted_recovery_seconds,
        "compacted_replayed_records": compacted_replayed,
        "compacted_bit_identical": compacted_identical,
    }


def fsync_point(seed, policy: str, records: int, state_root: Path) -> dict:
    """Append throughput under one fsync policy."""
    state_dir = state_root / f"fsync-{policy}"
    store = GraphJournal(
        state_dir,
        clone(seed),
        JournalConfig(
            fsync=policy,
            fsync_interval_seconds=0.05,
            compact_every_records=0,
        ),
    )
    ops = mutation_ops(records)
    began = time.perf_counter()
    for batch in ops:
        store.apply(batch)
    elapsed = time.perf_counter() - began
    store.close()
    return {
        "fsync": policy,
        "records": records,
        "append_seconds": elapsed,
        "appends_per_second": records / elapsed if elapsed > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--records",
        type=int,
        nargs="+",
        default=[64, 256, 1024, 4096],
        help="journal lengths (records) for the recovery sweep",
    )
    parser.add_argument(
        "--append-records",
        type=int,
        default=512,
        help="records appended per fsync-policy throughput point",
    )
    parser.add_argument(
        "--fsync-policies",
        nargs="+",
        default=["never", "interval", "always"],
        choices=("never", "interval", "always"),
    )
    parser.add_argument(
        "--state-root",
        default="",
        help="directory for the benchmark state dirs "
        "(default: a fresh temp dir, removed afterwards)",
    )
    parser.add_argument(
        "--keep-state",
        action="store_true",
        help="leave the state dirs behind for inspection",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_durability.json"),
        help="artifact path",
    )
    parser.add_argument(
        "--assert-bit-identical",
        action="store_true",
        help="CI gate: fail unless every recovered graph (pre- and "
        "post-compaction) is bit-identical to the never-crashed control",
    )
    parser.add_argument(
        "--assert-compaction-resets",
        action="store_true",
        help="CI gate: fail unless recovery after compaction replays "
        "zero records",
    )
    args = parser.parse_args(argv)

    bench = Workbench.get(ExperimentConfig.test_scale())
    seed = bench.graph

    if args.state_root:
        state_root = Path(args.state_root)
        state_root.mkdir(parents=True, exist_ok=True)
        made_temp = False
    else:
        state_root = Path(tempfile.mkdtemp(prefix="bench-durability-"))
        made_temp = True

    try:
        sweep = []
        for records in args.records:
            point = recovery_point(seed, records, state_root)
            sweep.append(point)
            print(
                f"{records:6d} records ({point['journal_bytes']:9d} B)"
                f" -> recovery {point['recovery_seconds'] * 1000:8.2f} ms"
                f" ({point['records_per_second']:9.0f} rec/s)"
                f"  post-compaction "
                f"{point['compacted_recovery_seconds'] * 1000:7.2f} ms"
                f"  bit-identical {point['bit_identical']}"
            )
        fsync_sweep = []
        for policy in args.fsync_policies:
            point = fsync_point(
                seed, policy, args.append_records, state_root
            )
            fsync_sweep.append(point)
            print(
                f"fsync={policy:9s} -> "
                f"{point['appends_per_second']:9.0f} appends/s"
            )
    finally:
        if made_temp and not args.keep_state:
            shutil.rmtree(state_root, ignore_errors=True)
        elif not args.keep_state:
            for child in state_root.glob("recovery-*"):
                shutil.rmtree(child, ignore_errors=True)
            for child in state_root.glob("fsync-*"):
                shutil.rmtree(child, ignore_errors=True)

    artifact = {
        "schema": "bench-durability/v1",
        "cpu_count": os.cpu_count(),
        "graph_nodes": seed.num_nodes,
        "graph_edges": seed.num_edges,
        "recovery": sweep,
        "fsync": fsync_sweep,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if args.assert_bit_identical:
        broken = [
            p["records"]
            for p in sweep
            if not (p["bit_identical"] and p["compacted_bit_identical"])
        ]
        if broken:
            failures.append(
                f"recovery not bit-identical at record counts {broken}"
            )
        short = [
            p["records"]
            for p in sweep
            if p["replayed_records"] != p["records"]
        ]
        if short:
            failures.append(
                f"recovery replayed fewer records than journaled: {short}"
            )
    if args.assert_compaction_resets:
        lingering = [
            p["records"]
            for p in sweep
            if p["compacted_replayed_records"] != 0
        ]
        if lingering:
            failures.append(
                "post-compaction recovery still replayed records at "
                f"counts {lingering}"
            )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
