"""Benchmark report rendering helpers.

Lives outside conftest.py on purpose: bare ``from conftest import ...``
resolves against whichever conftest module pytest loaded first, so the
figure benches import this uniquely-named module instead.
"""

from __future__ import annotations

from repro.experiments.report import format_series_table


def render_panels(title: str, panels) -> str:
    """Join per-panel series tables into one report."""
    blocks = [
        format_series_table(f"{title} [{panel}]", series)
        for panel, series in panels.items()
    ]
    return "\n\n".join(blocks)
