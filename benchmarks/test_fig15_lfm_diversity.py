"""Fig 15: diversity on the LFM1M-shaped dataset.

Paper shape: same ordering as Fig 4 (summaries above raw paths)."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig15_lfm_diversity(benchmark, lfm_bench, emit):
    panels = benchmark.pedantic(
        figures.figure15, args=(lfm_bench,), rounds=1, iterations=1
    )
    emit("fig15_lfm_diversity", render_panels("Fig 15", panels))

    k = lfm_bench.config.k_max
    wins = 0
    total = 0
    for series in panels.values():
        if k in series["PCST"] and k in series[BASELINE]:
            total += 1
            if series["PCST"][k] >= series[BASELINE][k] - 0.02:
                wins += 1
    assert wins >= total * 0.5
