"""Fig 8: privacy vs k.

Paper shape: PCST best (terminal-prize growth leans on items/entities);
ST below the baselines (weighted user-item edges pull user nodes in)."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig8_privacy(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure8, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig8_privacy", render_panels("Fig 8", panels))

    k = ci_bench.config.k_max
    wins = 0
    total = 0
    for series in panels.values():
        if k in series["PCST"] and k in series[BASELINE]:
            total += 1
            if series["PCST"][k] >= series[BASELINE][k]:
                wins += 1
    # PCST achieves the highest privacy in (nearly) every panel.
    assert wins >= total * 0.75
