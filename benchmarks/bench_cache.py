"""Shared-closure-store benchmark: hit rate and throughput.

Runs the same batch of group-summary tasks against a synthetic
10k-node knowledge graph on the processes backend, with the
cross-worker closure store on and off, for two request mixes:

- **skewed** — every task draws its terminals from a small hot set
  (a handful of users rotating over three popular items), the regime
  the store is built for: one worker computes a closure, its siblings
  fetch it.
- **uniform** — each task touches fresh users and items, so nearly
  every closure is a cold compute and the store can only add
  overhead. This leg bounds the worst case.

For every mix the store-on and store-off runs are checked
**bit-identical** (node lists and canonically sorted edge lists of
every summary subgraph), and the artifact records elapsed wall-clock,
tasks/s, and the store hit rate. Results land in the repo-root
``BENCH_cache.json`` trajectory artifact (joining
``BENCH_server.json`` et al.).

Not a pytest module (the ``bench_`` prefix keeps it out of
collection); run it directly::

    PYTHONPATH=src python benchmarks/bench_cache.py
    PYTHONPATH=src python benchmarks/bench_cache.py \\
        --nodes 10000 --tasks 64 --assert-speedup  # the CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api import (  # noqa: E402
    ClosureStoreConfig,
    ExplanationSession,
    ParallelConfig,
    SchedulerConfig,
)
from repro.core.scenarios import Scenario, SummaryTask  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    SyntheticSpec,
    generate_random_kg,
)

SEED = 11


def build_graph(nodes: int):
    spec = SyntheticSpec(nodes, edges_per_node=8.0)
    return generate_random_kg(spec, np.random.default_rng(SEED))


def skewed_tasks(graph, count: int) -> list[SummaryTask]:
    """Hot-set mix: eight users rotating in pairs over three items."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    hot_items = tuple(items[:3])
    tasks = []
    for i in range(count):
        group = (users[i % 8], users[(i + 1) % 8])
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_GROUP,
                terminals=(*group, *hot_items),
                paths=(),
                anchors=hot_items,
                focus=group,
            )
        )
    return tasks


def uniform_tasks(graph, count: int) -> list[SummaryTask]:
    """Cold mix: every task touches fresh users and items."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    tasks = []
    for i in range(count):
        group = (
            users[(2 * i) % len(users)],
            users[(2 * i + 1) % len(users)],
        )
        picks = tuple(
            items[(3 * i + j) % len(items)] for j in range(3)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_GROUP,
                terminals=(*group, *picks),
                paths=(),
                anchors=picks,
                focus=group,
            )
        )
    return tasks


def warmup_tasks(graph) -> list[SummaryTask]:
    """Tiny sacrificial batch (terminals outside both mixes) that
    pays pool spawn + graph export before the clock starts."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    group = (users[-1], users[-2])
    picks = (items[-1], items[-2])
    return [
        SummaryTask(
            scenario=Scenario.USER_GROUP,
            terminals=(*group, *picks),
            paths=(),
            anchors=picks,
            focus=group,
        )
    ]


def canonical(report) -> list:
    out = []
    for result in report.results:
        if result.failure is not None:
            raise RuntimeError(f"task failed: {result.failure}")
        subgraph = result.explanation.subgraph
        out.append(
            (
                list(subgraph.nodes()),
                sorted(
                    (e.source, e.target, e.weight)
                    for e in subgraph.edges()
                ),
            )
        )
    return out


def run_leg(graph, tasks, *, store, workers: int) -> dict:
    session = ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=workers),
        scheduler=SchedulerConfig(mode="work-stealing"),
        store=store,
    )
    with session:
        session.run(warmup_tasks(graph))  # spawn pool, export graph
        start = time.perf_counter()
        report = session.run(tasks)
        elapsed = time.perf_counter() - start
        lookups = report.store_hits + report.store_misses
        return {
            "elapsed_seconds": elapsed,
            "tasks_per_second": len(tasks) / elapsed,
            "store_hits": report.store_hits,
            "store_misses": report.store_misses,
            "hit_rate": (
                report.store_hits / lookups if lookups else None
            ),
            "summaries": canonical(report),
        }


def run_mix(graph, tasks, *, workers: int, store_mb: float) -> dict:
    store = ClosureStoreConfig(
        enabled=True, capacity_bytes=int(store_mb * 2**20)
    )
    off = run_leg(graph, tasks, store=None, workers=workers)
    on = run_leg(graph, tasks, store=store, workers=workers)
    identical = on.pop("summaries") == off.pop("summaries")
    return {
        "tasks": len(tasks),
        "store_off": off,
        "store_on": on,
        "speedup": off["elapsed_seconds"] / on["elapsed_seconds"],
        "bit_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--tasks", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--store-mb", type=float, default=64.0)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_cache.json")
    )
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit 1 unless the skewed mix shows >= 1.5x speedup, "
        ">= 0.5 hit rate, and bit-identical summaries on both mixes",
    )
    args = parser.parse_args()

    graph = build_graph(args.nodes)
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges, "
        f"{args.tasks} tasks, {args.workers} process workers"
    )

    mixes = {}
    for name, maker in (
        ("skewed", skewed_tasks),
        ("uniform", uniform_tasks),
    ):
        point = run_mix(
            graph,
            maker(graph, args.tasks),
            workers=args.workers,
            store_mb=args.store_mb,
        )
        mixes[name] = point
        on, off = point["store_on"], point["store_off"]
        rate = on["hit_rate"]
        print(
            f"{name:8s} off {off['elapsed_seconds']:7.2f}s"
            f" ({off['tasks_per_second']:6.1f} tasks/s)"
            f"  on {on['elapsed_seconds']:7.2f}s"
            f" ({on['tasks_per_second']:6.1f} tasks/s)"
            f"  speedup {point['speedup']:.2f}x"
            f"  hit-rate {rate if rate is None else f'{rate:.2f}'}"
            f"  bit-identical {point['bit_identical']}"
        )

    artifact = {
        "schema": "bench-cache/v1",
        "cpu_count": os.cpu_count(),
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "workers": args.workers,
        "store_mb": args.store_mb,
        "mixes": mixes,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if args.assert_speedup:
        skewed = mixes["skewed"]
        if skewed["speedup"] < 1.5:
            failures.append(
                f"skewed speedup {skewed['speedup']:.2f}x < 1.5x"
            )
        rate = skewed["store_on"]["hit_rate"]
        if rate is None or rate < 0.5:
            failures.append(f"skewed store hit rate {rate} < 0.5")
        for name, point in mixes.items():
            if not point["bit_identical"]:
                failures.append(
                    f"{name} mix: store-on summaries diverged"
                )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
