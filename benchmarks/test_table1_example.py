"""Table I: the worked summarization example (13 edges -> 6)."""

from repro.experiments.report import format_table
from repro.experiments.tables import table1_example


def test_table1_example(benchmark, emit):
    result = benchmark(table1_example)
    rows = [
        ["total path edges", result.total_path_edges],
        ["summary edges", result.summary_edges],
    ]
    report = format_table("Table I: worked example", ["quantity", "value"], rows)
    lines = [report, ""]
    for index, sentence in enumerate(result.path_sentences, start=1):
        lines.append(f"P1,{chr(ord('A') + index - 1)}: {sentence}")
    lines.append(f"Summary: {result.summary_sentence}")
    emit("table1", "\n".join(lines))
    assert result.total_path_edges == 13
    assert result.summary_edges == 6
