"""Open-loop load harness for the network serving tier.

Drives :class:`repro.serving.server.ExplanationServer` the way a
latency benchmark should: **open loop** — request arrivals follow a
seeded Poisson process at a fixed offered rate, each arrival fires
from its own thread with its own connection, and arrivals never wait
for completions (a closed loop would let a slow server throttle its
own load and flatter its tail latencies). Per-request latencies
aggregate into p50/p95/p99, swept over several offered rates to map
the saturation knee into the repo-root ``BENCH_server.json``
trajectory artifact (joining ``BENCH_batch.json`` /
``BENCH_serving.json``).

Also measures time-to-first-streamed-result for a batch under the
work-stealing scheduler vs the chunked baseline — the serving tier's
headline: the first ``result`` frame leaves the server while the rest
of the batch is still computing.

Not a pytest module (the ``bench_`` prefix keeps it out of
collection); run it directly::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py \\
        --rates 4 --requests 40 --assert-zero-drops \\
        --assert-stream-beats-chunked        # the CI server-job gate

By default the harness self-hosts a server on an ephemeral port;
``--connect HOST:PORT`` points it at an external one instead (the
stream comparison is skipped there — it needs to own the scheduler
config).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import ParallelConfig, SchedulerConfig, SummaryRequest  # noqa: E402
from repro.core.scenarios import Scenario  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.workbench import Workbench  # noqa: E402
from repro.serving.client import ExplanationClient, OverloadedError  # noqa: E402
from repro.serving.server import (  # noqa: E402
    ExplanationServer,
    ServerConfig,
    ServerThread,
)


def percentile(latencies: list[float], q: float) -> float:
    """Same aggregation BatchReport pins: sorted, floor-indexed."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def build_requests(bench: Workbench, mix: str, count: int):
    """A request mix drawn from the workbench recommender's tasks.

    ``uniform`` cycles user-centric singletons; ``skewed`` interleaves
    one heavy user-group task per seven singletons — the straggler
    pattern the work-stealing scheduler exists for.
    """
    singles = [
        SummaryRequest(task=task)
        for task in bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
    ]
    if not singles:
        raise SystemExit("workbench produced no tasks")
    if mix == "uniform":
        pool = singles
    else:
        groups = [
            SummaryRequest(task=task)
            for task in bench.tasks(Scenario.USER_GROUP, "PGPR", 4).values()
        ]
        pool = []
        for i in range(8):
            pool.extend(singles[i * 7 % len(singles):][:7])
            pool.append(groups[i % len(groups)])
    return [pool[i % len(pool)] for i in range(count)]


def run_open_loop(
    host: str,
    port: int,
    requests,
    rate: float,
    seed: int,
    timeout: float,
) -> dict:
    """Fire ``requests`` at ``rate``/s with Poisson arrivals.

    Every arrival gets its own thread + connection and starts on
    schedule regardless of how many predecessors are still in flight —
    queueing shows up as latency (and, past the admission bound, as
    ``overloaded`` counts), never as reduced offered load.
    """
    rng = random.Random(seed)
    lock = threading.Lock()
    latencies: list[float] = []
    overloaded = 0
    errors: list[str] = []

    def fire(request) -> None:
        nonlocal overloaded
        start = time.perf_counter()
        try:
            with ExplanationClient(
                host, port, timeout=timeout, reconnect=False
            ) as client:
                client.explain(request)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
        except OverloadedError:
            with lock:
                overloaded += 1
        except Exception as error:  # any drop/corruption is a failure
            with lock:
                errors.append(f"{type(error).__name__}: {error}")

    threads = []
    began = time.perf_counter()
    for request in requests:
        thread = threading.Thread(target=fire, args=(request,))
        thread.start()
        threads.append(thread)
        time.sleep(rng.expovariate(rate))
    for thread in threads:
        thread.join(timeout=timeout + 30)
    wall = time.perf_counter() - began
    return {
        "offered_rate": rate,
        "requests": len(requests),
        "completed": len(latencies),
        "overloaded": overloaded,
        "errors": errors,
        "achieved_rate": len(latencies) / wall if wall > 0 else 0.0,
        "latency_p50_ms": percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": percentile(latencies, 0.95) * 1000.0,
        "latency_p99_ms": percentile(latencies, 0.99) * 1000.0,
    }


def first_streamed_ms(graph, requests, mode: str, repeats: int = 3) -> float:
    """Time to the first streamed result frame under ``mode``.

    The structural gap this measures: the chunked scheduler cannot emit
    its first ``result`` frame until an entire static chunk
    (``chunk_size`` tasks) has finished, while work-stealing dispatches
    per task and frames the very first completion. Pinning
    ``chunk_size`` to half the batch makes that gap a property of the
    schedulers rather than of cache state or task skew. Best of
    ``repeats``, each against a fresh server; the minimum is the
    noise-robust statistic for what the scheduler *can* deliver.
    """
    best = float("inf")
    for _ in range(repeats):
        server = ExplanationServer(
            graph,
            parallel=ParallelConfig(
                backend="threads",
                workers=2,
                chunk_size=max(1, len(requests) // 2),
            ),
            scheduler=SchedulerConfig(mode=mode),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                # Connection + session warm-up (freeze, summarizer
                # construction, closure caches) off the clock so the
                # measured window is dispatch + compute, not setup.
                client.explain(requests[-1])
                start = time.perf_counter()
                stream = client.stream(requests)
                next(stream)
                best = min(best, time.perf_counter() - start)
                for _ in stream:
                    pass
    return best * 1000.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[2.0, 5.0, 10.0, 20.0],
        help="offered request rates (req/s) for the saturation sweep",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=40,
        help="requests fired per swept rate",
    )
    parser.add_argument(
        "--mix", choices=("uniform", "skewed"), default="skewed"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-request timeout"
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound of the self-hosted server",
    )
    parser.add_argument(
        "--connect",
        default="",
        metavar="HOST:PORT",
        help="benchmark an external server instead of self-hosting",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_server.json"),
        help="artifact path",
    )
    parser.add_argument(
        "--assert-zero-drops",
        action="store_true",
        help="CI gate: fail if any request errored (dropped frames)",
    )
    parser.add_argument(
        "--assert-stream-beats-chunked",
        action="store_true",
        help="CI gate: fail unless the first streamed result under "
        "work-stealing lands before the chunked-scheduler baseline",
    )
    args = parser.parse_args(argv)

    bench = Workbench.get(ExperimentConfig.test_scale())
    requests = build_requests(bench, args.mix, args.requests)

    if args.connect:
        host, _, port = args.connect.rpartition(":")
        host, port = host or "127.0.0.1", int(port)
        server_thread = None
    else:
        server_thread = ServerThread(
            ExplanationServer(
                bench.graph,
                ServerConfig(max_pending=args.max_pending),
            )
        )
        host, port = "127.0.0.1", server_thread.port

    sweep = []
    try:
        for rate in args.rates:
            point = run_open_loop(
                host, port, requests, rate, args.seed, args.timeout
            )
            sweep.append(point)
            print(
                f"rate {rate:6.1f}/s -> achieved {point['achieved_rate']:6.1f}/s"
                f"  p50 {point['latency_p50_ms']:8.2f} ms"
                f"  p95 {point['latency_p95_ms']:8.2f} ms"
                f"  p99 {point['latency_p99_ms']:8.2f} ms"
                f"  overloaded {point['overloaded']}"
                f"  errors {len(point['errors'])}"
            )
    finally:
        if server_thread is not None:
            server_thread.stop()

    stream = {}
    if not args.connect:
        # Heavy-first workload: the straggler lands in the first static
        # chunk. With chunk_size pinned to half the batch, chunked's
        # first frame waits for a whole chunk while work-stealing
        # frames its first singleton completion.
        heavies = [
            SummaryRequest(task=task)
            for task in bench.tasks(Scenario.USER_GROUP, "PGPR", 4).values()
        ]
        singles = [
            SummaryRequest(task=task)
            for task in bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
        ]
        stream_requests = heavies[:1] + [
            singles[i % len(singles)] for i in range(15)
        ]
        stealing = first_streamed_ms(
            bench.graph, stream_requests, "work-stealing"
        )
        chunked = first_streamed_ms(bench.graph, stream_requests, "chunked")
        stream = {
            "tasks": len(stream_requests),
            "stealing_first_result_ms": stealing,
            "chunked_first_result_ms": chunked,
        }
        print(
            f"first streamed result: work-stealing {stealing:.2f} ms, "
            f"chunked {chunked:.2f} ms"
        )

    artifact = {
        "schema": "bench-server/v1",
        "cpu_count": os.cpu_count(),
        "graph_nodes": bench.graph.num_nodes,
        "graph_edges": bench.graph.num_edges,
        "mix": args.mix,
        "requests_per_rate": args.requests,
        "max_pending": args.max_pending,
        "sweep": sweep,
        "stream": stream,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if args.assert_zero_drops:
        dropped = [e for point in sweep for e in point["errors"]]
        if dropped:
            failures.append(f"dropped/errored frames: {dropped[:5]}")
        short = [
            point
            for point in sweep
            if point["completed"] + point["overloaded"] != point["requests"]
        ]
        if short:
            failures.append(f"unaccounted requests at rates {short}")
    if args.assert_stream_beats_chunked and stream:
        if not (
            stream["stealing_first_result_ms"]
            < stream["chunked_first_result_ms"]
        ):
            failures.append(
                "first streamed result did not beat the chunked baseline: "
                f"{stream}"
            )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
