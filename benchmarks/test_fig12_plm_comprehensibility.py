"""Fig 12: comprehensibility with PLM / PEARLM baselines.

Paper shape: consistent with Fig 2 — ST improves on both language-model
baselines; PCST competitive at high k in user-group."""

from reporting import render_panels

from repro.experiments import figures
from repro.experiments.workbench import BASELINE


def test_fig12_plm_comprehensibility(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure12, args=(ci_bench,), rounds=1, iterations=1
    )
    emit("fig12_plm_comprehensibility", render_panels("Fig 12", panels))

    k = ci_bench.config.k_max
    st = f"ST λ={ci_bench.config.lambdas[-1]:g}"
    for name, series in panels.items():
        if k in series[st] and k in series[BASELINE]:
            assert series[st][k] > series[BASELINE][k], name
