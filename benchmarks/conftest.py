"""Benchmark-suite fixtures.

All figure benches share one CI-scale workbench (summaries are cached in
it, so Figs 2-8 cost one summary pass total). Each bench prints the
series it regenerates and mirrors them into ``benchmarks/results/`` so
the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ci_config() -> ExperimentConfig:
    return ExperimentConfig.ci_scale()

@pytest.fixture(scope="session")
def ci_bench(ci_config) -> Workbench:
    """The shared ML1M-like CI-scale workbench."""
    return Workbench.get(ci_config)


@pytest.fixture(scope="session")
def lfm_bench(ci_config) -> Workbench:
    """LFM1M-like workbench for Figs 14-15."""
    return Workbench.get(ci_config.with_dataset("lfm1m"))


@pytest.fixture(scope="session")
def emit():
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


# render_panels moved to benchmarks/reporting.py — a bare
# `from conftest import ...` resolves against whichever conftest pytest
# loaded first, which breaks whole-repo collection runs.
