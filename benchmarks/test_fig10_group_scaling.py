"""Fig 10: execution time vs group size (ST vs PCST).

Paper shape: ST time climbs rapidly with group size (|T| Dijkstras);
PCST grows gently (terminal-count independent)."""

from reporting import render_panels

from repro.experiments import figures

GROUP_SIZES = (2, 4, 8, 16)


def test_fig10_group_scaling(benchmark, ci_bench, emit):
    panels = benchmark.pedantic(
        figures.figure10,
        args=(ci_bench,),
        kwargs={"group_sizes": GROUP_SIZES},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig10_group_scaling",
        render_panels("Fig 10 (seconds)", panels),
    )

    for panel, series in panels.items():
        st, pcst = series["ST"], series["PCST"]
        sizes = sorted(set(st) & set(pcst))
        if len(sizes) < 2:
            continue
        largest = sizes[-1]
        # At the largest group size PCST is faster than ST.
        assert pcst[largest] < st[largest], panel
        # And ST's growth from smallest to largest exceeds PCST's.
        st_growth = st[largest] / max(st[sizes[0]], 1e-9)
        pcst_growth = pcst[largest] / max(pcst[sizes[0]], 1e-9)
        assert st_growth > pcst_growth * 0.5, panel
