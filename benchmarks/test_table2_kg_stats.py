"""Table II: knowledge-based graph statistics (CI-scale ML1M-like)."""

from repro.experiments.report import format_table


def test_table2_kg_stats(benchmark, ci_bench, emit):
    import numpy as np

    graph = ci_bench.graph

    def compute():
        return graph.stats(
            approx_pairs=64, rng=np.random.default_rng(0)
        )

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    report = format_table(
        "Table II: ML1M-like knowledge-based graph statistics "
        f"(scale={ci_bench.config.dataset_scale})",
        ["property", "value"],
        [
            ["users", stats.num_users],
            ["items", stats.num_items],
            ["external", stats.num_external],
            ["total nodes", stats.num_nodes],
            ["interaction edges (user->item)", stats.num_interaction_edges],
            ["knowledge edges (item->external)", stats.num_knowledge_edges],
            ["total edges", stats.num_edges],
            ["average degree", stats.average_degree],
            ["density", stats.density],
            ["average path length", stats.average_path_length],
            ["diameter", stats.diameter],
        ],
    )
    emit("table2", report)
    # Paper shapes: small-world KG (APL ~3.2, diameter ~6 at full scale).
    assert 2.0 <= stats.average_path_length <= 5.0
    assert stats.diameter <= 10
