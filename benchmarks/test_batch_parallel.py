"""Batch backend comparison: serial vs threads vs processes throughput.

Emits the repo-root ``BENCH_batch.json`` perf-trajectory artifact
(ops/s by backend, worker count and graph size) so the parallel-scaling
story is machine-readable across PRs, and gates the process backend's
speedup over serial on the 10k-node / 64-task batch — the CI
acceptance criterion for the shared-memory process pool. The gate only
fires on multi-core machines (threads cannot beat the GIL and a
process pool cannot beat physics on one core); the artifact records
the core count so single-core trajectory points are self-describing.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import BatchSummarizer
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.paths import Path as GraphPath
from repro.graph.shortest_paths import bfs_distances_indexed
from repro.graph.types import NodeType

REPO_ROOT = Path(__file__).resolve().parent.parent

BENCH_SIZES = (2_500, 10_000)
NUM_TASKS = 64
ITEMS_PER_TASK = 5
POOL_SIZE = 40
MIN_PROCESS_SPEEDUP = 1.5  # CI gate, 10k nodes / 64 tasks, multi-core


def _workload(num_nodes: int):
    """A graph plus λ>0 user-centric tasks over a popular-item pool."""
    spec = SyntheticSpec(num_nodes, edges_per_node=8.0)
    graph = generate_random_kg(spec, np.random.default_rng(7))
    frozen = graph.freeze()
    component = bfs_distances_indexed(
        frozen, max(range(frozen.num_nodes), key=frozen.degree)
    ).keys()
    in_component = [frozen.id_of(i) for i in sorted(component)]
    items = sorted(
        (n for n in in_component if NodeType.of(n) is NodeType.ITEM),
        key=graph.degree,
        reverse=True,
    )[:POOL_SIZE]
    users = [
        n for n in in_component if NodeType.of(n) is NodeType.USER
    ][:NUM_TASKS]
    assert len(users) == NUM_TASKS and len(items) == POOL_SIZE
    tasks = []
    for index, user in enumerate(users):
        chosen = tuple(
            items[(index * ITEMS_PER_TASK + j) % len(items)]
            for j in range(ITEMS_PER_TASK)
        )
        # Boost the user's real rating edges: the λ-aware reuse path.
        paths = tuple(
            GraphPath(nodes=(user, item))
            for item in chosen
            if graph.has_edge(user, item)
        )
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *chosen),
                paths=paths,
                anchors=chosen,
                focus=(user,),
                k=ITEMS_PER_TASK,
            )
        )
    return graph, tasks


def _timed(graph, tasks, **kwargs):
    start = time.perf_counter()
    report = BatchSummarizer(graph, method="ST", lam=1.0, **kwargs).run(
        tasks
    )
    seconds = time.perf_counter() - start
    return report, seconds


def test_batch_parallel_artifact(emit):
    cpus = os.cpu_count() or 1
    pool_workers = min(4, max(2, cpus))
    rows = []
    speedups_10k = {}
    for num_nodes in BENCH_SIZES:
        graph, tasks = _workload(num_nodes)
        configs = [("serial", {"parallel": "serial"})]
        if num_nodes == max(BENCH_SIZES):
            configs.append(
                (
                    f"threads[{pool_workers}]",
                    {"parallel": "threads", "workers": pool_workers},
                )
            )
            if pool_workers != 2:
                configs.append(
                    (
                        "processes[2]",
                        {"parallel": "processes", "workers": 2},
                    )
                )
        configs.append(
            (
                f"processes[{pool_workers}]",
                {"parallel": "processes", "workers": pool_workers},
            )
        )
        timings = {}
        for label, kwargs in configs:
            report, seconds = _timed(graph, tasks, **kwargs)
            timings[label] = seconds
            rows.append(
                {
                    "backend": label,
                    "graph_nodes": graph.num_nodes,
                    "graph_edges": graph.num_edges,
                    "tasks": len(tasks),
                    "seconds": seconds,
                    "ops_per_sec": len(tasks) / seconds,
                    "freeze_seconds": report.freeze_seconds,
                    "cache_patched": report.cache_patched,
                }
            )
        if num_nodes == max(BENCH_SIZES):
            for label, seconds in timings.items():
                if label != "serial":
                    speedups_10k[label] = timings["serial"] / seconds

    artifact = {
        "schema": "bench-batch/v1",
        "cpu_count": cpus,
        "tasks": NUM_TASKS,
        "method": "ST",
        "results": rows,
        "speedups_10k_vs_serial": speedups_10k,
    }
    (REPO_ROOT / "BENCH_batch.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    emit(
        "batch_parallel",
        "\n".join(
            [
                f"batch backends, {NUM_TASKS} ST tasks ({cpus} cpus):",
                *(
                    f"  {row['backend']:<14} {row['graph_nodes']:>6} nodes "
                    f"{row['ops_per_sec']:8.1f} tasks/s"
                    for row in rows
                ),
                "trajectory in BENCH_batch.json (repo root)",
            ]
        ),
    )
    best_process = max(
        (v for k, v in speedups_10k.items() if k.startswith("processes")),
        default=0.0,
    )
    if cpus >= 2:
        # The CI acceptance gate; meaningless on a single core.
        assert best_process >= MIN_PROCESS_SPEEDUP, speedups_10k
    else:
        pytest.skip(
            f"single-core machine: process speedup {best_process:.2f}x "
            "recorded in BENCH_batch.json, gate skipped"
        )
