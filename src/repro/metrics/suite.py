"""Evaluate-everything helper: one call scoring all static metrics.

Consistency (a cross-k metric) and performance (a process metric) are not
per-explanation and live in their own modules; everything else lands in a
:class:`MetricReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explanation import Explanation
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.metrics.actionability import actionability
from repro.metrics.comprehensibility import comprehensibility
from repro.metrics.diversity import diversity
from repro.metrics.privacy import privacy
from repro.metrics.redundancy import redundancy
from repro.metrics.relevance import relevance

STATIC_METRICS = (
    "comprehensibility",
    "actionability",
    "diversity",
    "redundancy",
    "relevance",
    "privacy",
)


@dataclass(frozen=True, slots=True)
class MetricReport:
    """All static metric values for one explanation."""

    comprehensibility: float
    actionability: float
    diversity: float
    redundancy: float
    relevance: float
    privacy: float

    def as_dict(self) -> dict[str, float]:
        """Metric name -> value mapping."""
        return {name: getattr(self, name) for name in STATIC_METRICS}

    def __getitem__(self, name: str) -> float:
        if name not in STATIC_METRICS:
            raise KeyError(name)
        return getattr(self, name)


def evaluate_explanation(
    explanation: Explanation, graph: KnowledgeGraph
) -> MetricReport:
    """Score one explanation on every static metric."""
    return MetricReport(
        comprehensibility=comprehensibility(explanation),
        actionability=actionability(explanation),
        diversity=diversity(explanation),
        redundancy=redundancy(explanation),
        relevance=relevance(explanation, graph),
        privacy=privacy(explanation),
    )
