"""Privacy: ``P(S) = 1 - #user nodes / |V_S|`` (§V-B.7).

User nodes in an explanation expose other people's behaviour ("users who
watched X also ..."); the fewer, the better the privacy protection.
Computed over the explanation's node view (with multiplicity for path
sets, unique nodes for subgraphs). Higher is better.
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.graph.types import NodeType


def privacy(explanation: Explanation) -> float:
    """User-node complement share in [0, 1]; empty explanations score 1."""
    total = explanation.total_node_mentions
    if total == 0:
        return 1.0
    users = explanation.count_nodes_of_type(NodeType.USER)
    return 1.0 - users / total
