"""Evaluation metrics for explanations (§V-B).

Every metric takes :class:`repro.core.explanation.Explanation` objects,
so baseline path sets and summary subgraphs are scored with the same
code, using the multiplicity conventions the paper defines for each form.
"""

from repro.metrics.comprehensibility import comprehensibility
from repro.metrics.actionability import actionability
from repro.metrics.diversity import diversity
from repro.metrics.redundancy import redundancy
from repro.metrics.consistency import consistency
from repro.metrics.relevance import relevance
from repro.metrics.privacy import privacy
from repro.metrics.faithfulness import faithfulness, hallucination_rate
from repro.metrics.performance import PerformanceProbe, measure
from repro.metrics.suite import MetricReport, evaluate_explanation

__all__ = [
    "MetricReport",
    "PerformanceProbe",
    "actionability",
    "comprehensibility",
    "consistency",
    "diversity",
    "evaluate_explanation",
    "faithfulness",
    "hallucination_rate",
    "measure",
    "privacy",
    "redundancy",
    "relevance",
]
