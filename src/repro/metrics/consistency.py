"""Consistency: node-set stability across k (§V-B.5).

``C = (1/(K-1)) Σ_k J(S_k, S_{k+1})`` — the average Jaccard similarity of
the node sets of consecutive-k explanations. Higher means adding one more
recommendation barely perturbs the explanation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.explanation import Explanation


def jaccard_nodes(a: Explanation, b: Explanation) -> float:
    """Jaccard similarity of two explanations' (unique) node sets."""
    nodes_a, nodes_b = a.unique_nodes(), b.unique_nodes()
    union = nodes_a | nodes_b
    if not union:
        return 1.0
    return len(nodes_a & nodes_b) / len(union)


def consistency(explanations_by_k: Sequence[Explanation]) -> float:
    """Mean consecutive-k Jaccard over a K-long explanation sequence.

    ``explanations_by_k[j]`` must be the explanation for ``k = j + 1``.
    A single-entry sequence is perfectly consistent by convention.
    """
    if not explanations_by_k:
        raise ValueError("need at least one explanation")
    if len(explanations_by_k) == 1:
        return 1.0
    similarities = [
        jaccard_nodes(a, b)
        for a, b in zip(explanations_by_k, explanations_by_k[1:])
    ]
    return sum(similarities) / len(similarities)
