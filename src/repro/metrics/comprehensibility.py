"""Comprehensibility: ``C(S) = 1 / |E_S|`` (§V-B.1).

Inversely proportional to explanation size — for baselines the total
length of the shown paths (with multiplicity), for summaries the number
of subgraph edges. Higher is better (briefer explanation).
"""

from __future__ import annotations

from repro.core.explanation import Explanation


def comprehensibility(explanation: Explanation) -> float:
    """``1 / |E_S|``; an edgeless explanation scores 1 by convention
    (nothing could be briefer, and the paper's inputs never produce one
    at k >= 1)."""
    size = explanation.size_in_edges
    if size == 0:
        return 1.0
    return 1.0 / size
