"""Diversity: mean pairwise edge dissimilarity (§V-B.3).

``D(S) = (1 / C(|E|,2)) Σ_{e_i, e_j} (1 - J(e_i, e_j))`` where ``J`` is
the Jaccard similarity of the two edges' endpoint sets. Two edges sharing
one endpoint have J = 1/3; disjoint edges J = 0; a repeated edge J = 1.
Higher means the explanation touches a broader range of nodes.

The naive double loop is O(|E|²·cost(J)); since J over 2-element endpoint
sets only takes values {0, 1/3, 1}, we count shared-endpoint and repeated
pairs via node-incidence tallies instead, giving O(|E| + |V|).
"""

from __future__ import annotations

from collections import Counter

from repro.core.explanation import Explanation
from repro.graph.types import undirected_key


def diversity(explanation: Explanation) -> float:
    """Mean pairwise ``1 - J`` over all edge pairs (0 if fewer than 2)."""
    edges = [undirected_key(u, v) for u, v in explanation.edge_mentions()]
    num_edges = len(edges)
    if num_edges < 2:
        return 0.0
    total_pairs = num_edges * (num_edges - 1) // 2

    # Identical-edge pairs: J = 1.
    edge_counts = Counter(edges)
    identical_pairs = sum(
        count * (count - 1) // 2 for count in edge_counts.values()
    )

    # Pairs sharing >= 1 endpoint. Two distinct edges over 2-node endpoint
    # sets can share at most one node (they'd be identical otherwise), so
    # inclusion-exclusion over per-node incidences counts each such pair
    # once... except pairs of *identical* edges share two nodes and are
    # counted twice; correct for that.
    node_incidence: Counter = Counter()
    for u, v in edges:
        node_incidence[u] += 1
        node_incidence[v] += 1
    sharing_pairs = sum(
        count * (count - 1) // 2 for count in node_incidence.values()
    )
    sharing_pairs -= 2 * identical_pairs  # remove double-counted duplicates

    # J values: identical -> 1, one shared endpoint -> 1/3, disjoint -> 0.
    similarity_sum = identical_pairs * 1.0 + sharing_pairs * (1.0 / 3.0)
    return 1.0 - similarity_sum / total_pairs
