"""Relevance: total historical-interaction weight (§V-B.6).

``R(S) = Σ_{e ∈ E_S} w_M(e)`` — the sum of *original* rating-derived
weights over the explanation's edges (knowledge edges carry w_A = 0 in
the paper's setting and contribute nothing). Note the sum uses the raw
``w_M``, not the Eq. (1)-boosted weights: relevance asks how grounded the
explanation is in actual user behaviour. Higher is better; unbounded.
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.graph.knowledge_graph import KnowledgeGraph


def relevance(explanation: Explanation, graph: KnowledgeGraph) -> float:
    """Σ w_M over edge mentions (multiplicity view for path sets).

    Hallucinated edges (PLM) do not exist in ``graph`` and add 0.
    """
    total = 0.0
    for u, v in explanation.edge_mentions():
        if graph.has_edge(u, v):
            total += graph.weight(u, v)
    return total
