"""Actionability: share of actionable (item) nodes (§V-B.2).

Item nodes are actionable — users can change their ratings of items and
thereby steer the recommender. User and external-knowledge nodes are not.
``A(S) = #item nodes / |V_S|`` over the explanation's node view
(with multiplicity for path sets, unique for subgraphs).
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.graph.types import NodeType


def actionability(explanation: Explanation) -> float:
    """Item-node share in [0, 1]; empty explanations score 0."""
    total = explanation.total_node_mentions
    if total == 0:
        return 0.0
    return explanation.count_nodes_of_type(NodeType.ITEM) / total
