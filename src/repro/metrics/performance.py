"""Performance instrumentation: wall-clock time and peak memory (§V-B.8).

``measure`` wraps a callable with ``time.perf_counter`` and
``tracemalloc`` peak tracking; :class:`PerformanceProbe` accumulates many
measurements for the sweep figures (Figs 9-11). Absolute values are
hardware-dependent — the reproduction targets the *relative* ST-vs-PCST
scaling shape, not the paper's testbed numbers.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from statistics import mean


@dataclass(frozen=True, slots=True)
class Measurement:
    """One timed call."""

    seconds: float
    peak_bytes: int
    result: object = field(compare=False)


def measure(fn, *args, track_memory: bool = True, **kwargs) -> Measurement:
    """Run ``fn(*args, **kwargs)`` and record duration and peak allocation.

    ``tracemalloc`` adds tracing overhead (~2x slowdown); pass
    ``track_memory=False`` for pure timing runs (pytest-benchmark does
    its own timing and should never run under tracemalloc).
    """
    if track_memory:
        tracemalloc.start()
        try:
            start = time.perf_counter()
            result = fn(*args, **kwargs)
            elapsed = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return Measurement(seconds=elapsed, peak_bytes=peak, result=result)
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return Measurement(seconds=elapsed, peak_bytes=0, result=result)


@dataclass
class PerformanceProbe:
    """Accumulator of measurements keyed by a sweep coordinate (e.g. k)."""

    label: str = ""
    _seconds: dict[object, list[float]] = field(default_factory=dict)
    _peaks: dict[object, list[int]] = field(default_factory=dict)

    def record(self, key: object, measurement: Measurement) -> None:
        """Append one measurement under a sweep key."""
        self._seconds.setdefault(key, []).append(measurement.seconds)
        self._peaks.setdefault(key, []).append(measurement.peak_bytes)

    def run(self, key: object, fn, *args, **kwargs):
        """Measure and record in one call; returns the callable's result."""
        measurement = measure(fn, *args, **kwargs)
        self.record(key, measurement)
        return measurement.result

    def mean_seconds(self) -> dict[object, float]:
        """Sweep key -> mean wall-clock seconds."""
        return {k: mean(v) for k, v in sorted(self._seconds.items(),
                                              key=lambda kv: str(kv[0]))}

    def mean_peak_mb(self) -> dict[object, float]:
        """Sweep key -> mean peak memory in MiB."""
        return {
            k: mean(v) / (1024 * 1024)
            for k, v in sorted(self._peaks.items(), key=lambda kv: str(kv[0]))
        }
