"""Redundancy: share of duplicate node appearances (§V-B.4).

A node is "duplicated" when the explanation shows it more than once. We
count appearances over the explanation's *edges* — the same view the
diversity metric uses — so the definition applies uniformly:

- in a baseline path set, a node repeated across paths (the user node
  appears in all k of them) accumulates one appearance per incident edge
  per path;
- in a summary subgraph each edge is unique, so a node's appearances
  equal its degree — a node the summary routes through repeatedly is
  duplicated exactly as the paper describes for PCST's bushier trees.

``R = (total appearances - unique nodes) / total appearances``; lower is
better (fewer duplicates, more informative explanation).
"""

from __future__ import annotations

from collections import Counter

from repro.core.explanation import Explanation


def redundancy(explanation: Explanation) -> float:
    """Duplicate-appearance share in [0, 1); 0 when all unique."""
    appearances: Counter = Counter()
    for u, v in explanation.edge_mentions():
        appearances[u] += 1
        appearances[v] += 1
    total = sum(appearances.values())
    if total == 0:
        return 0.0
    duplicates = total - len(appearances)
    return duplicates / total
