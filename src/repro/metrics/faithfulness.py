"""Faithfulness: do explanation edges actually exist in the KG?

PLM-Rec "generates novel paths beyond the static KG topology" — i.e. it
can hallucinate hops — while PEARLM's contribution is "ensuring that
generated paths faithfully adhere to valid KG connections". This metric
quantifies that axis for any explanation: the fraction of its edges
present in the knowledge graph. 1.0 = fully faithful (always true for
ST/PCST summaries, which are KG subgraphs by construction).
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


def faithfulness(explanation: Explanation, graph: KnowledgeGraph) -> float:
    """Share of explanation edges that are real KG edges, in [0, 1]."""
    edges = explanation.edge_mentions()
    if not edges:
        return 1.0
    valid = sum(1 for u, v in edges if graph.has_edge(u, v))
    return valid / len(edges)


def hallucination_rate(
    paths: list[Path], graph: KnowledgeGraph
) -> float:
    """Share of *paths* containing at least one non-KG hop.

    The per-path view matters for user-facing trust: one invented hop
    invalidates the whole story the path tells.
    """
    if not paths:
        return 0.0
    broken = sum(1 for p in paths if not p.is_valid_in(graph))
    return broken / len(paths)
