"""Shortest-path primitives: Dijkstra (single/multi-source) and BFS.

The Steiner 2-approximation needs all-pairs shortest paths among the
terminal set; we provide single-source Dijkstra with predecessor tracking
plus an early-exit pairwise variant. Costs must be non-negative — the
summarizers guarantee this by affine-shifting the maximization weights
(see :mod:`repro.core.weighting`).

Every dict-based primitive has an index-based twin that runs on a
:class:`~repro.graph.csr.FrozenGraph` (``dijkstra_indexed``,
``bfs_distances_indexed``, ...). The indexed variants replicate the
dict-based control flow exactly — same neighbor order (CSR rows preserve
adjacency insertion order), same heap algorithm (:class:`IndexedHeap`
mirrors :class:`AddressableHeap`) — so they return identical distances
AND identical predecessor trees, ties included. ``dijkstra_frozen`` is
the drop-in id-keyed wrapper the Steiner machinery swaps in.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from array import array

from repro.graph.csr import FrozenCosts, FrozenGraph
from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph

CostFn = Callable[[str, str, float], float]

_MINUS_ONE = array("q", [-1])


def array_of_minus_one(length: int) -> array:
    """A length-``length`` int64 array filled with -1 (sentinel tables)."""
    return _MINUS_ONE * length


def _unit_cost(_u: str, _v: str, _w: float) -> float:
    return 1.0


def _weight_cost(_u: str, _v: str, w: float) -> float:
    return w


def dijkstra(
    graph: KnowledgeGraph,
    source: str,
    cost_fn: CostFn | None = None,
    targets: set[str] | None = None,
) -> tuple[dict[str, float], dict[str, str]]:
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        The knowledge graph (traversed undirected).
    source:
        Start node.
    cost_fn:
        Maps ``(u, v, stored_weight) -> cost``; defaults to the stored
        weight. Must return non-negative costs.
    targets:
        Optional early-exit set: the search stops once every target has
        been settled.

    Returns
    -------
    (dist, prev):
        ``dist[v]`` is the cost of the shortest path to each reached node,
        ``prev[v]`` its predecessor on that path (absent for ``source``).
    """
    if source not in graph:
        raise KeyError(f"unknown source node {source!r}")
    cost = cost_fn or _weight_cost
    remaining = set(targets) if targets else None
    if remaining is not None:
        remaining.discard(source)

    dist: dict[str, float] = {}
    prev: dict[str, str] = {}
    heap: AddressableHeap[str] = AddressableHeap()
    heap.push(source, 0.0)
    tentative_prev: dict[str, str] = {}

    while heap:
        node, d = heap.pop_min()
        dist[node] = d
        if node in tentative_prev:
            prev[node] = tentative_prev[node]
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in dist:
                continue
            edge_cost = cost(node, neighbor, stored)
            if edge_cost < 0:
                raise ValueError(
                    f"negative cost {edge_cost} on edge "
                    f"({node!r}, {neighbor!r}); shift weights first"
                )
            candidate = d + edge_cost
            if heap.decrease_if_lower(neighbor, candidate):
                tentative_prev[neighbor] = node
    return dist, prev


def reconstruct_path(prev: dict[str, str], source: str, target: str) -> list[str]:
    """Rebuild the node sequence source..target from a predecessor map."""
    if target == source:
        return [source]
    if target not in prev:
        raise KeyError(f"no path recorded to {target!r}")
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(prev[nodes[-1]])
    nodes.reverse()
    return nodes


def shortest_path_between(
    graph: KnowledgeGraph,
    source: str,
    target: str,
    cost_fn: CostFn | None = None,
) -> tuple[list[str], float]:
    """Shortest path between two nodes; raises ValueError if disconnected."""
    dist, prev = dijkstra(graph, source, cost_fn=cost_fn, targets={target})
    if target not in dist:
        raise ValueError(f"{source!r} and {target!r} are disconnected")
    return reconstruct_path(prev, source, target), dist[target]


def dijkstra_multi_source(
    graph: KnowledgeGraph,
    sources: Iterable[str],
    cost_fn: CostFn | None = None,
) -> tuple[dict[str, float], dict[str, str], dict[str, str]]:
    """Dijkstra from a set of sources simultaneously.

    Returns ``(dist, prev, origin)`` where ``origin[v]`` is the source whose
    shortest-path tree reached ``v``. Used by the Steiner metric-closure
    construction (a Mehlhorn-style optimization: one multi-source run gives
    every node's nearest terminal).
    """
    cost = cost_fn or _weight_cost
    dist: dict[str, float] = {}
    prev: dict[str, str] = {}
    origin: dict[str, str] = {}
    heap: AddressableHeap[str] = AddressableHeap()
    tentative_prev: dict[str, str] = {}
    tentative_origin: dict[str, str] = {}

    for source in sources:
        if source not in graph:
            raise KeyError(f"unknown source node {source!r}")
        heap.update(source, 0.0)
        tentative_origin[source] = source

    while heap:
        node, d = heap.pop_min()
        dist[node] = d
        origin[node] = tentative_origin[node]
        if node in tentative_prev:
            prev[node] = tentative_prev[node]
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in dist:
                continue
            candidate = d + cost(node, neighbor, stored)
            if heap.decrease_if_lower(neighbor, candidate):
                tentative_prev[neighbor] = node
                tentative_origin[neighbor] = tentative_origin[node]
    return dist, prev, origin


def bfs_shortest_path(
    graph: KnowledgeGraph, source: str, target: str
) -> list[str] | None:
    """Fewest-hops path (unit costs), or None if disconnected."""
    if source not in graph or target not in graph:
        return None
    if source == target:
        return [source]
    prev: dict[str, str] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor in prev:
                    continue
                prev[neighbor] = node
                if neighbor == target:
                    nodes = [target]
                    while nodes[-1] != source:
                        nodes.append(prev[nodes[-1]])
                    nodes.reverse()
                    return nodes
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def bfs_distances(graph: KnowledgeGraph, source: str) -> dict[str, int]:
    """Hop distance to every reachable node."""
    dist = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return dist


def bfs_eccentricity(
    graph: KnowledgeGraph, source: str
) -> tuple[int, int, int]:
    """(eccentricity, sum of distances, #reached-excluding-source).

    One pass used by :meth:`KnowledgeGraph.stats` to estimate average path
    length and diameter without materializing full distance maps.
    """
    dist = bfs_distances(graph, source)
    reached = len(dist) - 1
    if reached == 0:
        return 0, 0, 0
    ecc = max(dist.values())
    total = sum(dist.values())
    return ecc, total, reached

# ----------------------------------------------------------------------
# Index-based variants over a FrozenGraph (CSR backend)
# ----------------------------------------------------------------------
def _cost_slots(frozen: FrozenGraph, costs) -> "object":
    """Normalize a costs argument to a per-slot indexable of floats."""
    if costs is None:
        return frozen.traversal_tables()[2]
    if isinstance(costs, FrozenCosts):
        return costs.slots
    return costs


def dijkstra_indexed(
    frozen: FrozenGraph,
    source: int,
    costs=None,
    targets: set[int] | None = None,
    radius: float | None = None,
    cover_targets: bool = False,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths over the CSR view, by dense index.

    Parameters
    ----------
    frozen:
        The frozen CSR view.
    source:
        Dense index of the start node.
    costs:
        Per-slot costs: a :class:`~repro.graph.csr.FrozenCosts`, a raw
        array aligned with ``frozen.targets``, or None for the stored
        weights. Costs must be non-negative (not re-checked per
        relaxation here; build arrays via ``FrozenGraph.costs_from`` or
        the weighting's ``slot_costs`` to get validation).
    targets:
        Optional early-exit set of dense indices; indices outside
        ``[0, num_nodes)`` are allowed and simply never settle, matching
        the dict variant's behaviour for unknown target ids.
    radius:
        Optional settle bound: stop before settling any node whose
        distance exceeds ``radius``. The result is then *complete
        through* ``radius`` — every node at distance <= ``radius`` is
        settled with its exact distance. The batch engine's λ-aware
        reuse runs its per-hub base Dijkstras under this bound instead
        of settling whole components.
    cover_targets:
        With ``targets``: instead of stopping the moment the last
        target settles, finish that distance tier (equivalent to
        ``radius = max target distance``, discovered on the fly). The
        result is complete through the farthest requested target, which
        is what lets one run double as both a closure source and a
        radius bound for sibling runs.

    Returns
    -------
    (dist, prev):
        Index-keyed equivalents of :func:`dijkstra`'s return value, with
        identical contents (and identical tie-breaking) for the same
        graph and costs.
    """
    num_nodes = frozen.num_nodes
    if not 0 <= source < num_nodes:
        raise KeyError(f"source index {source} out of range")
    slot_costs = _cost_slots(frozen, costs)
    remaining = set(targets) if targets else None
    if remaining is not None:
        remaining.discard(source)
    cutoff = radius
    offsets, edge_targets, _ = frozen.traversal_tables()

    # The binary heap is inlined (it is the whole cost of this loop):
    # same sift algorithm as AddressableHeap/IndexedHeap, comparing only
    # priorities, so the settle order — tie-breaking included — matches
    # the dict-based dijkstra() exactly.
    settled = bytearray(num_nodes)
    settle_value = [0.0] * num_nodes
    parent = array_of_minus_one(num_nodes)
    heap_slot = array_of_minus_one(num_nodes)
    prios: list[float] = [0.0]
    keys: list[int] = [source]
    heap_slot[source] = 0
    settle_order: list[int] = []

    while keys:
        node = keys[0]
        d = prios[0]
        if cutoff is not None and d > cutoff:
            break
        last_prio = prios.pop()
        last_key = keys.pop()
        heap_slot[node] = -1
        size = len(keys)
        if size:
            index = 0
            while True:
                child = 2 * index + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and prios[right] < prios[child]:
                    child = right
                if prios[child] >= last_prio:
                    break
                prios[index] = prios[child]
                keys[index] = keys[child]
                heap_slot[keys[index]] = index
                index = child
            prios[index] = last_prio
            keys[index] = last_key
            heap_slot[last_key] = index

        settled[node] = 1
        settle_value[node] = d
        settle_order.append(node)
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                if not cover_targets:
                    break
                # Finish the current distance tier so the result is
                # complete through the farthest target's distance.
                remaining = None
                cutoff = d if cutoff is None else min(cutoff, d)
        # zip over row slices, not range-indexing: a range boxes a fresh
        # int per slot while slices of the pre-boxed traversal lists do
        # not, which is both slightly faster and far cheaper under
        # allocation tracing (the Fig 9-11 tracemalloc probes). Same
        # iteration order.
        row_start = offsets[node]
        row_end = offsets[node + 1]
        for neighbor, edge_cost in zip(
            edge_targets[row_start:row_end], slot_costs[row_start:row_end]
        ):
            if settled[neighbor]:
                continue
            candidate = d + edge_cost
            index = heap_slot[neighbor]
            if index == -1:
                index = len(keys)
                prios.append(candidate)
                keys.append(neighbor)
            elif candidate < prios[index]:
                pass
            else:
                continue
            while index > 0:
                above = (index - 1) >> 1
                if prios[above] <= candidate:
                    break
                prios[index] = prios[above]
                keys[index] = keys[above]
                heap_slot[keys[index]] = index
                index = above
            prios[index] = candidate
            keys[index] = neighbor
            heap_slot[neighbor] = index
            parent[neighbor] = node

    dist: dict[int, float] = {}
    prev: dict[int, int] = {}
    for node in settle_order:
        dist[node] = settle_value[node]
        above = parent[node]
        if above != -1:
            prev[node] = above
    return dist, prev


def dijkstra_frozen(
    frozen: FrozenGraph,
    source: str,
    costs=None,
    targets: Iterable[str] | None = None,
) -> tuple[dict[str, float], dict[str, str]]:
    """:func:`dijkstra` drop-in running on a frozen view.

    Takes and returns node *ids*; internally runs
    :func:`dijkstra_indexed` and maps back. Unknown target ids (absent
    from the graph) suppress the early exit exactly like the dict
    variant, so disconnection is reported identically by callers.
    """
    if source not in frozen:
        raise KeyError(f"unknown source node {source!r}")
    target_indices: set[int] | None = None
    if targets:
        target_indices = set()
        missing = -1
        for target in targets:
            if target in frozen:
                target_indices.add(frozen.index_of(target))
            else:
                # Unsettleable sentinel (one per unknown id) keeps the
                # search exhaustive, mirroring the dict variant.
                target_indices.add(missing)
                missing -= 1
    dist, prev = dijkstra_indexed(
        frozen, frozen.index_of(source), costs=costs, targets=target_indices
    )
    ids = frozen.ids
    return (
        {ids[node]: d for node, d in dist.items()},
        {ids[node]: ids[parent] for node, parent in prev.items()},
    )


def dijkstra_multi_source_indexed(
    frozen: FrozenGraph,
    sources: Iterable[int],
    costs=None,
) -> tuple[dict[int, float], dict[int, int], dict[int, int]]:
    """:func:`dijkstra_multi_source` over the CSR view, by dense index.

    Returns ``(dist, prev, origin)`` — index-keyed equivalents of the
    dict variant's return value, with identical contents and identical
    tie-breaking for the same graph and costs: the sources are seeded in
    the given order and the inlined heap replays the exact sift algorithm
    of :class:`~repro.graph.heap.AddressableHeap`, so the settle order
    (ties included), the predecessor tree and the Voronoi ``origin``
    labels all match. This is the single sweep Mehlhorn's closure rides
    on (``mehlhorn_steiner_tree_indexed`` consumes the raw tables via
    :func:`multi_source_tables` to skip the dict round-trip).
    """
    settle_order, settle_value, parent, origin_of = multi_source_tables(
        frozen, sources, costs=costs
    )
    dist: dict[int, float] = {}
    prev: dict[int, int] = {}
    origin: dict[int, int] = {}
    for node in settle_order:
        dist[node] = settle_value[node]
        origin[node] = origin_of[node]
        above = parent[node]
        if above != -1:
            prev[node] = above
    return dist, prev, origin


def multi_source_tables(
    frozen: FrozenGraph,
    sources: Iterable[int],
    costs=None,
) -> tuple[list[int], list[float], array, array]:
    """Raw tables of the multi-source sweep (the Mehlhorn hot path).

    Returns ``(settle_order, settle_value, parent, origin)`` where the
    latter three are dense per-node tables (``parent``/``origin`` hold
    -1 for unreached nodes) and ``settle_order`` lists settled indices
    in pop order — the iteration order the dict variant's result dicts
    would have.
    """
    num_nodes = frozen.num_nodes
    slot_costs = _cost_slots(frozen, costs)
    offsets, edge_targets, _ = frozen.traversal_tables()

    settled = bytearray(num_nodes)
    settle_value = [0.0] * num_nodes
    parent = array_of_minus_one(num_nodes)
    origin_of = array_of_minus_one(num_nodes)
    heap_slot = array_of_minus_one(num_nodes)
    prios: list[float] = []
    keys: list[int] = []
    settle_order: list[int] = []

    # Seed every source at priority 0.0 in the given order — equal
    # priorities sift to insertion order, exactly like the dict
    # variant's AddressableHeap.update() loop.
    for source in sources:
        if not 0 <= source < num_nodes:
            raise KeyError(f"source index {source} out of range")
        if heap_slot[source] != -1:
            continue
        index = len(keys)
        prios.append(0.0)
        keys.append(source)
        heap_slot[source] = index
        origin_of[source] = source
        while index > 0:
            above = (index - 1) >> 1
            if prios[above] <= 0.0:
                break
            prios[index] = prios[above]
            keys[index] = keys[above]
            heap_slot[keys[index]] = index
            index = above
        prios[index] = 0.0
        keys[index] = source
        heap_slot[source] = index

    while keys:
        node = keys[0]
        d = prios[0]
        last_prio = prios.pop()
        last_key = keys.pop()
        heap_slot[node] = -1
        size = len(keys)
        if size:
            index = 0
            while True:
                child = 2 * index + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and prios[right] < prios[child]:
                    child = right
                if prios[child] >= last_prio:
                    break
                prios[index] = prios[child]
                keys[index] = keys[child]
                heap_slot[keys[index]] = index
                index = child
            prios[index] = last_prio
            keys[index] = last_key
            heap_slot[last_key] = index

        settled[node] = 1
        settle_value[node] = d
        settle_order.append(node)
        node_origin = origin_of[node]
        # Row slices + zip for the same reason as dijkstra_indexed: no
        # per-slot int boxing, same iteration order.
        row_start = offsets[node]
        row_end = offsets[node + 1]
        for neighbor, edge_cost in zip(
            edge_targets[row_start:row_end], slot_costs[row_start:row_end]
        ):
            if settled[neighbor]:
                continue
            candidate = d + edge_cost
            index = heap_slot[neighbor]
            if index == -1:
                index = len(keys)
                prios.append(candidate)
                keys.append(neighbor)
            elif candidate < prios[index]:
                pass
            else:
                continue
            while index > 0:
                above = (index - 1) >> 1
                if prios[above] <= candidate:
                    break
                prios[index] = prios[above]
                keys[index] = keys[above]
                heap_slot[keys[index]] = index
                index = above
            prios[index] = candidate
            keys[index] = neighbor
            heap_slot[neighbor] = index
            parent[neighbor] = node
            origin_of[neighbor] = node_origin

    return settle_order, settle_value, parent, origin_of


def dijkstra_multi_source_frozen(
    frozen: FrozenGraph,
    sources: Iterable[str],
    costs=None,
) -> tuple[dict[str, float], dict[str, str], dict[str, str]]:
    """:func:`dijkstra_multi_source` drop-in running on a frozen view.

    Takes and returns node *ids*; internally runs
    :func:`dijkstra_multi_source_indexed` and maps back.
    """
    source_indices = []
    for source in sources:
        if source not in frozen:
            raise KeyError(f"unknown source node {source!r}")
        source_indices.append(frozen.index_of(source))
    dist, prev, origin = dijkstra_multi_source_indexed(
        frozen, source_indices, costs=costs
    )
    ids = frozen.ids
    return (
        {ids[node]: d for node, d in dist.items()},
        {ids[node]: ids[parent] for node, parent in prev.items()},
        {ids[node]: ids[label] for node, label in origin.items()},
    )


def bfs_distances_indexed(
    frozen: FrozenGraph, source: int
) -> dict[int, int]:
    """Hop distance to every reachable node, by dense index."""
    dist = {source: 0}
    frontier = [source]
    depth = 0
    offsets, edge_targets, _ = frozen.traversal_tables()
    while frontier:
        depth += 1
        next_frontier: list[int] = []
        for node in frontier:
            for slot in range(offsets[node], offsets[node + 1]):
                neighbor = edge_targets[slot]
                if neighbor not in dist:
                    dist[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return dist


def bfs_eccentricity_indexed(
    frozen: FrozenGraph, source: int
) -> tuple[int, int, int]:
    """Index-based :func:`bfs_eccentricity` (same return value)."""
    dist = bfs_distances_indexed(frozen, source)
    reached = len(dist) - 1
    if reached == 0:
        return 0, 0, 0
    return max(dist.values()), sum(dist.values()), reached
