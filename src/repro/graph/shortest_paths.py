"""Shortest-path primitives: Dijkstra (single/multi-source) and BFS.

The Steiner 2-approximation needs all-pairs shortest paths among the
terminal set; we provide single-source Dijkstra with predecessor tracking
plus an early-exit pairwise variant. Costs must be non-negative — the
summarizers guarantee this by affine-shifting the maximization weights
(see :mod:`repro.core.weighting`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph

CostFn = Callable[[str, str, float], float]


def _unit_cost(_u: str, _v: str, _w: float) -> float:
    return 1.0


def _weight_cost(_u: str, _v: str, w: float) -> float:
    return w


def dijkstra(
    graph: KnowledgeGraph,
    source: str,
    cost_fn: CostFn | None = None,
    targets: set[str] | None = None,
) -> tuple[dict[str, float], dict[str, str]]:
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        The knowledge graph (traversed undirected).
    source:
        Start node.
    cost_fn:
        Maps ``(u, v, stored_weight) -> cost``; defaults to the stored
        weight. Must return non-negative costs.
    targets:
        Optional early-exit set: the search stops once every target has
        been settled.

    Returns
    -------
    (dist, prev):
        ``dist[v]`` is the cost of the shortest path to each reached node,
        ``prev[v]`` its predecessor on that path (absent for ``source``).
    """
    if source not in graph:
        raise KeyError(f"unknown source node {source!r}")
    cost = cost_fn or _weight_cost
    remaining = set(targets) if targets else None
    if remaining is not None:
        remaining.discard(source)

    dist: dict[str, float] = {}
    prev: dict[str, str] = {}
    heap: AddressableHeap[str] = AddressableHeap()
    heap.push(source, 0.0)
    tentative_prev: dict[str, str] = {}

    while heap:
        node, d = heap.pop_min()
        dist[node] = d
        if node in tentative_prev:
            prev[node] = tentative_prev[node]
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in dist:
                continue
            edge_cost = cost(node, neighbor, stored)
            if edge_cost < 0:
                raise ValueError(
                    f"negative cost {edge_cost} on edge "
                    f"({node!r}, {neighbor!r}); shift weights first"
                )
            candidate = d + edge_cost
            if heap.decrease_if_lower(neighbor, candidate):
                tentative_prev[neighbor] = node
    return dist, prev


def reconstruct_path(prev: dict[str, str], source: str, target: str) -> list[str]:
    """Rebuild the node sequence source..target from a predecessor map."""
    if target == source:
        return [source]
    if target not in prev:
        raise KeyError(f"no path recorded to {target!r}")
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(prev[nodes[-1]])
    nodes.reverse()
    return nodes


def shortest_path_between(
    graph: KnowledgeGraph,
    source: str,
    target: str,
    cost_fn: CostFn | None = None,
) -> tuple[list[str], float]:
    """Shortest path between two nodes; raises ValueError if disconnected."""
    dist, prev = dijkstra(graph, source, cost_fn=cost_fn, targets={target})
    if target not in dist:
        raise ValueError(f"{source!r} and {target!r} are disconnected")
    return reconstruct_path(prev, source, target), dist[target]


def dijkstra_multi_source(
    graph: KnowledgeGraph,
    sources: Iterable[str],
    cost_fn: CostFn | None = None,
) -> tuple[dict[str, float], dict[str, str], dict[str, str]]:
    """Dijkstra from a set of sources simultaneously.

    Returns ``(dist, prev, origin)`` where ``origin[v]`` is the source whose
    shortest-path tree reached ``v``. Used by the Steiner metric-closure
    construction (a Mehlhorn-style optimization: one multi-source run gives
    every node's nearest terminal).
    """
    cost = cost_fn or _weight_cost
    dist: dict[str, float] = {}
    prev: dict[str, str] = {}
    origin: dict[str, str] = {}
    heap: AddressableHeap[str] = AddressableHeap()
    tentative_prev: dict[str, str] = {}
    tentative_origin: dict[str, str] = {}

    for source in sources:
        if source not in graph:
            raise KeyError(f"unknown source node {source!r}")
        heap.update(source, 0.0)
        tentative_origin[source] = source

    while heap:
        node, d = heap.pop_min()
        dist[node] = d
        origin[node] = tentative_origin[node]
        if node in tentative_prev:
            prev[node] = tentative_prev[node]
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in dist:
                continue
            candidate = d + cost(node, neighbor, stored)
            if heap.decrease_if_lower(neighbor, candidate):
                tentative_prev[neighbor] = node
                tentative_origin[neighbor] = tentative_origin[node]
    return dist, prev, origin


def bfs_shortest_path(
    graph: KnowledgeGraph, source: str, target: str
) -> list[str] | None:
    """Fewest-hops path (unit costs), or None if disconnected."""
    if source not in graph or target not in graph:
        return None
    if source == target:
        return [source]
    prev: dict[str, str] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor in prev:
                    continue
                prev[neighbor] = node
                if neighbor == target:
                    nodes = [target]
                    while nodes[-1] != source:
                        nodes.append(prev[nodes[-1]])
                    nodes.reverse()
                    return nodes
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def bfs_distances(graph: KnowledgeGraph, source: str) -> dict[str, int]:
    """Hop distance to every reachable node."""
    dist = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return dist


def bfs_eccentricity(
    graph: KnowledgeGraph, source: str
) -> tuple[int, int, int]:
    """(eccentricity, sum of distances, #reached-excluding-source).

    One pass used by :meth:`KnowledgeGraph.stats` to estimate average path
    length and diameter without materializing full distance maps.
    """
    dist = bfs_distances(graph, source)
    reached = len(dist) - 1
    if reached == 0:
        return 0, 0, 0
    ecc = max(dist.values())
    total = sum(dist.values())
    return ecc, total, reached
