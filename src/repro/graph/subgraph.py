"""Subgraph utilities: induced subgraphs and weak-connectivity checks.

Summary explanations are *weakly connected subgraphs* of G (problem
definition, §III); this module provides the checks the summarizers and the
property-based tests rely on.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.knowledge_graph import KnowledgeGraph


def induced_subgraph(
    graph: KnowledgeGraph, nodes: Iterable[str]
) -> KnowledgeGraph:
    """Subgraph of ``graph`` induced by ``nodes`` (names/relations kept).

    Nodes and edges are inserted in sorted order so the result is
    bit-identical across processes regardless of the iteration order of
    ``nodes`` (sets hash-randomize between interpreters).
    """
    keep = set(nodes)
    sub = KnowledgeGraph()
    for node in sorted(keep):
        if node not in graph:
            raise KeyError(f"unknown node {node!r}")
        sub.add_node(node, graph.name(node) if graph.name(node) != node else "")
    for node in sorted(keep):
        for neighbor, weight in graph.neighbors(node).items():
            if neighbor in keep and node < neighbor:
                sub.add_edge(
                    node, neighbor, weight, graph.relation(node, neighbor)
                )
    return sub


def edge_subgraph(
    graph: KnowledgeGraph, edges: Iterable[tuple[str, str]]
) -> KnowledgeGraph:
    """Subgraph containing exactly ``edges`` (weights copied from graph).

    Edges are inserted in sorted order so the result is bit-identical
    across processes regardless of the iteration order of ``edges``.
    """
    sub = KnowledgeGraph()
    for u, v in sorted(edges):
        sub.add_edge(u, v, graph.weight(u, v), graph.relation(u, v))
        for node in (u, v):
            name = graph.name(node)
            if name != node:
                sub.set_name(node, name)
    return sub


def weakly_connected_components(graph: KnowledgeGraph) -> list[set[str]]:
    """Connected components (the graph is stored symmetrically, so weak
    connectivity coincides with plain connectivity)."""
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    return components


def is_weakly_connected(graph: KnowledgeGraph) -> bool:
    """True iff the graph has exactly one weakly connected component."""
    if graph.num_nodes == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def is_tree(graph: KnowledgeGraph) -> bool:
    """True iff the graph is a tree: connected with |E| = |V| - 1."""
    if graph.num_nodes == 0:
        return True
    return (
        graph.num_edges == graph.num_nodes - 1 and is_weakly_connected(graph)
    )


def is_forest(graph: KnowledgeGraph) -> bool:
    """True iff acyclic: every component satisfies |E| = |V| - 1."""
    total_edges = 0
    for component in weakly_connected_components(graph):
        edges_in_component = (
            sum(len(graph.neighbors(n)) for n in component) // 2
        )
        if edges_in_component != len(component) - 1:
            return False
        total_edges += edges_in_component
    return total_edges == graph.num_edges
