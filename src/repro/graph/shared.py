"""Shared-memory serialization plane for :class:`FrozenGraph`.

The process-pool batch backend (:mod:`repro.core.batch`) needs every
worker to traverse the *same* frozen CSR view without paying a per-task
(or even per-worker) pickle of the graph. This module moves a frozen
view through :mod:`multiprocessing.shared_memory`:

- :func:`export_frozen` copies the CSR arrays (offsets / targets /
  weights), the string-rank table and a JSON side-table (node ids,
  display names, relations) into named shared-memory blocks — one copy,
  done once by the parent. The returned :class:`SharedGraphExport` owns
  the blocks (close + unlink on teardown) and carries the picklable
  :class:`SharedGraphHandle` workers attach by.
- :func:`attach_frozen` maps those blocks back into a
  :class:`FrozenGraph` whose arrays are **zero-copy** ``memoryview``
  casts over the shared buffers — workers never duplicate the big
  arrays; the OS shares the physical pages.
- :func:`attach_knowledge_graph` additionally rebuilds the dict-of-dicts
  :class:`KnowledgeGraph` around the attached view (adjacency rows in
  CSR order replay the original insertion order, so traversal
  tie-breaking is bit-identical) and pre-binds ``graph.freeze()`` to the
  attached view.

Lifecycle rules (spawn-safe on every platform):

- The parent owns the blocks: it must call ``close()`` and ``unlink()``
  (or use the export as a context manager) when the batch run ends.
- Workers only ever *attach*. Attached blocks are deregistered from the
  ``multiprocessing.resource_tracker`` (Python < 3.13 registers them on
  attach, which would otherwise unlink blocks still in use when the
  first worker exits) and released by an ``atexit`` hook so interpreter
  shutdown never trips over exported buffers.
"""

from __future__ import annotations

import atexit
import json
import uuid
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.graph.csr import FrozenGraph

#: Block name suffixes: offsets, targets, weights, ranks, meta (JSON).
_SUFFIXES = ("o", "t", "w", "r", "m")


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable address of an exported frozen view.

    Small enough to travel through ``ProcessPoolExecutor`` initargs; the
    arrays themselves stay in the named shared-memory blocks.
    """

    token: str
    num_nodes: int
    num_slots: int
    meta_size: int
    version: int

    def block_name(self, suffix: str) -> str:
        """Shared-memory block name for one array."""
        return f"{self.token}{suffix}"

    def block_names(self) -> list[str]:
        """All block names this handle addresses."""
        return [self.block_name(suffix) for suffix in _SUFFIXES]


class SharedGraphExport:
    """Parent-side owner of the exported blocks.

    Usable as a context manager; ``__exit__`` closes *and* unlinks, so
    the blocks disappear from ``/dev/shm`` even on error paths.
    """

    def __init__(
        self,
        handle: SharedGraphHandle,
        blocks: list[shared_memory.SharedMemory],
    ) -> None:
        self.handle = handle
        self._blocks = blocks

    def close(self) -> None:
        """Release the parent's mapping (workers keep theirs)."""
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass

    def unlink(self) -> None:
        """Remove the blocks from the system (idempotent)."""
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedGraphExport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        self.unlink()


def export_frozen(frozen: FrozenGraph) -> SharedGraphExport:
    """Copy a frozen view into named shared-memory blocks.

    The side table (ids, display names, relations) is read from the
    source :class:`KnowledgeGraph` when it is still alive, so workers
    can rebuild a fully equivalent graph object; a detached view exports
    with empty side tables.
    """
    source = frozen._source() if frozen._source is not None else None
    names = dict(source._names) if source is not None else {}
    relations = (
        [[u, v, rel] for (u, v), rel in source._relations.items()]
        if source is not None
        else []
    )
    meta = json.dumps(
        {"ids": frozen.ids, "names": names, "relations": relations},
        separators=(",", ":"),
    ).encode("utf-8")
    ranks = array("q", frozen.string_ranks())

    token = f"rxg{uuid.uuid4().hex[:12]}"
    handle = SharedGraphHandle(
        token=token,
        num_nodes=frozen.num_nodes,
        num_slots=len(frozen.targets),
        meta_size=len(meta),
        version=frozen.version,
    )
    payloads = {
        "o": bytes(memoryview(frozen.offsets)),
        "t": bytes(memoryview(frozen.targets)),
        "w": bytes(memoryview(frozen.weights)),
        "r": ranks.tobytes(),
        "m": meta,
    }
    blocks: list[shared_memory.SharedMemory] = []
    try:
        for suffix in _SUFFIXES:
            payload = payloads[suffix]
            block = shared_memory.SharedMemory(
                name=handle.block_name(suffix),
                create=True,
                size=max(1, len(payload)),
            )
            blocks.append(block)
            block.buf[: len(payload)] = payload
    except BaseException:
        for block in blocks:
            block.close()
            block.unlink()
        raise
    return SharedGraphExport(handle, blocks)


# ----------------------------------------------------------------------
# Worker-side attach
# ----------------------------------------------------------------------
#: (block, views) pairs attached by this process, released at exit in
#: reverse order (views before their backing blocks).
_ATTACHED: list[tuple[shared_memory.SharedMemory, list[memoryview]]] = []


def _release_attachments() -> None:
    """Release every attachment this process holds (atexit + tests)."""
    while _ATTACHED:
        block, views = _ATTACHED.pop()
        for view in views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - sub-view alive
                pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - unreleased view
            pass


atexit.register(_release_attachments)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without adopting ownership.

    Python 3.13+ takes ``track=False`` so the resource tracker never
    considers this process an owner; on 3.10-3.12 a plain attach
    already leaves tracker registration to the creating process (the
    exporter), which is the behaviour we want — owners unlink, workers
    only map.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        return shared_memory.SharedMemory(name=name)


def attach_frozen(
    handle: SharedGraphHandle,
) -> tuple[FrozenGraph, dict]:
    """Map an exported view back into a zero-copy :class:`FrozenGraph`.

    Returns ``(frozen, meta)`` where ``meta`` is the JSON side table
    (``ids`` / ``names`` / ``relations``). The frozen view's arrays are
    ``memoryview`` casts over the shared buffers — no array copy; the
    string-rank table is pre-populated from the exported block so e.g.
    the Mehlhorn closure never re-sorts ids per worker.
    """
    blocks: dict[str, shared_memory.SharedMemory] = {}
    views: list[memoryview] = []
    try:
        for suffix in _SUFFIXES:
            blocks[suffix] = _attach_block(handle.block_name(suffix))
        n, m = handle.num_nodes, handle.num_slots
        offsets = blocks["o"].buf[: (n + 1) * 8].cast("q")
        targets = blocks["t"].buf[: m * 8].cast("q")
        weights = blocks["w"].buf[: m * 8].cast("d")
        views += [offsets, targets, weights]
        ranks = list(blocks["r"].buf[: n * 8].cast("q")) if n else []
        meta = json.loads(
            bytes(blocks["m"].buf[: handle.meta_size]).decode("utf-8")
        )
    except BaseException:
        for view in views:
            view.release()
        for block in blocks.values():
            block.close()
        raise
    ids = list(meta["ids"])
    frozen = FrozenGraph(
        ids,
        {node: i for i, node in enumerate(ids)},
        offsets,
        targets,
        weights,
        handle.version,
    )
    frozen._ranks = ranks
    _ATTACHED.append((blocks["o"], [offsets]))
    _ATTACHED.append((blocks["t"], [targets]))
    _ATTACHED.append((blocks["w"], [weights]))
    _ATTACHED.append((blocks["r"], []))
    _ATTACHED.append((blocks["m"], []))
    return frozen, meta


def attach_knowledge_graph(handle: SharedGraphHandle):
    """Rebuild a read-only :class:`KnowledgeGraph` around a shared view.

    The adjacency is reconstructed from the CSR rows (node order = the
    exported ``ids`` order = the original insertion order; neighbor
    order inside each row = the original adjacency insertion order), so
    every traversal over the rebuilt graph replays the parent's
    tie-breaking exactly. ``graph.freeze()`` is pre-bound to the
    attached zero-copy view — workers never recompile the CSR.
    """
    from repro.graph.knowledge_graph import KnowledgeGraph

    frozen, meta = attach_frozen(handle)
    ids = frozen.ids
    offsets, targets, weights = (
        frozen.offsets,
        frozen.targets,
        frozen.weights,
    )
    graph = KnowledgeGraph()
    adjacency: dict[str, dict[str, float]] = {}
    for u, node in enumerate(ids):
        row = {}
        for slot in range(offsets[u], offsets[u + 1]):
            row[ids[targets[slot]]] = weights[slot]
        adjacency[node] = row
    graph._adjacency = adjacency
    graph._names = dict(meta.get("names", {}))
    graph._relations = {
        (u, v): rel for u, v, rel in meta.get("relations", [])
    }
    graph._num_edges = handle.num_slots // 2
    graph._version = handle.version
    graph._frozen = frozen
    return graph


def detach_all() -> None:
    """Release this process's attachments now (mainly for tests)."""
    _release_attachments()
