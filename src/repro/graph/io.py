"""Serialization: knowledge graphs and path sets to/from JSON and TSV.

A downstream user needs to persist generated graphs, exchange explanation
paths with other tooling, and reload experiment artifacts. Formats:

- JSON (one document: nodes with names, edges with weight/relation) —
  lossless round trip;
- TSV edge list (``source<TAB>target<TAB>weight<TAB>relation``) — for
  spreadsheet/graph-tool interop, loses node names of isolated nodes;
- JSON lines for paths (one path per line with provenance).
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path

FORMAT_VERSION = 1


def graph_to_dict(graph: KnowledgeGraph) -> dict:
    """Plain-dict form of a graph (JSON-ready)."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [
            {"id": node, "name": graph.name(node)}
            if graph.name(node) != node
            else {"id": node}
            for node in sorted(graph.nodes())
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "weight": edge.weight,
                **({"relation": edge.relation} if edge.relation else {}),
            }
            for edge in sorted(
                graph.edges(), key=lambda e: (e.source, e.target)
            )
        ],
    }


def graph_from_dict(payload: dict) -> KnowledgeGraph:
    """Inverse of :func:`graph_to_dict`."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = KnowledgeGraph()
    for node in payload.get("nodes", ()):
        graph.add_node(node["id"], node.get("name", ""))
    for edge in payload.get("edges", ()):
        graph.add_edge(
            edge["source"],
            edge["target"],
            float(edge.get("weight", 1.0)),
            edge.get("relation", ""),
        )
    return graph


def save_graph_json(graph: KnowledgeGraph, path: str | FilePath) -> None:
    """Write a lossless JSON dump."""
    FilePath(path).write_text(json.dumps(graph_to_dict(graph)))


def load_graph_json(path: str | FilePath) -> KnowledgeGraph:
    """Load a :func:`save_graph_json` dump."""
    return graph_from_dict(json.loads(FilePath(path).read_text()))


def save_graph_tsv(graph: KnowledgeGraph, path: str | FilePath) -> None:
    """Write a TSV edge list (header + one row per undirected edge)."""
    lines = ["source\ttarget\tweight\trelation"]
    for edge in sorted(graph.edges(), key=lambda e: (e.source, e.target)):
        lines.append(
            f"{edge.source}\t{edge.target}\t{edge.weight}\t{edge.relation}"
        )
    FilePath(path).write_text("\n".join(lines) + "\n")


def load_graph_tsv(path: str | FilePath) -> KnowledgeGraph:
    """Load a :func:`save_graph_tsv` edge list."""
    graph = KnowledgeGraph()
    lines = FilePath(path).read_text().splitlines()
    if not lines or lines[0] != "source\ttarget\tweight\trelation":
        raise ValueError("not a graph TSV (missing header)")
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise ValueError(f"malformed TSV row at line {number}")
        source, target, weight, relation = parts
        graph.add_edge(source, target, float(weight), relation)
    return graph


def save_paths_jsonl(paths: list[Path], path: str | FilePath) -> None:
    """Write explanation paths as JSON lines (nodes + provenance)."""
    lines = [
        json.dumps(
            {
                "nodes": list(p.nodes),
                "user": p.user,
                "item": p.item,
                "score": p.score,
            }
        )
        for p in paths
    ]
    FilePath(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_paths_jsonl(path: str | FilePath) -> list[Path]:
    """Load a :func:`save_paths_jsonl` dump."""
    paths = []
    for line in FilePath(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        paths.append(
            Path(
                nodes=tuple(record["nodes"]),
                user=record.get("user", ""),
                item=record.get("item", ""),
                score=float(record.get("score", 0.0)),
            )
        )
    return paths
