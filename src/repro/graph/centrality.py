"""Node centrality measures (extension; paper §VII future work).

The paper's future work proposes "incorporating node centrality
measures" into the PCST prize assignment. This module provides the
measures a prize policy can consume: degree, sampled closeness/harmonic
centrality, and PageRank via power iteration. All return plain
``{node_id: score}`` maps normalized to [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.shortest_paths import bfs_distances


def degree_centrality(graph: KnowledgeGraph) -> dict[str, float]:
    """Degree normalized by the maximum degree."""
    degrees = {n: graph.degree(n) for n in graph.nodes()}
    top = max(degrees.values(), default=1) or 1
    return {n: d / top for n, d in degrees.items()}


def closeness_centrality(
    graph: KnowledgeGraph,
    sample_sources: int = 0,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Closeness ``(reached) / Σ d(v, ·)`` from hop distances.

    Exact when ``sample_sources == 0``; otherwise estimated from BFS
    trees rooted at a random source sample (each BFS contributes its
    distances symmetrically, which is exact for undirected graphs).
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    sources = nodes
    if sample_sources and sample_sources < len(nodes):
        rng = rng or np.random.default_rng(0)
        picks = rng.choice(len(nodes), size=sample_sources, replace=False)
        sources = [nodes[int(p)] for p in picks]

    totals = {n: 0 for n in nodes}
    counts = {n: 0 for n in nodes}
    for source in sources:
        for node, d in bfs_distances(graph, source).items():
            if node == source:
                continue
            totals[node] += d
            counts[node] += 1
    scores = {}
    for node in nodes:
        if totals[node] == 0:
            scores[node] = 0.0
        else:
            scores[node] = counts[node] / totals[node]
    top = max(scores.values(), default=1.0) or 1.0
    return {n: s / top for n, s in scores.items()}


def harmonic_centrality(
    graph: KnowledgeGraph,
    sample_sources: int = 0,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Harmonic centrality ``Σ 1/d(v, ·)`` (robust to disconnection)."""
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    sources = nodes
    if sample_sources and sample_sources < len(nodes):
        rng = rng or np.random.default_rng(0)
        picks = rng.choice(len(nodes), size=sample_sources, replace=False)
        sources = [nodes[int(p)] for p in picks]

    scores = {n: 0.0 for n in nodes}
    for source in sources:
        for node, d in bfs_distances(graph, source).items():
            if node != source:
                scores[node] += 1.0 / d
    top = max(scores.values(), default=1.0) or 1.0
    return {n: s / top for n, s in scores.items()}


def pagerank(
    graph: KnowledgeGraph,
    damping: float = 0.85,
    max_iterations: int = 60,
    tolerance: float = 1e-8,
) -> dict[str, float]:
    """PageRank by dense power iteration (normalized to max = 1).

    Suitable for the graph sizes this project handles (tens of
    thousands of nodes); raises on an empty graph.
    """
    nodes = sorted(graph.nodes())
    if not nodes:
        raise ValueError("pagerank of an empty graph")
    index = {n: i for i, n in enumerate(nodes)}
    n = len(nodes)
    rank = np.full(n, 1.0 / n)
    degrees = np.array([graph.degree(node) for node in nodes], dtype=float)

    # CSR-style flattened adjacency: per-iteration work is two vectorized
    # gathers + one reduceat instead of a Python loop over nodes.
    offsets = np.zeros(n + 1, dtype=np.int64)
    flat: list[int] = []
    for i, node in enumerate(nodes):
        neighbors = graph.neighbors(node)
        flat.extend(index[m] for m in neighbors)
        offsets[i + 1] = len(flat)
    flat_indices = np.array(flat, dtype=np.int64)
    starts = offsets[:-1]
    has_neighbors = offsets[1:] > starts

    for _ in range(max_iterations):
        contribution = np.where(
            degrees > 0, rank / np.maximum(degrees, 1), 0.0
        )
        next_rank = np.full(n, (1.0 - damping) / n)
        next_rank += damping * rank[degrees == 0].sum() / n
        if len(flat_indices):
            # Sentinel 0 keeps every start offset in range (rows whose
            # start equals the data length would otherwise crash
            # reduceat); empty rows produce garbage single-element sums
            # that the has_neighbors mask discards.
            gathered = np.append(contribution[flat_indices], 0.0)
            sums = np.zeros(n)
            reduced = np.add.reduceat(gathered, starts)
            sums[has_neighbors] = reduced[has_neighbors]
            next_rank += damping * sums
        if np.abs(next_rank - rank).sum() < tolerance:
            rank = next_rank
            break
        rank = next_rank
    top = rank.max() or 1.0
    return {node: float(rank[index[node]] / top) for node in nodes}
