"""Frozen CSR (compressed sparse row) view of a :class:`KnowledgeGraph`.

The dict-of-dicts adjacency is ideal for incremental construction but
slow to traverse: every Dijkstra relaxation hashes a string, walks a
dict, and calls a Python cost function. :class:`FrozenGraph` compiles
the graph once into flat int-indexed arrays —

- ``offsets[i] .. offsets[i + 1]`` delimits node ``i``'s slot range,
- ``targets[s]`` is the neighbor index stored in slot ``s``,
- ``weights[s]`` the stored edge weight of that (directed) slot —

plus an id <-> index interning table, so the hot loops in
:mod:`repro.graph.shortest_paths` run on integers and array lookups.

Neighbor order within a row replicates the adjacency dict's insertion
order exactly. Combined with the shared heap algorithm this makes the
indexed Dijkstra bit-identical to the dict-based one (same settle order,
same tie-breaking, same predecessor trees) — the property the parity
tests in ``tests/properties/test_csr_properties.py`` pin down.

Arrays use the stdlib ``array`` module; :meth:`FrozenGraph.to_numpy`
exposes zero-copy numpy views when numpy is installed (it is optional
here — nothing in this module imports it at module scope).

A frozen view is a snapshot: it records the source graph's
:attr:`~repro.graph.knowledge_graph.KnowledgeGraph.version` at build
time, and :meth:`FrozenGraph.is_stale` reports whether the source has
been mutated since. :meth:`KnowledgeGraph.freeze` handles the
rebuild-on-mutation policy; code holding a ``FrozenGraph`` directly
should re-freeze rather than use a stale view.
"""

from __future__ import annotations

import weakref
from array import array
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.knowledge_graph import KnowledgeGraph


@dataclass(frozen=True)
class FrozenCosts:
    """Per-slot edge costs for one traversal over a :class:`FrozenGraph`.

    ``signature`` identifies the cost surface: two ``FrozenCosts`` with
    equal signatures (over the same frozen view) assign every slot the
    same cost. The batch engine keys its terminal-closure cache on it so
    tasks that share a weighting — e.g. every λ=0 task, or tasks whose
    explanation paths coincide — reuse each other's Dijkstra runs.

    ``slots`` is any float sequence indexable by edge slot (a plain list
    in the hot paths, an ``array``/numpy vector also works). When no
    signature is given, a fresh sentinel is substituted so a
    directly-constructed instance can never alias another cost surface
    in a cache; only producers that *know* two surfaces coincide (like
    the weighting's override list) pass an explicit shared signature.

    ``overrides``, when not None, asserts structure on top of identity:
    ``slots`` equals the all-ones unit table patched with exactly these
    sorted ``(slot, value)`` pairs. Producers that build costs that way
    (the Eq. 1 weighting) declare it so the batch engine's λ-aware
    partial reuse can recombine cached base-cost runs with the per-task
    boosted edges instead of treating every boost set as a brand-new
    cost surface.
    """

    slots: "list[float] | array"
    signature: tuple | None = None
    overrides: "tuple[tuple[int, float], ...] | None" = None

    def __post_init__(self) -> None:
        if self.signature is None:
            object.__setattr__(self, "signature", ("anon", object()))


class FrozenGraph:
    """Immutable CSR adjacency compiled from a :class:`KnowledgeGraph`."""

    __slots__ = (
        "ids",
        "offsets",
        "targets",
        "weights",
        "version",
        "_index",
        "_source",
        "_traversal",
        "_unit",
        "_ranks",
        "__weakref__",
    )

    def __init__(
        self,
        ids: list[str],
        index: dict[str, int],
        offsets: "array | memoryview",
        targets: "array | memoryview",
        weights: "array | memoryview",
        version: int,
        source: "KnowledgeGraph | None" = None,
    ) -> None:
        # Arrays are stdlib ``array`` when compiled locally and int64 /
        # float64 ``memoryview`` casts over shared-memory buffers when
        # attached via :meth:`from_shared` — every consumer indexes,
        # slices or list()s them, which both types support identically.
        self.ids = ids
        self._index = index
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.version = version
        self._source = weakref.ref(source) if source is not None else None
        self._traversal: tuple[list, list, list] | None = None
        self._unit: list[float] | None = None
        self._ranks: list[int] | None = None

    @classmethod
    def from_knowledge_graph(cls, graph: "KnowledgeGraph") -> "FrozenGraph":
        """Compile ``graph`` into a frozen CSR view (O(|V| + |E|))."""
        ids = list(graph.nodes())
        index = {node: i for i, node in enumerate(ids)}
        offsets = array("q", [0]) * (len(ids) + 1)
        targets = array("q")
        weights = array("d")
        cursor = 0
        for i, node in enumerate(ids):
            neighbors = graph.neighbors(node)
            cursor += len(neighbors)
            offsets[i + 1] = cursor
            targets.extend(index[nb] for nb in neighbors)
            weights.extend(neighbors.values())
        return cls(
            ids, index, offsets, targets, weights, graph.version, graph
        )

    # ------------------------------------------------------------------
    # Interning and basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the directed slot count)."""
        return len(self.targets) // 2

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._index

    def __len__(self) -> int:
        return len(self.ids)

    def index_of(self, node_id: str) -> int:
        """Dense index of a node id; KeyError if absent."""
        return self._index[node_id]

    def id_of(self, index: int) -> str:
        """Node id at a dense index."""
        return self.ids[index]

    def degree(self, index: int) -> int:
        """Number of incident edges of node ``index`` (O(1))."""
        return self.offsets[index + 1] - self.offsets[index]

    def neighbor_slots(self, index: int) -> range:
        """Slot range of node ``index`` (index into targets/weights)."""
        return range(self.offsets[index], self.offsets[index + 1])

    def neighbors(self, index: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbor_index, stored_weight)`` pairs of a node."""
        targets, weights = self.targets, self.weights
        for slot in range(self.offsets[index], self.offsets[index + 1]):
            yield targets[slot], weights[slot]

    def edge_slot(self, source: str, target: str) -> int | None:
        """Directed slot of edge ``source -> target``; None if absent.

        Linear scan over the source row — rows average a few dozen slots
        and this is only used to patch per-task cost overrides, never in
        traversal inner loops.
        """
        u = self._index.get(source)
        v = self._index.get(target)
        if u is None or v is None:
            return None
        targets = self.targets
        for slot in range(self.offsets[u], self.offsets[u + 1]):
            if targets[slot] == v:
                return slot
        return None

    def slot_endpoints(self, slot: int) -> tuple[int, int]:
        """``(source_index, target_index)`` of a directed slot.

        The source is recovered by bisecting the offsets table, so this
        is O(log |V|) — used to interpret per-slot cost overrides, never
        in traversal inner loops.
        """
        from bisect import bisect_right

        source = bisect_right(self.offsets, slot) - 1
        return source, self.targets[slot]

    def string_ranks(self) -> list[int]:
        """``rank[i]`` = position of ``ids[i]`` in sorted id order.

        The dict-based algorithms orient undirected edges by comparing
        string ids (``u > v``, ``undirected_key``); the indexed twins
        compare these precomputed ranks instead — the same total order,
        one int comparison per edge. Cached per frozen view.
        """
        if self._ranks is None:
            ranks = [0] * len(self.ids)
            order = sorted(range(len(self.ids)), key=self.ids.__getitem__)
            for rank, index in enumerate(order):
                ranks[index] = rank
            self._ranks = ranks
        return self._ranks

    def traversal_tables(self) -> tuple[list, list, list]:
        """``(offsets, targets, weights)`` as plain lists, lazily cached.

        List indexing returns pre-boxed objects where ``array`` indexing
        allocates on every access, which is worth ~15% in the Dijkstra
        inner loop; the compact arrays stay the canonical storage.
        """
        if self._traversal is None:
            self._traversal = (
                list(self.offsets),
                list(self.targets),
                list(self.weights),
            )
        return self._traversal

    # ------------------------------------------------------------------
    # Cost tables
    # ------------------------------------------------------------------
    def stored_costs(self) -> FrozenCosts:
        """The stored weights as traversal costs (shared, do not mutate)."""
        return FrozenCosts(
            self.traversal_tables()[2], signature=("stored", self.version)
        )

    def unit_costs(self) -> list[float]:
        """A fresh all-ones cost table (callers may patch entries)."""
        return self.shared_unit_costs().copy()

    def shared_unit_costs(self) -> list[float]:
        """The cached all-ones cost table (shared — do NOT mutate).

        The PCST growth and the batch engine's base-cost runs traverse
        with pure unit costs on every task; sharing one table avoids an
        O(|E|) copy per task. Callers that patch entries must use
        :meth:`unit_costs` instead.
        """
        if self._unit is None:
            self._unit = [1.0] * len(self.targets)
        return self._unit

    def costs_from(self, cost_fn, signature: tuple | None = None) -> FrozenCosts:
        """Materialize ``cost_fn(u, v, stored) -> cost`` into slot costs.

        Validates non-negativity once at build time, so the traversals
        can skip the per-relaxation check the dict-based Dijkstra pays.

        ``signature`` lets callers who know two cost functions coincide
        share closure-cache entries; the default is unique per call (a
        fresh sentinel pinned by the returned object, so it can never
        alias another cost surface).
        """
        slots = list(self.weights)
        ids, targets = self.ids, self.targets
        for u, node in enumerate(ids):
            for slot in range(self.offsets[u], self.offsets[u + 1]):
                cost = cost_fn(node, ids[targets[slot]], slots[slot])
                if cost < 0:
                    raise ValueError(
                        f"negative cost {cost} on edge "
                        f"({node!r}, {ids[targets[slot]]!r}); "
                        "shift weights first"
                    )
                slots[slot] = cost
        if signature is None:
            signature = ("fn", object(), self.version)
        return FrozenCosts(slots, signature=signature)

    # ------------------------------------------------------------------
    # Staleness and interop
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """True iff the source graph mutated after this view was built."""
        if self._source is None:
            return False
        source = self._source()
        return source is not None and source.version != self.version

    def to_numpy(self):
        """``(offsets, targets, weights)`` as zero-copy numpy views.

        Requires numpy; raises ``ImportError`` where it is unavailable
        (the CSR engine itself never needs it).
        """
        import numpy as np

        return (
            np.frombuffer(self.offsets, dtype=np.int64),
            np.frombuffer(self.targets, dtype=np.int64),
            np.frombuffer(self.weights, dtype=np.float64),
        )

    def to_shared(self):
        """Export this view into shared-memory blocks (one copy).

        Returns a :class:`repro.graph.shared.SharedGraphExport` whose
        picklable ``handle`` other processes pass to
        :meth:`from_shared` /
        :func:`repro.graph.shared.attach_knowledge_graph`. The caller
        owns the blocks: ``close()`` + ``unlink()`` (or use it as a
        context manager) when the consumers are done.
        """
        from repro.graph.shared import export_frozen

        return export_frozen(self)

    @classmethod
    def from_shared(cls, handle) -> "FrozenGraph":
        """Attach an exported view: arrays are zero-copy shared views.

        The attached view has no source graph (``is_stale()`` is always
        False) — staleness is the exporting process's concern. Blocks
        are auto-released at interpreter exit; call
        :func:`repro.graph.shared.detach_all` to release earlier.
        """
        from repro.graph.shared import attach_frozen

        frozen, _meta = attach_frozen(handle)
        return frozen
