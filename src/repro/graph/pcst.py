"""Prize-Collecting Steiner Tree (PCST) heuristics.

Two implementations:

- :func:`paper_pcst` follows the paper's Algorithm 2: a single Prim-style
  growth pass over the whole graph, driven by a priority queue initialized
  at ``-p(v)`` and a disjoint set of partially built components, running in
  ``O((|V| + |E|) log |V|)`` — crucially *independent of the number of
  terminals*, which is what gives PCST its scalability edge in Figs 9-11.
  The pseudocode in the paper is under-specified (taken literally, the
  ``cost < Q[v]`` guard never fires for positive costs), so we implement
  the standard reading: the queue holds each frontier node's cheapest
  connection cost discounted by its prize, components merge through their
  cheapest contact edges, and growth stops once every positive-prize node
  is settled and connected (or proven unreachable).

- :func:`grow_prune_pcst` adds Goemans-Williamson-style *strong pruning*
  on top of the grown tree: a subtree is kept only if its collected prize
  exceeds the cost of attaching it. This is the textbook 2-approximation
  behaviour and is exposed as an ablation (`PrizePolicy` experiments); the
  paper's experimental setting (unit prizes, ignored edge weights) expects
  the unpruned variant.

The growth pass — the hot loop — has an index-based twin over a frozen
CSR view, selected by passing ``frozen``/``slot_costs`` (the same
convention as :func:`repro.graph.steiner.steiner_tree`): an
:class:`~repro.graph.heap.IndexedHeap` drives the wavefront and an
array-backed :class:`~repro.graph.disjoint_set.IndexedDisjointSet`
tracks components over the CSR edge arrays, with string ids appearing
only at the boundary. Both growth paths replay the same operation
sequence, so the returned forests are bit-identical (pinned by
``tests/properties/test_engine_parity.py``); post-growth pruning always
runs on the (small) grown forest in the id domain.

The indexed growth also runs unchanged inside the batch engine's
process-pool workers over an attached shared view
(:mod:`repro.graph.shared`): the CSR arrays are zero-copy memoryview
casts (indexed and sliced exactly like the stdlib arrays), the rebuilt
worker graph replays the parent's adjacency insertion order, and
``is_stale()`` is vacuously False for attached views — the exporting
parent re-freezes before every export.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.csr import FrozenCosts, FrozenGraph
from repro.graph.disjoint_set import DisjointSet, IndexedDisjointSet
from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.shortest_paths import CostFn
from repro.graph.subgraph import edge_subgraph
from repro.graph.types import undirected_key


def paper_pcst(
    graph: KnowledgeGraph,
    prizes: Mapping[str, float],
    cost_fn: CostFn | None = None,
    prune_zero_prize_leaves: bool = False,
    seeds: list[str] | None = None,
    *,
    frozen: FrozenGraph | None = None,
    slot_costs=None,
) -> KnowledgeGraph:
    """Prize-collecting growth heuristic (paper Algorithm 2).

    Parameters
    ----------
    graph:
        The knowledge graph. Edge costs come from ``cost_fn`` (default:
        unit cost per edge, matching the paper's experimental setting that
        "ignores edge weights for the PCST summaries").
    prizes:
        Node prize map; missing nodes default to prize 0. Nodes with
        positive prize act as growth seeds (the terminals).
    prune_zero_prize_leaves:
        If True, iteratively strip zero-prize leaves after growth. The
        paper's variant keeps them (producing the larger, bushier
        summaries reported in Fig 2); pruning is exposed for ablations.
    seeds:
        Growth seeds (the terminal set). Defaults to every node with a
        positive prize; pass explicitly when side policies hand small
        prizes to many non-terminal nodes.
    frozen, slot_costs:
        CSR fast path: a frozen view of ``graph`` plus per-slot costs
        that agree with ``cost_fn`` (None means unit costs, matching the
        dict default). The growth pass then runs index-based; the result
        is bit-identical to the dict path because the indexed heap and
        disjoint set replay the dict structures' operation sequence.

    Returns
    -------
    KnowledgeGraph
        A forest containing every *reachable* positive-prize node; the
        components of mutually reachable seeds are merged into single
        trees. Unreachable seeds are simply omitted (the prize-collecting
        relaxation forfeits their prize).
    """
    cost = cost_fn or (lambda _u, _v, _w: 1.0)
    if seeds is None:
        seeds = [n for n, p in prizes.items() if p > 0]
    seeds = [n for n in seeds if n in graph]
    if not seeds:
        return KnowledgeGraph()

    if frozen is not None:
        if frozen.is_stale():
            raise ValueError(
                "frozen view is stale; call graph.freeze() again"
            )
        settled, tree_edges = _grow_indexed(frozen, prizes, slot_costs, seeds)
    else:
        settled, tree_edges = _grow_dict(graph, prizes, cost, seeds)

    if not tree_edges:
        lone = KnowledgeGraph()
        for seed in seeds:
            if seed in settled:
                lone.add_node(seed)
        return lone

    # Sort the grown edge set before materializing: the growers collect
    # edges in sets whose iteration order reflects their (engine- and
    # hash-seed-specific) insertion history, and the forest's node order
    # feeds tie-breaking downstream (strong pruning's root choice, leaf
    # peeling order). Sorting pins one canonical forest for both engines
    # and across processes.
    forest = edge_subgraph(graph, sorted(tree_edges))
    _keep_seed_components(forest, seeds)
    if prune_zero_prize_leaves:
        _prune_leaves(forest, keep=set(seeds), prizes=prizes, cost=cost)
    return forest


def _grow_dict(
    graph: KnowledgeGraph,
    prizes: Mapping[str, float],
    cost,
    seeds: list[str],
) -> tuple[set[str], set[tuple[str, str]]]:
    """Algorithm 2's growth pass on the dict adjacency.

    Returns ``(settled nodes, grown edge set)``; the parity oracle for
    :func:`_grow_indexed`.
    """
    heap: AddressableHeap[str] = AddressableHeap()
    components = DisjointSet()
    connect_via: dict[str, tuple[str, str]] = {}
    settled: set[str] = set()
    tree_edges: set[tuple[str, str]] = set()

    # Algorithm 2 lines 4-7: every seed enters the queue at -p(v). Ordinary
    # nodes enter lazily when a wavefront first reaches them.
    for seed in seeds:
        heap.push(seed, -prizes.get(seed, 0.0))
        components.make_set(seed)

    # Early exit is only sound once every positive-prize node has been
    # settled: with binary prizes that's just the terminals, but the
    # §IV-B weight-range policy hands every node a prize and the growth
    # then legitimately spans the whole graph (Algorithm 2's "while Q is
    # not empty"), producing the "excessively large" summaries the paper
    # reports for that configuration.
    unsettled_seeds = set(seeds)
    unsettled_positive = sum(
        1 for n, p in prizes.items() if p > 0 and n in graph
    )

    while heap:
        node, _priority = heap.pop_min()
        settled.add(node)
        components.make_set(node)
        if prizes.get(node, 0.0) > 0:
            unsettled_positive -= 1

        if node in connect_via:
            u, v = connect_via[node]
            if components.union(u, v):
                tree_edges.add(undirected_key(u, v))

        if node in unsettled_seeds:
            unsettled_seeds.discard(node)

        # Merge with any already-settled neighboring component: the growth
        # fronts of two seeds meet here, and the contact edge joins them
        # (Algorithm 2 lines 12-23, the u_set != v_set branch).
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in settled and not components.connected(node, neighbor):
                components.union(node, neighbor)
                tree_edges.add(undirected_key(node, neighbor))

        # Stop as soon as all reachable seeds are settled and mutually
        # connected AND no uncollected prizes remain; continuing would
        # only inflate the summary.
        if not unsettled_seeds and unsettled_positive <= 0:
            if _count_seed_components(components, seeds) <= 1:
                break
        # Relax outgoing edges: neighbor's entry cost is the edge cost
        # discounted by its prize (high-prize nodes are pulled in sooner).
        for neighbor, stored in graph.neighbors(node).items():
            if neighbor in settled:
                continue
            edge_cost = cost(node, neighbor, stored)
            priority = edge_cost - prizes.get(neighbor, 0.0)
            if heap.decrease_if_lower(neighbor, priority):
                connect_via[neighbor] = (node, neighbor)

    return settled, tree_edges


def _grow_indexed(
    frozen: FrozenGraph,
    prizes: Mapping[str, float],
    slot_costs,
    seeds: list[str],
) -> tuple[set[str], set[tuple[str, str]]]:
    """Algorithm 2's growth pass over the CSR arrays (int domain).

    Mirrors :func:`_grow_dict` operation for operation — same heap sift
    algorithm, same union-by-rank rule, same adjacency order (CSR rows
    preserve insertion order) — so the returned settled set and edge set
    are identical, ties included. String ids appear only at the
    boundary (prize lookup, the returned sets).
    """
    ids = frozen.ids
    num_nodes = frozen.num_nodes
    offsets, edge_targets, _ = frozen.traversal_tables()
    if slot_costs is None:
        costs = frozen.shared_unit_costs()
    elif isinstance(slot_costs, FrozenCosts):
        costs = slot_costs.slots
    else:
        costs = slot_costs

    prize = [0.0] * num_nodes
    for node, value in prizes.items():
        if node in frozen:
            prize[frozen.index_of(node)] = value
    seed_idx = [frozen.index_of(s) for s in seeds]

    components = IndexedDisjointSet(num_nodes)
    settled = bytearray(num_nodes)
    settle_order: list[int] = []
    tree_pairs: set[tuple[int, int]] = set()
    # connect_via/heap_slot are lists, not array('q'): their reads sit on
    # the relaxation hot path and list reads return stored objects where
    # array reads box fresh ints (an allocation tax that dominates under
    # the Fig 9 tracemalloc probe).
    connect_via: list[int] = [-1] * num_nodes

    # The binary heap is inlined, replaying IndexedHeap/AddressableHeap's
    # sift algorithm exactly (same trick as dijkstra_indexed — method
    # dispatch is most of the growth loop's cost): seed pushes here, the
    # pop and the decrease-if-lower below are op-for-op identical to the
    # dict growth's heap calls, so the settle order matches, ties
    # included.
    heap_slot: list[int] = [-1] * num_nodes
    prios: list[float] = []
    keys: list[int] = []
    for seed in seed_idx:
        if heap_slot[seed] != -1:
            # Same contract as AddressableHeap.push in the dict growth.
            raise KeyError(f"key {ids[seed]!r} already in heap")
        candidate = -prize[seed]
        index = len(keys)
        prios.append(candidate)
        keys.append(seed)
        while index > 0:
            above = (index - 1) >> 1
            if prios[above] <= candidate:
                break
            prios[index] = prios[above]
            keys[index] = keys[above]
            heap_slot[keys[index]] = index
            index = above
        prios[index] = candidate
        keys[index] = seed
        heap_slot[seed] = index
        components.make_set(seed)

    unsettled_seeds = set(seed_idx)
    unsettled_positive = sum(
        1 for n, p in prizes.items() if p > 0 and n in frozen
    )

    while keys:
        node = keys[0]
        last_prio = prios.pop()
        last_key = keys.pop()
        heap_slot[node] = -1
        size = len(keys)
        if size:
            index = 0
            while True:
                child = 2 * index + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and prios[right] < prios[child]:
                    child = right
                if prios[child] >= last_prio:
                    break
                prios[index] = prios[child]
                keys[index] = keys[child]
                heap_slot[keys[index]] = index
                index = child
            prios[index] = last_prio
            keys[index] = last_key
            heap_slot[last_key] = index

        settled[node] = 1
        settle_order.append(node)
        components.make_set(node)
        if prize[node] > 0:
            unsettled_positive -= 1

        offered = connect_via[node]
        if offered != -1 and components.union(offered, node):
            tree_pairs.add((offered, node))

        unsettled_seeds.discard(node)

        # Rows are walked through list slices + zip rather than
        # range-indexing: a range yields a freshly boxed int per slot,
        # and at ~2|E| relaxations per growth that boxing is the
        # dominant allocation count (a 5x tax under the Fig 9
        # tracemalloc probe); slices of the pre-boxed traversal lists
        # allocate twice per row instead. Iteration order is unchanged.
        row_start = offsets[node]
        row_end = offsets[node + 1]
        row_targets = edge_targets[row_start:row_end]
        for neighbor in row_targets:
            if settled[neighbor] and not components.connected(node, neighbor):
                components.union(node, neighbor)
                tree_pairs.add((node, neighbor))

        if not unsettled_seeds and unsettled_positive <= 0:
            roots = {
                components.find(seed)
                for seed in seed_idx
                if seed in components
            }
            if len(roots) <= 1:
                break
        for neighbor, edge_cost in zip(
            row_targets, costs[row_start:row_end]
        ):
            if settled[neighbor]:
                continue
            candidate = edge_cost - prize[neighbor]
            index = heap_slot[neighbor]
            if index == -1:
                index = len(keys)
                prios.append(candidate)
                keys.append(neighbor)
            elif candidate < prios[index]:
                pass
            else:
                continue
            while index > 0:
                above = (index - 1) >> 1
                if prios[above] <= candidate:
                    break
                prios[index] = prios[above]
                keys[index] = keys[above]
                heap_slot[keys[index]] = index
                index = above
            prios[index] = candidate
            keys[index] = neighbor
            heap_slot[neighbor] = index
            connect_via[neighbor] = node

    return (
        {ids[node] for node in settle_order},
        {undirected_key(ids[u], ids[v]) for u, v in tree_pairs},
    )


def grow_prune_pcst(
    graph: KnowledgeGraph,
    prizes: Mapping[str, float],
    cost_fn: CostFn | None = None,
    seeds: list[str] | None = None,
    *,
    frozen: FrozenGraph | None = None,
    slot_costs=None,
) -> KnowledgeGraph:
    """Grow (via :func:`paper_pcst`) then apply GW-style strong pruning.

    Strong pruning roots each grown tree and keeps a child subtree only if
    its *net value* — collected prize minus attachment cost — is positive.
    With the paper's unit-prize/unit-cost setting this collapses summaries
    down to near-isolated terminals, which is exactly why the paper's
    experiments skip it; it is provided as the honest PCST baseline for
    the prize-policy ablations. ``frozen``/``slot_costs`` select the CSR
    growth pass (see :func:`paper_pcst`); the pruning DP always runs on
    the small grown forest in the id domain.
    """
    cost = cost_fn or (lambda _u, _v, _w: 1.0)
    grown = paper_pcst(
        graph,
        prizes,
        cost_fn=cost_fn,
        seeds=seeds,
        frozen=frozen,
        slot_costs=slot_costs,
    )
    if grown.num_edges == 0:
        return grown

    kept_edges: set[tuple[str, str]] = set()
    kept_nodes: set[str] = set()
    visited: set[str] = set()
    for root in list(grown.nodes()):
        if root in visited:
            continue
        component_nodes = _collect_component(grown, root)
        visited |= component_nodes
        # Sorted so prize ties pick the smallest id — deterministic
        # across engines and hash seeds.
        best_root = max(
            sorted(component_nodes), key=lambda n: prizes.get(n, 0.0)
        )
        net = _strong_prune(
            grown, best_root, prizes, cost, kept_edges, kept_nodes
        )
        if net <= 0:
            # Even the best subtree loses money: keep just the root node.
            kept_nodes.add(best_root)

    pruned = KnowledgeGraph()
    for node in kept_nodes:
        pruned.add_node(node)
        name = grown.name(node)
        if name != node:
            pruned.set_name(node, name)
    for u, v in kept_edges:
        pruned.add_edge(u, v, graph.weight(u, v), graph.relation(u, v))
    return pruned


def _strong_prune(
    tree: KnowledgeGraph,
    root: str,
    prizes: Mapping[str, float],
    cost,
    kept_edges: set[tuple[str, str]],
    kept_nodes: set[str],
) -> float:
    """Iterative post-order DP computing each subtree's net value.

    Child subtrees with non-positive ``net - edge_cost`` are pruned; the
    rest are recorded into ``kept_edges`` / ``kept_nodes``.
    """
    parent: dict[str, str] = {root: root}
    order: list[str] = [root]
    index = 0
    while index < len(order):
        node = order[index]
        index += 1
        for neighbor in tree.neighbors(node):
            if neighbor not in parent:
                parent[neighbor] = node
                order.append(neighbor)

    net: dict[str, float] = {}
    keep_children: dict[str, list[str]] = {n: [] for n in order}
    for node in reversed(order):
        value = prizes.get(node, 0.0)
        for neighbor in tree.neighbors(node):
            if neighbor == node or parent.get(neighbor) != node:
                continue
            gain = net[neighbor] - cost(
                node, neighbor, tree.weight(node, neighbor)
            )
            if gain > 0:
                value += gain
                keep_children[node].append(neighbor)
        net[node] = value

    kept_nodes.add(root)
    stack = [root]
    while stack:
        node = stack.pop()
        for child in keep_children[node]:
            kept_edges.add(undirected_key(node, child))
            kept_nodes.add(child)
            stack.append(child)
    return net[root]


def _count_seed_components(components: DisjointSet, seeds: list[str]) -> int:
    """Number of distinct components the (settled) seeds currently span."""
    roots = {
        components.find(seed) for seed in seeds if seed in components
    }
    return len(roots)


def _keep_seed_components(forest: KnowledgeGraph, seeds: list[str]) -> None:
    """Drop grown components that contain no seed at all (in place)."""
    keep: set[str] = set()
    for seed in seeds:
        if seed in forest and seed not in keep:
            keep |= _collect_component(forest, seed)
    for node in [n for n in forest.nodes() if n not in keep]:
        forest.remove_node(node)


def _collect_component(graph: KnowledgeGraph, start: str) -> set[str]:
    component = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in graph.neighbors(node):
            if neighbor not in component:
                component.add(neighbor)
                frontier.append(neighbor)
    return component


def _prune_leaves(
    forest: KnowledgeGraph,
    keep: set[str],
    prizes: Mapping[str, float],
    cost,
) -> None:
    """Strip degree-1 nodes outside ``keep`` whose prize does not pay for
    their attaching edge (the prize-collecting economics, applied to the
    grown forest in place)."""

    def prunable(node: str) -> bool:
        """True if this leaf should be removed."""
        if node in keep or node not in forest or forest.degree(node) != 1:
            return False
        (neighbor,) = forest.neighbors(node)
        edge_cost = cost(node, neighbor, forest.weight(node, neighbor))
        return prizes.get(node, 0.0) < edge_cost

    stack = [n for n in list(forest.nodes()) if prunable(n)]
    while stack:
        leaf = stack.pop()
        if not prunable(leaf):
            continue
        neighbors = list(forest.neighbors(leaf))
        forest.remove_node(leaf)
        for neighbor in neighbors:
            if prunable(neighbor):
                stack.append(neighbor)
