"""Union-find (disjoint set) with union by rank and path compression.

Used by Kruskal's MST and by the prize-collecting Steiner tree growth phase
(the paper's Algorithm 2 keeps a disjoint set ``D`` of partially built
components).

Two variants: :class:`DisjointSet` over arbitrary hashable elements (the
dict-based algorithms) and :class:`IndexedDisjointSet` specialized to
dense int elements in ``[0, n)`` with array-backed parent/rank/size
tables (the CSR-indexed PCST growth). Both run the *same* union-by-rank
rule — on a rank tie the first argument's root wins and gains a rank —
so given identical operation sequences they produce identical
partitions, which is what keeps the indexed PCST bit-identical to the
dict oracle.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are registered lazily: :meth:`find` and :meth:`union` auto-create
    singleton sets for unseen elements, matching the ``make_set`` loop in the
    paper's Algorithm 2 without requiring an upfront universe.
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        self._size: dict[T, int] = {}
        self._num_sets = 0
        for element in elements:
            self.make_set(element)

    def __len__(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    def __contains__(self, element: T) -> bool:
        return element in self._parent

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._num_sets

    def make_set(self, element: T) -> None:
        """Register ``element`` as a singleton set (no-op if present)."""
        if element in self._parent:
            return
        self._parent[element] = element
        self._rank[element] = 0
        self._size[element] = 1
        self._num_sets += 1

    def find(self, element: T) -> T:
        """Return the canonical representative of ``element``'s set."""
        self.make_set(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk directly at root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def connected(self, a: T, b: T) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def union(self, a: T, b: T) -> bool:
        """Merge the sets of ``a`` and ``b``; return False if already merged."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._num_sets -= 1
        return True

    def set_size(self, element: T) -> int:
        """Number of elements in ``element``'s set."""
        return self._size[self.find(element)]

    def sets(self) -> list[set[T]]:
        """Materialize all sets (for inspection/testing; O(n))."""
        groups: dict[T, set[T]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return list(groups.values())


class IndexedDisjointSet:
    """Disjoint-set forest over dense int elements ``0 .. capacity - 1``.

    Functionally identical to :class:`DisjointSet` restricted to int
    elements (lazy registration included — unregistered indices are
    tracked with a -1 parent sentinel so ``in`` and ``len`` agree with
    the dict variant), with flat-table lookups instead of dict probes.
    The tables are plain lists rather than ``array('q')`` on purpose:
    list reads return the stored int objects where array reads box a
    fresh int per access, and ``find``'s pointer chasing is exactly the
    access pattern that turns that into ~100k allocations per PCST
    growth — a 5x tax under ``tracemalloc`` (the Fig 9 memory probe).
    """

    __slots__ = ("_parent", "_rank", "_size", "_num_sets", "_num_elements")

    def __init__(self, capacity: int, elements: Iterable[int] = ()) -> None:
        self._parent: list[int] = [-1] * capacity
        self._rank: list[int] = [0] * capacity
        self._size: list[int] = [0] * capacity
        self._num_sets = 0
        self._num_elements = 0
        for element in elements:
            self.make_set(element)

    def __len__(self) -> int:
        """Number of registered elements."""
        return self._num_elements

    def __contains__(self, element: int) -> bool:
        return self._parent[element] != -1

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._num_sets

    def make_set(self, element: int) -> None:
        """Register ``element`` as a singleton set (no-op if present)."""
        if self._parent[element] != -1:
            return
        self._parent[element] = element
        self._rank[element] = 0
        self._size[element] = 1
        self._num_sets += 1
        self._num_elements += 1

    def find(self, element: int) -> int:
        """Return the canonical representative of ``element``'s set."""
        self.make_set(element)
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def connected(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return False if already merged."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._num_sets -= 1
        return True

    def set_size(self, element: int) -> int:
        """Number of elements in ``element``'s set."""
        return self._size[self.find(element)]
