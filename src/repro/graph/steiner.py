"""Steiner Tree via the metric-closure / MST 2-approximation.

This is the paper's Algorithm 1 verbatim:

1. compute shortest paths between all pairs of terminals,
2. build the complete "metric closure" graph over the terminals whose edge
   weights are those shortest-path distances,
3. take its MST,
4. unfold every MST edge back into the underlying shortest path,
5. prune the union down to a tree.

Step 5 is implicit in the paper ("Initialize S <- MST_c ... replace with
shortest path"); unfolding can create cycles when shortest paths share
segments, so we finish with an MST pass over the unfolded edge set followed
by degree-1 pruning of non-terminals — both standard parts of the
Kou–Markowsky–Berman construction the paper cites, preserving the
2-approximation bound.

Complexity: O(|T| (|E| + |V| log |V|)) — one Dijkstra per terminal —
matching the bound stated in §IV-A.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.graph.csr import FrozenGraph
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import (
    CostFn,
    dijkstra,
    dijkstra_frozen,
    reconstruct_path,
)
from repro.graph.subgraph import edge_subgraph
from repro.graph.types import undirected_key

#: ``(source, rest) -> (dist, prev)`` closure hook: the batch engine
#: injects a memoizing implementation here (see repro.core.batch).
PairFn = Callable[[str, set[str]], tuple[dict[str, float], dict[str, str]]]


def canonical_shortest_path(
    graph: KnowledgeGraph,
    cost: CostFn,
    dist,
    source: str,
    target: str,
    prev: dict[str, str],
) -> list[str]:
    """Canonical-SPT path reconstruction from *final* distances.

    Walks backward from ``target``, at each node choosing the
    lexicographically smallest neighbor whose distance plus edge cost
    equals the node's distance exactly. The choice depends only on the
    distance surface, never on heap pop order — so the dict engine, the
    CSR engine, and closures *derived* from memoized base runs (the
    batch engine's λ-aware reuse) all reconstruct the same path, and so
    does any adjacency insertion order. Requires strictly positive
    costs (every true predecessor then settles strictly earlier, hence
    appears in ``dist`` even for early-exit runs).

    ``dist`` is any mapping with ``.get`` — a plain settled-distance
    dict, or the batch engine's lazy overlay-distance view. ``prev`` is
    the producing run's own predecessor map, used as a fallback: if no
    neighbor reproduces the stored distance bit-exactly (distances
    whose floating-point fold order differs from the edge-by-edge walk
    can miss equality by an ulp), the remainder of the path follows the
    run's recorded tree instead of failing.
    """
    dist_get = dist.get
    nodes = [target]
    node = target
    seen = {target}
    while node != source:
        d = dist_get(node)
        best = None
        if d is not None:
            for neighbor, stored in graph.neighbors(node).items():
                if neighbor in seen:
                    continue
                dn = dist_get(neighbor)
                if dn is None or dn >= d:
                    continue
                if dn + cost(neighbor, node, stored) == d and (
                    best is None or neighbor < best
                ):
                    best = neighbor
        if best is None:
            # Ulp guard: fall back to the run's own predecessor chain.
            # Restart from the target — derived closures only record
            # chains for the requested targets, and the canonical walk
            # may already have stepped off them.
            nodes = [target]
            node = target
            while node != source:
                node = prev[node]
                nodes.append(node)
            break
        nodes.append(best)
        seen.add(best)
        node = best
    nodes.reverse()
    return nodes


def _stored_cost(_u: str, _v: str, stored: float) -> float:
    return stored


def single_terminal_tree(
    graph: KnowledgeGraph, terminal: str
) -> KnowledgeGraph:
    """The degenerate 1-terminal Steiner tree: the bare node.

    Shared by :func:`steiner_tree` and
    :func:`repro.graph.mehlhorn.mehlhorn_steiner_tree` (all engines) so
    the single-terminal contract is identical everywhere — including the
    display name, which multi-terminal trees preserve via
    ``edge_subgraph`` and bare ``add_node`` used to drop.
    """
    only = KnowledgeGraph()
    only.add_node(terminal)
    name = graph.name(terminal)
    if name != terminal:
        only.set_name(terminal, name)
    return only


def steiner_tree(
    graph: KnowledgeGraph,
    terminals: Sequence[str],
    cost_fn: CostFn | None = None,
    *,
    frozen: FrozenGraph | None = None,
    slot_costs=None,
    pair_fn: PairFn | None = None,
    canonical: bool = False,
) -> KnowledgeGraph:
    """2-approximate minimum Steiner tree spanning ``terminals``.

    Parameters
    ----------
    graph:
        The (possibly reweighted) knowledge graph.
    terminals:
        Nodes that must appear in the tree. Terminals in different
        connected components raise ``ValueError`` (the problem definition
        requires a weakly connected summary).
    cost_fn:
        Optional ``(u, v, stored_weight) -> cost`` override; defaults to
        the stored weight. Costs must be non-negative.
    frozen, slot_costs:
        CSR fast path: a frozen view of ``graph`` plus per-slot costs
        that agree with ``cost_fn``. The metric-closure Dijkstras then
        run index-based; the result is identical to the dict path
        (ties included) because the indexed Dijkstra mirrors the
        dict-based one operation for operation.
    pair_fn:
        Full override of the closure computation — maps ``(source,
        rest)`` to ``(dist, prev)`` id-keyed maps. Used by the batch
        engine to memoize terminal-pair Dijkstras across tasks. ``dist``
        may cover a superset of a fresh early-exit run; only the
        ``rest`` entries and their predecessor chains are read.
    canonical:
        Reconstruct closure paths with :func:`canonical_shortest_path`
        (deterministic min-id predecessor choice from final distances)
        instead of the producing run's heap-order predecessor chains.
        Requires strictly positive costs. This makes the unfolded tree
        independent of heap tie-breaking — the same for both engines,
        for any adjacency insertion order, and for closures the batch
        engine derives from memoized base runs, which is what lets
        λ-aware partial reuse default on without changing outputs.
    """
    unique_terminals = list(dict.fromkeys(terminals))
    if not unique_terminals:
        return KnowledgeGraph()
    for terminal in unique_terminals:
        if terminal not in graph:
            raise KeyError(f"terminal {terminal!r} not in graph")
    if len(unique_terminals) == 1:
        return single_terminal_tree(graph, unique_terminals[0])

    if frozen is not None and frozen.is_stale():
        raise ValueError(
            "frozen view is stale; call graph.freeze() again"
        )

    # Steps 2-3: metric closure over terminals (one Dijkstra per terminal).
    terminal_set = set(unique_terminals)
    closure_cost = cost_fn or _stored_cost
    closure_edges: list[tuple[str, str, float]] = []
    shortest: dict[tuple[str, str], list[str]] = {}
    for index, source in enumerate(unique_terminals):
        later = unique_terminals[index + 1 :]
        if not later:
            break
        rest = set(later)
        if pair_fn is not None:
            dist, prev = pair_fn(source, rest)
        elif frozen is not None:
            dist, prev = dijkstra_frozen(
                frozen, source, costs=slot_costs, targets=rest
            )
        else:
            dist, prev = dijkstra(
                graph, source, cost_fn=cost_fn, targets=rest
            )
        # Iterate `later` (deterministic list), not `rest` (a str set
        # whose order follows PYTHONHASHSEED): the closure edge order
        # feeds Kruskal's stable tie-breaking, so set order here made
        # tied summaries differ between processes.
        for target in later:
            if target not in dist:
                raise ValueError(
                    f"terminals {source!r} and {target!r} are disconnected"
                )
            closure_edges.append((source, target, dist[target]))
            shortest[(source, target)] = (
                canonical_shortest_path(
                    graph, closure_cost, dist, source, target, prev
                )
                if canonical
                else reconstruct_path(prev, source, target)
            )

    # Step 7: MST of the metric closure.
    closure_mst = kruskal_mst(unique_terminals, closure_edges)

    # Steps 8-14: unfold MST edges into their underlying shortest paths.
    unfolded: dict[tuple[str, str], float] = {}
    for u, v, _ in closure_mst:
        path = shortest.get((u, v)) or list(reversed(shortest[(v, u)]))
        for a, b in zip(path, path[1:]):
            unfolded[undirected_key(a, b)] = graph.weight(a, b)

    # Cleanup: re-MST the unfolded union (removes cycles introduced by
    # overlapping shortest paths), then prune non-terminal leaves.
    nodes = sorted({n for key in unfolded for n in key})
    tree_edges = kruskal_mst(
        nodes,
        [(u, v, closure_cost(u, v, w)) for (u, v), w in unfolded.items()],
    )
    kept = {undirected_key(u, v) for u, v, _ in tree_edges}
    tree = edge_subgraph(graph, kept)
    _prune_non_terminal_leaves(tree, terminal_set)
    return tree


def _prune_non_terminal_leaves(
    tree: KnowledgeGraph, terminals: set[str]
) -> None:
    """Iteratively remove degree-1 nodes that are not terminals (in place)."""
    leaves = [
        n
        for n in list(tree.nodes())
        if tree.degree(n) <= 1 and n not in terminals
    ]
    while leaves:
        leaf = leaves.pop()
        if leaf not in tree or tree.degree(leaf) > 1:
            continue
        neighbors = list(tree.neighbors(leaf))
        tree.remove_node(leaf)
        for neighbor in neighbors:
            if tree.degree(neighbor) <= 1 and neighbor not in terminals:
                leaves.append(neighbor)
