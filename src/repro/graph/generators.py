"""Random typed knowledge-graph generator (paper Table III).

The scalability study (Fig 11) uses synthetic graphs whose user/item/
external proportions and degrees mirror the ML1M graph. The paper's split
is ~30.4% users / 19.6% items / 54.5% external (scaled to 10k..30k nodes)
with ~56 edges per node; we reproduce those ratios and attach edges with
preferential popularity so degree distributions are skewed like real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import external_id, item_id, user_id

# Node-population fractions taken from Table III (e.g. G1: 3,043 users /
# 1,956 items / 5,452 external of 10,000 nodes; constant across G1..G5).
USER_FRACTION = 0.3043
ITEM_FRACTION = 0.1956
EDGES_PER_NODE = 55.97  # Table III: 559,734 edges / 10,000 nodes


@dataclass(frozen=True, slots=True)
class SyntheticSpec:
    """Size recipe for one synthetic graph."""

    total_nodes: int
    edges_per_node: float = EDGES_PER_NODE
    interaction_share: float = 0.83  # ML1M: 932,293 of 1,125,631 edges

    @property
    def num_users(self) -> int:
        """Number of users at this scale."""
        return round(self.total_nodes * USER_FRACTION)

    @property
    def num_items(self) -> int:
        """Number of items at this scale."""
        return round(self.total_nodes * ITEM_FRACTION)

    @property
    def num_external(self) -> int:
        """Number of external entities at this scale."""
        return self.total_nodes - self.num_users - self.num_items

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return round(self.total_nodes * self.edges_per_node)


def table3_specs(scale: float = 1.0) -> list[SyntheticSpec]:
    """The five Table III graph sizes (10k..30k nodes), scaled by ``scale``.

    ``scale < 1`` shrinks node counts and edges proportionally so CI-speed
    runs keep the same five-point sweep shape.
    """
    sizes = [10_000, 15_000, 20_000, 25_000, 30_000]
    return [
        SyntheticSpec(max(30, round(size * scale)))
        for size in sizes
    ]


def generate_random_kg(
    spec: SyntheticSpec, rng: np.random.Generator
) -> KnowledgeGraph:
    """Sample a random KG matching ``spec``.

    Interaction edges connect users to items with Zipf-ish item popularity;
    knowledge edges connect items (and a few users) to external entities
    with Zipf-ish entity popularity. Edge weights for interactions are
    ratings in {1..5}; knowledge edges carry weight 0 per the paper.
    """
    graph = KnowledgeGraph()
    users = [user_id(i) for i in range(spec.num_users)]
    items = [item_id(i) for i in range(spec.num_items)]
    externals = [external_id("syn", i) for i in range(spec.num_external)]
    for node in (*users, *items, *externals):
        graph.add_node(node)

    item_pop = _zipf_probabilities(len(items), exponent=0.9, rng=rng)
    ext_pop = _zipf_probabilities(len(externals), exponent=1.0, rng=rng)

    num_interactions = round(spec.num_edges * spec.interaction_share)
    num_knowledge = spec.num_edges - num_interactions

    user_picks = rng.integers(0, len(users), size=num_interactions)
    item_picks = rng.choice(len(items), size=num_interactions, p=item_pop)
    ratings = rng.integers(1, 6, size=num_interactions)
    for u, i, r in zip(user_picks, item_picks, ratings):
        graph.add_edge(users[int(u)], items[int(i)], float(r))

    source_items = rng.choice(len(items), size=num_knowledge, p=item_pop)
    targets = rng.choice(len(externals), size=num_knowledge, p=ext_pop)
    for i, e in zip(source_items, targets):
        graph.add_edge(items[int(i)], externals[int(e)], 0.0, "syn")
    return graph


def random_three_hop_paths(
    graph: KnowledgeGraph,
    users: list[str],
    paths_per_user: int,
    rng: np.random.Generator,
    max_tries: int = 40,
):
    """Random user->item paths of exactly 3 hops, as Fig 11's workload.

    ("We test our algorithms on synthetic paths connecting users to items
    via random paths of length 3 as in the baselines.")
    """
    from repro.graph.paths import Path
    from repro.graph.types import NodeType

    paths: list[Path] = []
    for user in users:
        found = 0
        tries = 0
        seen: set[tuple[str, ...]] = set()
        while found < paths_per_user and tries < max_tries * paths_per_user:
            tries += 1
            walk = _random_walk(graph, user, hops=3, rng=rng)
            if walk is None or tuple(walk) in seen:
                continue
            if NodeType.of(walk[-1]) is not NodeType.ITEM:
                continue
            seen.add(tuple(walk))
            paths.append(Path.from_nodes(walk))
            found += 1
    return paths


def _random_walk(
    graph: KnowledgeGraph, start: str, hops: int, rng: np.random.Generator
) -> list[str] | None:
    walk = [start]
    for _ in range(hops):
        neighbors = [
            n for n in graph.neighbors(walk[-1]) if n not in walk
        ]
        if not neighbors:
            return None
        walk.append(neighbors[int(rng.integers(0, len(neighbors)))])
    return walk


def _zipf_probabilities(
    n: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf-like popularity vector with a random permutation of ranks."""
    if n <= 0:
        raise ValueError("need at least one element")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()
