"""The knowledge-based graph ``G = (V, E, w)`` of the paper.

The paper defines G as directed (user -> item, item -> external) but all of
its algorithms — shortest paths for Steiner, the PCST growth, and *weakly*
connected summary subgraphs — traverse edges in both directions. We therefore
store a symmetric adjacency (each edge is visible from both endpoints) and
keep the canonical orientation implicit in the node-type prefixes: an
interaction edge always means "user rated item" regardless of which endpoint
is listed first.

Node ids are strings with type prefixes (see :mod:`repro.graph.types`);
weights live in the adjacency, relations and display names in side tables.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.graph.types import (
    Edge,
    EdgeType,
    GraphStats,
    NodeType,
    undirected_key,
)


class KnowledgeGraph:
    """Weighted typed graph over users, items and external entities.

    The central substrate type: datasets build one, recommenders walk it,
    summarizers extract trees from it, and metrics interrogate it.
    """

    def __init__(self) -> None:
        self._adjacency: dict[str, dict[str, float]] = {}
        self._relations: dict[tuple[str, str], str] = {}
        self._names: dict[str, str] = {}
        self._num_edges = 0
        # Monotonic mutation counter. Every structural or weight change
        # bumps it; derived caches (the frozen CSR view, the stored-weight
        # maximum, centrality prizes) key on it so they can never serve
        # results for a graph that has since changed.
        self._version = 0
        self._frozen = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, name: str = "") -> None:
        """Add a node (validating its type prefix); no-op if present."""
        NodeType.of(node_id)  # raises on malformed ids
        if node_id not in self._adjacency:
            self._adjacency[node_id] = {}
            self._version += 1
        if name:
            self._names[node_id] = name

    def add_edge(
        self,
        source: str,
        target: str,
        weight: float = 1.0,
        relation: str = "",
    ) -> None:
        """Add (or overwrite) the edge between ``source`` and ``target``.

        Endpoint population compatibility is enforced via
        :meth:`EdgeType.of`, which rejects e.g. user-user edges that the
        paper's graph model does not contain.
        """
        if source == target:
            raise ValueError(f"self-loop on {source!r} not allowed")
        EdgeType.of(source, target)  # raises on incompatible populations
        self.add_node(source)
        self.add_node(target)
        if target not in self._adjacency[source]:
            self._num_edges += 1
        self._adjacency[source][target] = weight
        self._adjacency[target][source] = weight
        self._version += 1
        if relation:
            self._relations[undirected_key(source, target)] = relation

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the edge; KeyError if absent."""
        del self._adjacency[source][target]
        del self._adjacency[target][source]
        self._relations.pop(undirected_key(source, target), None)
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node_id: str) -> None:
        """Remove a node and all its incident edges; KeyError if absent."""
        neighbors = list(self._adjacency[node_id])
        for neighbor in neighbors:
            self.remove_edge(node_id, neighbor)
        del self._adjacency[node_id]
        self._names.pop(node_id, None)
        self._version += 1

    def set_weight(self, source: str, target: str, weight: float) -> None:
        """Reassign an existing edge's weight; KeyError if absent."""
        if target not in self._adjacency.get(source, {}):
            raise KeyError(f"no edge ({source!r}, {target!r})")
        self._adjacency[source][target] = weight
        self._adjacency[target][source] = weight
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    @property
    def version(self) -> int:
        """Mutation counter; bumps on any structural or weight change."""
        return self._version

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def nodes(self) -> Iterator[str]:
        """Iterate over node ids."""
        return iter(self._adjacency)

    def nodes_of_type(self, node_type: NodeType) -> Iterator[str]:
        """Iterate over node ids in one population."""
        return (n for n in self._adjacency if NodeType.of(n) is node_type)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        for source, neighbors in self._adjacency.items():
            for target, weight in neighbors.items():
                if source < target:
                    yield Edge(
                        source,
                        target,
                        weight,
                        self._relations.get((source, target), ""),
                    )

    def neighbors(self, node_id: str) -> dict[str, float]:
        """Neighbor -> edge weight mapping (read-only by convention)."""
        return self._adjacency[node_id]

    def has_edge(self, source: str, target: str) -> bool:
        """True iff the edge exists."""
        return target in self._adjacency.get(source, {})

    def weight(self, source: str, target: str) -> float:
        """Weight of the edge; KeyError if absent."""
        return self._adjacency[source][target]

    def relation(self, source: str, target: str) -> str:
        """Knowledge predicate of the edge ('' for interactions)."""
        return self._relations.get(undirected_key(source, target), "")

    def degree(self, node_id: str) -> int:
        """Number of incident edges."""
        return len(self._adjacency[node_id])

    def name(self, node_id: str) -> str:
        """Display name for a node (falls back to the raw id)."""
        return self._names.get(node_id, node_id)

    def set_name(self, node_id: str, name: str) -> None:
        """Assign a display name to an existing node."""
        if node_id not in self._adjacency:
            raise KeyError(f"unknown node {node_id!r}")
        self._names[node_id] = name

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def freeze(self):
        """The cached CSR view of this graph (see :mod:`repro.graph.csr`).

        Rebuilt automatically whenever the graph has been mutated since
        the last call; repeated calls on an unchanged graph return the
        same :class:`~repro.graph.csr.FrozenGraph` instance.
        """
        from repro.graph.csr import FrozenGraph

        if self._frozen is None or self._frozen.version != self._version:
            self._frozen = FrozenGraph.from_knowledge_graph(self)
        return self._frozen

    def copy(self) -> "KnowledgeGraph":
        """Deep copy (adjacency, relations and names)."""
        clone = KnowledgeGraph()
        clone._adjacency = {n: dict(nbrs) for n, nbrs in self._adjacency.items()}
        clone._relations = dict(self._relations)
        clone._names = dict(self._names)
        clone._num_edges = self._num_edges
        return clone

    def reweighted(self, weight_fn) -> "KnowledgeGraph":
        """Copy of the graph with ``weight_fn(Edge) -> float`` applied.

        Used by the summarizers to apply the paper's Eq. (1) boost without
        mutating the shared graph.
        """
        clone = self.copy()
        for edge in self.edges():
            clone.set_weight(edge.source, edge.target, weight_fn(edge))
        return clone

    def stats(self, approx_pairs: int = 0, rng=None) -> GraphStats:
        """Compute Table II-style statistics.

        ``average_path_length`` and ``diameter`` are exact when
        ``approx_pairs == 0`` (BFS from every node; only viable on small
        graphs) and sampled from ``approx_pairs`` BFS sources otherwise.
        """
        from repro.graph.shortest_paths import bfs_eccentricity_indexed

        users = sum(1 for _ in self.nodes_of_type(NodeType.USER))
        items = sum(1 for _ in self.nodes_of_type(NodeType.ITEM))
        external = self.num_nodes - users - items
        interactions = sum(
            1 for e in self.edges() if e.type is EdgeType.INTERACTION
        )
        knowledge = self._num_edges - interactions
        n = self.num_nodes
        density = (
            2.0 * self._num_edges / (n * (n - 1)) if n > 1 else 0.0
        )
        avg_degree = 2.0 * self._num_edges / n if n else 0.0

        sources: list[str]
        all_nodes = list(self._adjacency)
        if approx_pairs and approx_pairs < len(all_nodes):
            if rng is None:
                import numpy as np

                rng = np.random.default_rng(0)
            picks = rng.choice(len(all_nodes), size=approx_pairs, replace=False)
            sources = [all_nodes[int(i)] for i in picks]
        else:
            sources = all_nodes

        total_length = 0
        total_pairs = 0
        diameter = 0
        frozen = self.freeze()
        for source in sources:
            ecc, dist_sum, reached = bfs_eccentricity_indexed(
                frozen, frozen.index_of(source)
            )
            diameter = max(diameter, ecc)
            total_length += dist_sum
            total_pairs += reached
        avg_path = total_length / total_pairs if total_pairs else math.nan

        return GraphStats(
            num_users=users,
            num_items=items,
            num_external=external,
            num_interaction_edges=interactions,
            num_knowledge_edges=knowledge,
            average_degree=avg_degree,
            density=density,
            average_path_length=avg_path,
            diameter=diameter,
        )

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "KnowledgeGraph":
        """Build from ``(source, target[, weight[, relation]])`` tuples."""
        graph = cls()
        for edge in edges:
            graph.add_edge(*edge)
        return graph
