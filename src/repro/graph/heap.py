"""Addressable binary min-heaps with decrease-key.

Dijkstra, Prim and the PCST growth loop all need ``decrease_key``; Python's
``heapq`` does not support it without lazy-deletion bookkeeping, so this is a
classic array-backed binary heap that tracks each key's slot.

Two variants live here: :class:`AddressableHeap` over arbitrary hashable
keys (the dict-based algorithms) and :class:`IndexedHeap` specialized to
dense int keys in ``[0, n)``. The two run the *same* sift algorithm
comparing only priorities, so given identical operation sequences they
pop keys in identical order. The CSR Dijkstra inlines this exact
algorithm for speed; ``IndexedHeap`` is its readable reference and the
tie-breaking oracle the heap property tests pin both against.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)


class AddressableHeap(Generic[K]):
    """Binary min-heap mapping hashable keys to float priorities.

    Supports ``push``, ``pop_min``, ``decrease_key`` (via :meth:`update`),
    and O(1) priority lookup. Each key may appear at most once.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, K]] = []
        self._slot: dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._slot

    def priority(self, key: K) -> float:
        """Current priority of ``key`` (KeyError if absent)."""
        return self._entries[self._slot[key]][0]

    def push(self, key: K, priority: float) -> None:
        """Insert ``key``; raises if it is already queued."""
        if key in self._slot:
            raise KeyError(f"key {key!r} already in heap")
        self._entries.append((priority, key))
        self._slot[key] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def update(self, key: K, priority: float) -> bool:
        """Insert ``key`` or change its priority.

        Returns True if the key was inserted or its priority changed.
        Both decrease and increase are supported; Dijkstra only ever
        decreases.
        """
        if key not in self._slot:
            self.push(key, priority)
            return True
        index = self._slot[key]
        current = self._entries[index][0]
        if priority == current:
            return False
        self._entries[index] = (priority, key)
        if priority < current:
            self._sift_up(index)
        else:
            self._sift_down(index)
        return True

    def decrease_if_lower(self, key: K, priority: float) -> bool:
        """Set ``key``'s priority only if ``priority`` improves on it."""
        if key in self._slot and self.priority(key) <= priority:
            return False
        return self.update(key, priority)

    def pop_min(self) -> tuple[K, float]:
        """Remove and return ``(key, priority)`` with the smallest priority."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        priority, key = self._entries[0]
        last = self._entries.pop()
        del self._slot[key]
        if self._entries:
            self._entries[0] = last
            self._slot[last[1]] = 0
            self._sift_down(0)
        return key, priority

    def peek_min(self) -> tuple[K, float]:
        """Return (but do not remove) the minimum entry."""
        if not self._entries:
            raise IndexError("peek at empty heap")
        priority, key = self._entries[0]
        return key, priority

    def _sift_up(self, index: int) -> None:
        entries, slot = self._entries, self._slot
        entry = entries[index]
        while index > 0:
            parent = (index - 1) >> 1
            if entries[parent][0] <= entry[0]:
                break
            entries[index] = entries[parent]
            slot[entries[index][1]] = index
            index = parent
        entries[index] = entry
        slot[entry[1]] = index

    def _sift_down(self, index: int) -> None:
        entries, slot = self._entries, self._slot
        size = len(entries)
        entry = entries[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and entries[right][0] < entries[child][0]:
                child = right
            if entries[child][0] >= entry[0]:
                break
            entries[index] = entries[child]
            slot[entries[index][1]] = index
            index = child
        entries[index] = entry
        slot[entry[1]] = index

class IndexedHeap:
    """Binary min-heap over dense int keys ``0 .. num_keys - 1``.

    Functionally identical to :class:`AddressableHeap` (same sift logic,
    same tie behaviour) with array-index slot lookup instead of a dict
    probe. The CSR hot loops — ``dijkstra_indexed``,
    ``multi_source_tables`` and the PCST ``_grow_indexed`` — inline this
    algorithm rather than calling it (method-call overhead dominates
    their inner loops); this class is the standalone reference for that
    inlined code and is pinned op-for-op against AddressableHeap by the
    property tests.
    """

    __slots__ = ("_prios", "_keys", "_slot")

    def __init__(self, num_keys: int) -> None:
        self._prios: list[float] = []
        self._keys: list[int] = []
        self._slot = array("q", [-1]) * num_keys

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, key: int) -> bool:
        return self._slot[key] != -1

    def priority(self, key: int) -> float:
        """Current priority of ``key`` (KeyError if absent)."""
        index = self._slot[key]
        if index == -1:
            raise KeyError(f"key {key!r} not in heap")
        return self._prios[index]

    def push(self, key: int, priority: float) -> None:
        """Insert ``key``; raises if it is already queued."""
        if self._slot[key] != -1:
            raise KeyError(f"key {key!r} already in heap")
        self._prios.append(priority)
        self._keys.append(key)
        self._slot[key] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def update(self, key: int, priority: float) -> bool:
        """Insert ``key`` or change its priority (see AddressableHeap)."""
        index = self._slot[key]
        if index == -1:
            self.push(key, priority)
            return True
        current = self._prios[index]
        if priority == current:
            return False
        self._prios[index] = priority
        if priority < current:
            self._sift_up(index)
        else:
            self._sift_down(index)
        return True

    def decrease_if_lower(self, key: int, priority: float) -> bool:
        """Set ``key``'s priority only if ``priority`` improves on it."""
        index = self._slot[key]
        if index != -1 and self._prios[index] <= priority:
            return False
        return self.update(key, priority)

    def pop_min(self) -> tuple[int, float]:
        """Remove and return ``(key, priority)`` with smallest priority."""
        if not self._keys:
            raise IndexError("pop from empty heap")
        priority = self._prios[0]
        key = self._keys[0]
        last_prio = self._prios.pop()
        last_key = self._keys.pop()
        self._slot[key] = -1
        if self._keys:
            self._prios[0] = last_prio
            self._keys[0] = last_key
            self._slot[last_key] = 0
            self._sift_down(0)
        return key, priority

    def peek_min(self) -> tuple[int, float]:
        """Return (but do not remove) the minimum entry."""
        if not self._keys:
            raise IndexError("peek at empty heap")
        return self._keys[0], self._prios[0]

    def _sift_up(self, index: int) -> None:
        prios, keys, slot = self._prios, self._keys, self._slot
        prio, key = prios[index], keys[index]
        while index > 0:
            parent = (index - 1) >> 1
            if prios[parent] <= prio:
                break
            prios[index] = prios[parent]
            keys[index] = keys[parent]
            slot[keys[index]] = index
            index = parent
        prios[index] = prio
        keys[index] = key
        slot[key] = index

    def _sift_down(self, index: int) -> None:
        prios, keys, slot = self._prios, self._keys, self._slot
        size = len(keys)
        prio, key = prios[index], keys[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and prios[right] < prios[child]:
                child = right
            if prios[child] >= prio:
                break
            prios[index] = prios[child]
            keys[index] = keys[child]
            slot[keys[index]] = index
            index = child
        prios[index] = prio
        keys[index] = key
        slot[key] = index
