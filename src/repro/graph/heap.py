"""Addressable binary min-heap with decrease-key.

Dijkstra, Prim and the PCST growth loop all need ``decrease_key``; Python's
``heapq`` does not support it without lazy-deletion bookkeeping, so this is a
classic array-backed binary heap that tracks each key's slot.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)


class AddressableHeap(Generic[K]):
    """Binary min-heap mapping hashable keys to float priorities.

    Supports ``push``, ``pop_min``, ``decrease_key`` (via :meth:`update`),
    and O(1) priority lookup. Each key may appear at most once.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, K]] = []
        self._slot: dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._slot

    def priority(self, key: K) -> float:
        """Current priority of ``key`` (KeyError if absent)."""
        return self._entries[self._slot[key]][0]

    def push(self, key: K, priority: float) -> None:
        """Insert ``key``; raises if it is already queued."""
        if key in self._slot:
            raise KeyError(f"key {key!r} already in heap")
        self._entries.append((priority, key))
        self._slot[key] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def update(self, key: K, priority: float) -> bool:
        """Insert ``key`` or change its priority.

        Returns True if the key was inserted or its priority changed.
        Both decrease and increase are supported; Dijkstra only ever
        decreases.
        """
        if key not in self._slot:
            self.push(key, priority)
            return True
        index = self._slot[key]
        current = self._entries[index][0]
        if priority == current:
            return False
        self._entries[index] = (priority, key)
        if priority < current:
            self._sift_up(index)
        else:
            self._sift_down(index)
        return True

    def decrease_if_lower(self, key: K, priority: float) -> bool:
        """Set ``key``'s priority only if ``priority`` improves on it."""
        if key in self._slot and self.priority(key) <= priority:
            return False
        return self.update(key, priority)

    def pop_min(self) -> tuple[K, float]:
        """Remove and return ``(key, priority)`` with the smallest priority."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        priority, key = self._entries[0]
        last = self._entries.pop()
        del self._slot[key]
        if self._entries:
            self._entries[0] = last
            self._slot[last[1]] = 0
            self._sift_down(0)
        return key, priority

    def peek_min(self) -> tuple[K, float]:
        """Return (but do not remove) the minimum entry."""
        if not self._entries:
            raise IndexError("peek at empty heap")
        priority, key = self._entries[0]
        return key, priority

    def _sift_up(self, index: int) -> None:
        entries, slot = self._entries, self._slot
        entry = entries[index]
        while index > 0:
            parent = (index - 1) >> 1
            if entries[parent][0] <= entry[0]:
                break
            entries[index] = entries[parent]
            slot[entries[index][1]] = index
            index = parent
        entries[index] = entry
        slot[entry[1]] = index

    def _sift_down(self, index: int) -> None:
        entries, slot = self._entries, self._slot
        size = len(entries)
        entry = entries[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and entries[right][0] < entries[child][0]:
                child = right
            if entries[child][0] >= entry[0]:
                break
            entries[index] = entries[child]
            slot[entries[index][1]] = index
            index = child
        entries[index] = entry
        slot[entry[1]] = index
