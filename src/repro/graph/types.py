"""Node and edge typing for the knowledge-based graph.

The paper's graph ``G = (V, E, w)`` has three node populations:

- users ``U`` and items ``I`` from the rating matrix ``M`` (graph ``G_M``),
- external knowledge entities ``V_A`` (directors, genres, artists, ...)
  attached via edges ``E_A``.

Node identity in this codebase is a plain string id with a conventional
prefix (``u:``, ``i:``, ``e:``) so that ids stay hashable, cheap and
human-readable in verbalized explanations. :class:`NodeType` classifies ids;
:class:`Node`/:class:`Edge` are the record types used at API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class NodeType(Enum):
    """Population a node belongs to (user / item / external entity)."""

    USER = "user"
    ITEM = "item"
    EXTERNAL = "external"

    @classmethod
    def of(cls, node_id: str) -> "NodeType":
        """Classify a node id by its conventional prefix.

        >>> NodeType.of("u:12")
        <NodeType.USER: 'user'>
        >>> NodeType.of("i:5")
        <NodeType.ITEM: 'item'>
        >>> NodeType.of("e:genre:3")
        <NodeType.EXTERNAL: 'external'>
        """
        if node_id.startswith("u:"):
            return cls.USER
        if node_id.startswith("i:"):
            return cls.ITEM
        if node_id.startswith("e:"):
            return cls.EXTERNAL
        raise ValueError(f"node id {node_id!r} has no recognized type prefix")


def user_id(index: int) -> str:
    """Canonical id for the ``index``-th user."""
    return f"u:{index}"


def item_id(index: int) -> str:
    """Canonical id for the ``index``-th item."""
    return f"i:{index}"


def external_id(relation: str, index: int) -> str:
    """Canonical id for the ``index``-th external entity of ``relation``."""
    return f"e:{relation}:{index}"


class EdgeType(Enum):
    """Edge population: rating-matrix edges vs external-knowledge edges."""

    INTERACTION = "interaction"  # member of E_M (user rated item)
    KNOWLEDGE = "knowledge"  # member of E_A (user/item -> external)

    @classmethod
    def of(cls, source: str, target: str) -> "EdgeType":
        """Infer the edge population from endpoint node types."""
        types = {NodeType.of(source), NodeType.of(target)}
        if types == {NodeType.USER, NodeType.ITEM}:
            return cls.INTERACTION
        if NodeType.EXTERNAL in types:
            return cls.KNOWLEDGE
        raise ValueError(
            f"edge ({source!r}, {target!r}) connects populations the paper's "
            "graph model does not allow"
        )


@dataclass(frozen=True, slots=True)
class Node:
    """A typed node record (id plus optional display name)."""

    id: str
    name: str = ""

    @property
    def type(self) -> NodeType:
        """Population this record belongs to."""
        return NodeType.of(self.id)

    @property
    def display(self) -> str:
        """Human-facing label: explicit name if set, else the raw id."""
        return self.name or self.id


@dataclass(frozen=True, slots=True)
class Edge:
    """A weighted directed edge record.

    ``relation`` carries the external-knowledge predicate (``genre``,
    ``director``, ...) for ``E_A`` edges and is empty for interactions.
    """

    source: str
    target: str
    weight: float = 1.0
    relation: str = ""

    @property
    def type(self) -> EdgeType:
        """Population this record belongs to."""
        return EdgeType.of(self.source, self.target)

    def key(self) -> tuple[str, str]:
        """Direction-insensitive identity used for set membership.

        Explanation paths traverse edges in either direction (the summary
        subgraph is *weakly* connected), so two edges that connect the same
        endpoints count as the same edge for frequency and metric purposes.
        """
        if self.source <= self.target:
            return (self.source, self.target)
        return (self.target, self.source)


def undirected_key(u: str, v: str) -> tuple[str, str]:
    """Order-normalized endpoint pair, the canonical edge identity."""
    if u <= v:
        return (u, v)
    return (v, u)


@dataclass(slots=True)
class GraphStats:
    """Summary statistics in the shape of the paper's Table II."""

    num_users: int = 0
    num_items: int = 0
    num_external: int = 0
    num_interaction_edges: int = 0
    num_knowledge_edges: int = 0
    average_degree: float = 0.0
    density: float = 0.0
    average_path_length: float = 0.0
    diameter: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.num_users + self.num_items + self.num_external

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self.num_interaction_edges + self.num_knowledge_edges
