"""Minimum spanning tree: Kruskal and Prim.

The Steiner 2-approximation builds an MST over the terminals' metric
closure (paper Algorithm 1, step 7). Kruskal is the default because the
metric closure arrives as an edge list; Prim is provided for dense inputs
and as a cross-check in tests.

Both accept plain edge lists ``(u, v, weight)`` over arbitrary hashable
nodes — the metric closure is not a :class:`KnowledgeGraph` (its "edges"
are shortest-path distances), so the MST layer stays structure-agnostic.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import TypeVar

from repro.graph.disjoint_set import DisjointSet
from repro.graph.heap import AddressableHeap

N = TypeVar("N", bound=Hashable)
EdgeTuple = tuple[N, N, float]


def kruskal_mst(
    nodes: Sequence[N], edges: Sequence[EdgeTuple]
) -> list[EdgeTuple]:
    """Kruskal's algorithm.

    Returns the MST edge list (a minimum spanning *forest* if the input is
    disconnected). Ties are broken by edge order after a stable sort, so the
    result is deterministic for a deterministic input order.
    """
    forest = DisjointSet(nodes)
    mst: list[EdgeTuple] = []
    for u, v, weight in sorted(edges, key=lambda e: e[2]):
        if forest.union(u, v):
            mst.append((u, v, weight))
            if len(mst) == len(nodes) - 1:
                break
    return mst


def prim_mst(
    nodes: Sequence[N], edges: Sequence[EdgeTuple]
) -> list[EdgeTuple]:
    """Prim's algorithm over an adjacency built from ``edges``.

    Handles disconnected inputs by restarting from each unvisited node,
    yielding a spanning forest like :func:`kruskal_mst`.
    """
    adjacency: dict[N, list[tuple[N, float]]] = {n: [] for n in nodes}
    for u, v, weight in edges:
        adjacency[u].append((v, weight))
        adjacency[v].append((u, weight))

    visited: set[N] = set()
    mst: list[EdgeTuple] = []
    best_parent: dict[N, N] = {}

    for root in nodes:
        if root in visited:
            continue
        heap: AddressableHeap[N] = AddressableHeap()
        heap.push(root, 0.0)
        while heap:
            node, cost = heap.pop_min()
            if node in visited:
                continue
            visited.add(node)
            if node != root:
                mst.append((best_parent[node], node, cost))
            for neighbor, weight in adjacency[node]:
                if neighbor in visited:
                    continue
                if heap.decrease_if_lower(neighbor, weight):
                    best_parent[neighbor] = node
    return mst


def total_weight(edges: Sequence[EdgeTuple]) -> float:
    """Sum of the weights of an edge list."""
    return sum(weight for _u, _v, weight in edges)
