"""Interaction edge weights: ``w_M(u,i) = β1·r + β2·f(t)`` (§III).

The recency function is the exponential decay ``f(t) = exp(-γ·(t0 - t))``.
Experiments in the paper default to β2 = 0 (pure rating weights) and probe
the β1/β2 trade-off in Fig 16, which is what :class:`InteractionWeights`
parameterizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def recency_score(timestamp: float, now: float, gamma: float) -> float:
    """``f(t) = exp(-γ (t0 - t))`` — 1.0 for a rating made right now,
    decaying toward 0 for older ratings. Future timestamps clamp to 1.0."""
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    age = max(0.0, now - timestamp)
    return math.exp(-gamma * age)


@dataclass(frozen=True, slots=True)
class InteractionWeights:
    """The paper's ``w_M`` weight function for user-item edges.

    Parameters
    ----------
    beta_rating:
        β1, importance of the rating value.
    beta_recency:
        β2, importance of recency (paper default 0).
    gamma:
        Decay rate of the recency exponential, per time unit.
    now:
        The reference time ``t0``. Datasets pass their maximum timestamp.
    """

    beta_rating: float = 1.0
    beta_recency: float = 0.0
    gamma: float = 1e-8
    now: float = 0.0

    def __post_init__(self) -> None:
        if self.beta_rating < 0 or self.beta_recency < 0:
            raise ValueError("beta coefficients must be non-negative")
        if self.beta_rating == 0 and self.beta_recency == 0:
            raise ValueError("at least one beta coefficient must be positive")

    def weight(self, rating: float, timestamp: float) -> float:
        """``β1·r + β2·f(t)`` for one interaction."""
        value = self.beta_rating * rating
        if self.beta_recency:
            value += self.beta_recency * recency_score(
                timestamp, self.now, self.gamma
            )
        return value

    @classmethod
    def rating_only(cls, beta_rating: float = 1.0) -> "InteractionWeights":
        """The paper's experimental default (β2 = 0)."""
        return cls(beta_rating=beta_rating, beta_recency=0.0)

    @classmethod
    def mix(
        cls,
        beta_rating: float,
        beta_recency: float,
        gamma: float,
        now: float,
    ) -> "InteractionWeights":
        """Explicit β1/β2 combination, as swept in Fig 16."""
        return cls(
            beta_rating=beta_rating,
            beta_recency=beta_recency,
            gamma=gamma,
            now=now,
        )
