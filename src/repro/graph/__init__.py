"""Graph substrate: typed knowledge graphs and the algorithms used by the
summarizers (Dijkstra, MST, Steiner Tree, Prize-Collecting Steiner Tree).

Everything here is implemented from scratch on plain Python data structures;
``networkx`` is used only in the test suite as an oracle.
"""

from repro.graph.types import Edge, EdgeType, Node, NodeType
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.csr import FrozenCosts, FrozenGraph
from repro.graph.paths import Path
from repro.graph.disjoint_set import DisjointSet, IndexedDisjointSet
from repro.graph.heap import AddressableHeap, IndexedHeap
from repro.graph.shortest_paths import (
    bfs_distances_indexed,
    bfs_shortest_path,
    dijkstra,
    dijkstra_frozen,
    dijkstra_indexed,
    dijkstra_multi_source,
    dijkstra_multi_source_frozen,
    dijkstra_multi_source_indexed,
    shortest_path_between,
)
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.steiner import steiner_tree
from repro.graph.pcst import grow_prune_pcst, paper_pcst
from repro.graph.subgraph import (
    induced_subgraph,
    is_weakly_connected,
    weakly_connected_components,
)
from repro.graph.build import build_interaction_graph, extend_with_external
from repro.graph.weights import InteractionWeights, recency_score
from repro.graph.generators import generate_random_kg
from repro.graph.mehlhorn import (
    mehlhorn_steiner_tree,
    mehlhorn_steiner_tree_indexed,
)
from repro.graph.centrality import (
    closeness_centrality,
    degree_centrality,
    harmonic_centrality,
    pagerank,
)

__all__ = [
    "AddressableHeap",
    "DisjointSet",
    "Edge",
    "EdgeType",
    "FrozenCosts",
    "FrozenGraph",
    "IndexedDisjointSet",
    "IndexedHeap",
    "InteractionWeights",
    "KnowledgeGraph",
    "Node",
    "NodeType",
    "Path",
    "bfs_distances_indexed",
    "bfs_shortest_path",
    "build_interaction_graph",
    "closeness_centrality",
    "degree_centrality",
    "harmonic_centrality",
    "mehlhorn_steiner_tree",
    "mehlhorn_steiner_tree_indexed",
    "pagerank",
    "dijkstra",
    "dijkstra_frozen",
    "dijkstra_indexed",
    "dijkstra_multi_source",
    "dijkstra_multi_source_frozen",
    "dijkstra_multi_source_indexed",
    "extend_with_external",
    "generate_random_kg",
    "grow_prune_pcst",
    "induced_subgraph",
    "is_weakly_connected",
    "kruskal_mst",
    "paper_pcst",
    "prim_mst",
    "recency_score",
    "shortest_path_between",
    "steiner_tree",
    "weakly_connected_components",
]
