"""Explanation paths: ``E(u, i) = (u, v1, ..., vk, i)``.

A :class:`Path` is the unit every recommender emits and every summarizer
consumes. It is a node sequence plus provenance (which user/item pair it
explains); edge iteration, KG validation and hop counting live here.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import NodeType, undirected_key


@dataclass(frozen=True)
class Path:
    """An explanation path from a user to a recommended item.

    ``nodes`` is the full node sequence including both endpoints. ``user``
    and ``item`` record which recommendation the path explains; for paths
    produced by recommenders they equal ``nodes[0]`` / ``nodes[-1]``.
    ``score`` is the emitting recommender's confidence (used for ordering,
    never by the summarizers themselves).
    """

    nodes: tuple[str, ...]
    user: str = ""
    item: str = ""
    score: float = 0.0
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError("a path needs at least two nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path revisits a node: {self.nodes}")
        if not self.user:
            object.__setattr__(self, "user", self.nodes[0])
        if not self.item:
            object.__setattr__(self, "item", self.nodes[-1])

    @classmethod
    def from_nodes(cls, nodes: Sequence[str], score: float = 0.0) -> "Path":
        """Build a Path from any node sequence."""
        return cls(nodes=tuple(nodes), score=score)

    def __len__(self) -> int:
        """Number of edges (hops), matching the paper's path length."""
        return len(self.nodes) - 1

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    @property
    def num_hops(self) -> int:
        """Number of edges (alias of len())."""
        return len(self.nodes) - 1

    def edges(self) -> Iterator[tuple[str, str]]:
        """Consecutive node pairs, in path order."""
        return zip(self.nodes, self.nodes[1:])

    def edge_keys(self) -> Iterator[tuple[str, str]]:
        """Direction-normalized edge identities (for frequency counting)."""
        for u, v in self.edges():
            yield undirected_key(u, v)

    def intermediate_nodes(self) -> tuple[str, ...]:
        """Nodes strictly between the user and the item."""
        return self.nodes[1:-1]

    def node_types(self) -> tuple[NodeType, ...]:
        """NodeType of each node, in path order."""
        return tuple(NodeType.of(n) for n in self.nodes)

    def is_valid_in(self, graph: KnowledgeGraph) -> bool:
        """True iff every hop exists in ``graph``.

        PLM-style generators can emit hallucinated hops; PEARLM and the
        summarizers require faithful paths, checked with this.
        """
        return all(graph.has_edge(u, v) for u, v in self.edges())

    def invalid_edges(self, graph: KnowledgeGraph) -> list[tuple[str, str]]:
        """Hops not present in ``graph`` (empty iff :meth:`is_valid_in`)."""
        return [(u, v) for u, v in self.edges() if not graph.has_edge(u, v)]

    def total_weight(self, graph: KnowledgeGraph) -> float:
        """Sum of KG weights along the path (missing hops contribute 0)."""
        return sum(
            graph.weight(u, v)
            for u, v in self.edges()
            if graph.has_edge(u, v)
        )


def paths_node_multiset(paths: Sequence[Path]) -> dict[str, int]:
    """Occurrence count of each node across a path collection.

    The redundancy metric is defined on the *multiset* view of a path set:
    a node mentioned by three paths counts three times.
    """
    counts: dict[str, int] = {}
    for path in paths:
        for node in path.nodes:
            counts[node] = counts.get(node, 0) + 1
    return counts


def paths_edge_frequency(paths: Sequence[Path]) -> dict[tuple[str, str], int]:
    """Occurrence count of each (undirected) edge across a path collection.

    This is the ``Σ_x 1_{e∈P}`` numerator of the paper's Eq. (1).
    """
    counts: dict[tuple[str, str], int] = {}
    for path in paths:
        for key in path.edge_keys():
            counts[key] = counts.get(key, 0) + 1
    return counts
