"""Mehlhorn's Steiner tree 2-approximation (extension).

The paper's Algorithm 1 (Kou-Markowsky-Berman) runs one Dijkstra per
terminal — `O(|T| (|E| + |V| log |V|))` — which is exactly why ST scales
poorly with group size (Fig 10). Mehlhorn (1988) computes the same
approximation guarantee from a *single* multi-source Dijkstra:

1. one multi-source run assigns every node its nearest terminal
   (a Voronoi partition of the graph) and the distance to it;
2. every edge (u, v) whose endpoints lie in different Voronoi cells
   s = origin(u), t = origin(v) induces a candidate closure edge
   (s, t) of weight d(s,u) + w(u,v) + d(v,t);
3. MST over those candidate edges, unfolded through the recorded
   shortest-path trees, then pruned — as in Algorithm 1.

This is the natural "refinement of our algorithms" the paper's future
work points at: same 2-approximation family, terminal-count-independent
running time. The ablation bench compares it against Algorithm 1.

Like the KMB construction in :mod:`repro.graph.steiner`, the whole
pipeline has an index-based twin over a frozen CSR view
(:func:`mehlhorn_steiner_tree_indexed`): the Voronoi sweep runs
:func:`~repro.graph.shortest_paths.dijkstra_multi_source_indexed`, the
candidate-closure scan iterates the CSR edge arrays directly, and the
MST/unfold/prune stages stay in the int domain, mapping back to string
ids only when the final tree is materialized. The dict-based path is
the parity oracle: both produce *identical* trees, tie-breaking
included (undirected-edge orientation compares the frozen view's
precomputed string ranks, so even the string-order tie rules replay
exactly — pinned by ``tests/properties/test_engine_parity.py``).

Both paths also run unchanged inside the batch engine's process-pool
workers: an attached shared view (:mod:`repro.graph.shared`) arrives
with its string-rank table pre-populated from the exported block (no
per-worker re-sort of the id list) and with ``is_stale()`` vacuously
False — staleness is the exporting parent's concern, which re-freezes
before every export.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.csr import FrozenGraph
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import (
    CostFn,
    _cost_slots,
    dijkstra_multi_source,
    multi_source_tables,
)
from repro.graph.steiner import _prune_non_terminal_leaves, single_terminal_tree
from repro.graph.subgraph import edge_subgraph
from repro.graph.types import undirected_key


def mehlhorn_steiner_tree(
    graph: KnowledgeGraph,
    terminals: Sequence[str],
    cost_fn: CostFn | None = None,
    *,
    frozen: FrozenGraph | None = None,
    slot_costs=None,
) -> KnowledgeGraph:
    """2-approximate Steiner tree in one multi-source Dijkstra.

    Same contract as :func:`repro.graph.steiner.steiner_tree`: returns a
    tree spanning ``terminals``; raises ``ValueError`` if they span more
    than one connected component, ``KeyError`` on unknown terminals.

    ``frozen`` / ``slot_costs`` select the CSR fast path (per-slot costs
    must agree with ``cost_fn``, exactly as in ``steiner_tree``); the
    result is identical to the dict path either way.
    """
    if frozen is not None:
        return mehlhorn_steiner_tree_indexed(
            graph, frozen, terminals, costs=slot_costs
        )
    unique_terminals = list(dict.fromkeys(terminals))
    if not unique_terminals:
        return KnowledgeGraph()
    for terminal in unique_terminals:
        if terminal not in graph:
            raise KeyError(f"terminal {terminal!r} not in graph")
    if len(unique_terminals) == 1:
        return single_terminal_tree(graph, unique_terminals[0])

    cost = cost_fn or (lambda _u, _v, w: w)
    dist, prev, origin = dijkstra_multi_source(
        graph, unique_terminals, cost_fn=cost_fn
    )

    # Candidate closure edges between Voronoi cells: keep the cheapest
    # bridge per terminal pair.
    bridges: dict[tuple[str, str], tuple[float, str, str]] = {}
    for u in dist:
        for v, stored in graph.neighbors(u).items():
            if v not in dist or u > v:
                continue
            source, target = origin[u], origin[v]
            if source == target:
                continue
            key = undirected_key(source, target)
            weight = dist[u] + cost(u, v, stored) + dist[v]
            current = bridges.get(key)
            if current is None or weight < current[0]:
                bridges[key] = (weight, u, v)

    reachable = {t for t in unique_terminals if t in dist}
    if len(reachable) < len(unique_terminals):
        missing = set(unique_terminals) - reachable
        raise ValueError(f"terminals unreachable: {sorted(missing)}")

    closure_edges = [
        (key[0], key[1], weight)
        for key, (weight, _u, _v) in bridges.items()
    ]
    closure_mst = kruskal_mst(unique_terminals, closure_edges)
    if len(closure_mst) < len(unique_terminals) - 1:
        raise ValueError("terminals are disconnected")

    # Unfold each closure edge: the bridge edge plus both walk-backs to
    # the respective terminals along the multi-source shortest-path tree.
    unfolded: dict[tuple[str, str], float] = {}

    def walk_back(node: str) -> None:
        """Record the shortest-path-tree edges down to a terminal."""
        while node in prev:
            parent = prev[node]
            unfolded[undirected_key(node, parent)] = graph.weight(
                node, parent
            )
            node = parent

    for s, t, _weight in closure_mst:
        _bridge_weight, u, v = bridges[undirected_key(s, t)]
        unfolded[undirected_key(u, v)] = graph.weight(u, v)
        walk_back(u)
        walk_back(v)

    nodes = sorted({n for key in unfolded for n in key})
    tree_edges = kruskal_mst(
        nodes,
        [(u, v, cost(u, v, w)) for (u, v), w in unfolded.items()],
    )
    tree = edge_subgraph(
        graph, {undirected_key(u, v) for u, v, _ in tree_edges}
    )
    _prune_non_terminal_leaves(tree, set(unique_terminals))
    return tree


def mehlhorn_steiner_tree_indexed(
    graph: KnowledgeGraph,
    frozen: FrozenGraph,
    terminals: Sequence[str],
    costs=None,
) -> KnowledgeGraph:
    """Index-based :func:`mehlhorn_steiner_tree` over a frozen CSR view.

    The Voronoi sweep, the candidate-closure scan over the CSR edge
    arrays, the closure MST, the unfold and the final re-MST all run on
    dense int indices; string ids only appear at the boundary (input
    terminals, the returned tree). Bit-identical to the dict-based
    implementation — the dict version orients undirected edges and
    breaks ``undirected_key`` ties by *string* comparison, which the
    indexed version replays through the frozen view's cached
    :meth:`~repro.graph.csr.FrozenGraph.string_ranks` table.

    ``costs`` follows the :func:`~repro.graph.shortest_paths.
    dijkstra_indexed` convention: per-slot costs (a ``FrozenCosts`` or a
    raw per-slot sequence), or None for the stored weights.
    """
    unique_terminals = list(dict.fromkeys(terminals))
    if not unique_terminals:
        return KnowledgeGraph()
    for terminal in unique_terminals:
        if terminal not in graph:
            raise KeyError(f"terminal {terminal!r} not in graph")
    if len(unique_terminals) == 1:
        return single_terminal_tree(graph, unique_terminals[0])
    if frozen.is_stale():
        raise ValueError("frozen view is stale; call graph.freeze() again")

    ids = frozen.ids
    rank = frozen.string_ranks()
    num_nodes = frozen.num_nodes
    term_idx = [frozen.index_of(t) for t in unique_terminals]
    settle_order, settle_value, parent_of, origin = multi_source_tables(
        frozen, term_idx, costs=costs
    )
    settled = bytearray(num_nodes)
    for node in settle_order:
        settled[node] = 1
    slot_costs = _cost_slots(frozen, costs)
    offsets, edge_targets, _ = frozen.traversal_tables()

    def ordered(u: int, v: int) -> tuple[int, int]:
        """The undirected_key of an index pair (string-rank order)."""
        return (u, v) if rank[u] < rank[v] else (v, u)

    def row_slot(u: int, v: int) -> int:
        """Directed slot of edge u -> v (rows are short; O(degree))."""
        for slot in range(offsets[u], offsets[u + 1]):
            if edge_targets[slot] == v:
                return slot
        raise KeyError(f"no edge ({ids[u]!r}, {ids[v]!r})")

    # Candidate closure edges between Voronoi cells, scanning the CSR
    # rows of settled nodes in settle order (identical visit sequence to
    # the dict version's adjacency walk). Bridges are keyed by the flat
    # int ``s * num_nodes + t`` with (s, t) in string-rank order — the
    # same undirected pair identity as the dict version's
    # ``undirected_key``, one int hash instead of a tuple.
    bridges: dict[int, tuple[float, int, int]] = {}
    bridges_get = bridges.get
    # When the sweep settled every node (terminals in a connected graph,
    # the common case) the per-edge settled probe is dead weight.
    all_settled = len(settle_order) == num_nodes
    for u in settle_order:
        rank_u = rank[u]
        dist_u = settle_value[u]
        origin_u = origin[u]
        rank_ou = rank[origin_u]
        # zip over row slices, not range-indexing: a range boxes a fresh
        # int per slot, and this scan touches every directed edge — the
        # slices of the pre-boxed traversal lists keep the allocation
        # count flat (same iteration order).
        row_start = offsets[u]
        row_end = offsets[u + 1]
        for v, slot_cost in zip(
            edge_targets[row_start:row_end], slot_costs[row_start:row_end]
        ):
            if rank_u > rank[v] or not (all_settled or settled[v]):
                continue
            target = origin[v]
            if origin_u == target:
                continue
            if rank_ou < rank[target]:
                key = origin_u * num_nodes + target
            else:
                key = target * num_nodes + origin_u
            weight = dist_u + slot_cost + settle_value[v]
            current = bridges_get(key)
            if current is None or weight < current[0]:
                bridges[key] = (weight, u, v)

    missing = [
        t for t, i in zip(unique_terminals, term_idx) if not settled[i]
    ]
    if missing:
        raise ValueError(f"terminals unreachable: {sorted(missing)}")

    closure_edges = [
        (key // num_nodes, key % num_nodes, weight)
        for key, (weight, _u, _v) in bridges.items()
    ]
    closure_mst = kruskal_mst(term_idx, closure_edges)
    if len(closure_mst) < len(unique_terminals) - 1:
        raise ValueError("terminals are disconnected")

    # Unfolded edges map the rank-ordered endpoint pair to the directed
    # slot from the rank-smaller endpoint — the orientation whose slot
    # cost float-matches the dict version's cost(u, v, w) call — so the
    # final re-MST reads costs without a second row scan.
    unfolded: dict[tuple[int, int], int] = {}

    def record(node: int, parent: int) -> None:
        key = ordered(node, parent)
        if key not in unfolded:
            unfolded[key] = row_slot(key[0], key[1])

    def walk_back(node: int) -> None:
        """Record the shortest-path-tree edges down to a terminal."""
        parent = parent_of[node]
        while parent != -1:
            record(node, parent)
            node = parent
            parent = parent_of[node]

    for s, t, _weight in closure_mst:
        key = s * num_nodes + t if rank[s] < rank[t] else t * num_nodes + s
        _bridge_weight, u, v = bridges[key]
        record(u, v)
        walk_back(u)
        walk_back(v)

    nodes = sorted({n for key in unfolded for n in key}, key=rank.__getitem__)
    tree_edges = kruskal_mst(
        nodes,
        [
            (u, v, slot_costs[slot])
            for (u, v), slot in unfolded.items()
        ],
    )
    tree = edge_subgraph(
        graph,
        {undirected_key(ids[u], ids[v]) for u, v, _ in tree_edges},
    )
    _prune_non_terminal_leaves(tree, set(unique_terminals))
    return tree
