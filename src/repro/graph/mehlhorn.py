"""Mehlhorn's Steiner tree 2-approximation (extension).

The paper's Algorithm 1 (Kou-Markowsky-Berman) runs one Dijkstra per
terminal — `O(|T| (|E| + |V| log |V|))` — which is exactly why ST scales
poorly with group size (Fig 10). Mehlhorn (1988) computes the same
approximation guarantee from a *single* multi-source Dijkstra:

1. one multi-source run assigns every node its nearest terminal
   (a Voronoi partition of the graph) and the distance to it;
2. every edge (u, v) whose endpoints lie in different Voronoi cells
   s = origin(u), t = origin(v) induces a candidate closure edge
   (s, t) of weight d(s,u) + w(u,v) + d(v,t);
3. MST over those candidate edges, unfolded through the recorded
   shortest-path trees, then pruned — as in Algorithm 1.

This is the natural "refinement of our algorithms" the paper's future
work points at: same 2-approximation family, terminal-count-independent
running time. The ablation bench compares it against Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import CostFn, dijkstra_multi_source
from repro.graph.steiner import _prune_non_terminal_leaves
from repro.graph.subgraph import edge_subgraph
from repro.graph.types import undirected_key


def mehlhorn_steiner_tree(
    graph: KnowledgeGraph,
    terminals: Sequence[str],
    cost_fn: CostFn | None = None,
) -> KnowledgeGraph:
    """2-approximate Steiner tree in one multi-source Dijkstra.

    Same contract as :func:`repro.graph.steiner.steiner_tree`: returns a
    tree spanning ``terminals``; raises ``ValueError`` if they span more
    than one connected component, ``KeyError`` on unknown terminals.
    """
    unique_terminals = list(dict.fromkeys(terminals))
    if not unique_terminals:
        return KnowledgeGraph()
    for terminal in unique_terminals:
        if terminal not in graph:
            raise KeyError(f"terminal {terminal!r} not in graph")
    if len(unique_terminals) == 1:
        only = KnowledgeGraph()
        only.add_node(unique_terminals[0])
        return only

    cost = cost_fn or (lambda _u, _v, w: w)
    dist, prev, origin = dijkstra_multi_source(
        graph, unique_terminals, cost_fn=cost_fn
    )

    # Candidate closure edges between Voronoi cells: keep the cheapest
    # bridge per terminal pair.
    bridges: dict[tuple[str, str], tuple[float, str, str]] = {}
    for u in dist:
        for v, stored in graph.neighbors(u).items():
            if v not in dist or u > v:
                continue
            source, target = origin[u], origin[v]
            if source == target:
                continue
            key = undirected_key(source, target)
            weight = dist[u] + cost(u, v, stored) + dist[v]
            current = bridges.get(key)
            if current is None or weight < current[0]:
                bridges[key] = (weight, u, v)

    reachable = {t for t in unique_terminals if t in dist}
    if len(reachable) < len(unique_terminals):
        missing = set(unique_terminals) - reachable
        raise ValueError(f"terminals unreachable: {sorted(missing)}")

    closure_edges = [
        (key[0], key[1], weight)
        for key, (weight, _u, _v) in bridges.items()
    ]
    closure_mst = kruskal_mst(unique_terminals, closure_edges)
    if len(closure_mst) < len(unique_terminals) - 1:
        raise ValueError("terminals are disconnected")

    # Unfold each closure edge: the bridge edge plus both walk-backs to
    # the respective terminals along the multi-source shortest-path tree.
    unfolded: dict[tuple[str, str], float] = {}

    def walk_back(node: str) -> None:
        """Record the shortest-path-tree edges down to a terminal."""
        while node in prev:
            parent = prev[node]
            unfolded[undirected_key(node, parent)] = graph.weight(
                node, parent
            )
            node = parent

    for s, t, _weight in closure_mst:
        _bridge_weight, u, v = bridges[undirected_key(s, t)]
        unfolded[undirected_key(u, v)] = graph.weight(u, v)
        walk_back(u)
        walk_back(v)

    nodes = sorted({n for key in unfolded for n in key})
    tree_edges = kruskal_mst(
        nodes,
        [(u, v, cost(u, v, w)) for (u, v), w in unfolded.items()],
    )
    tree = edge_subgraph(
        graph, {undirected_key(u, v) for u, v, _ in tree_edges}
    )
    _prune_non_terminal_leaves(tree, set(unique_terminals))
    return tree
