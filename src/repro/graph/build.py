"""Building the knowledge-based graph from a rating matrix (§III).

``build_interaction_graph`` constructs ``G_M`` (users, items, weighted
interaction edges); ``extend_with_external`` adds the ``V_A``/``E_A``
knowledge layer produced by :mod:`repro.data.dbpedia`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import item_id, user_id
from repro.graph.weights import InteractionWeights


def build_interaction_graph(
    ratings,
    weights: InteractionWeights | None = None,
) -> KnowledgeGraph:
    """Build ``G_M`` from a :class:`repro.data.ratings.RatingMatrix`.

    Each positive rating ``M[u, i] = (r, t)`` becomes one weighted edge
    ``w_M(u, i) = β1·r + β2·f(t)``.
    """
    if weights is None:
        weights = InteractionWeights.rating_only()
        if ratings.num_ratings:
            weights = InteractionWeights(
                beta_rating=1.0,
                beta_recency=0.0,
                now=ratings.max_timestamp,
            )
    graph = KnowledgeGraph()
    for user in range(ratings.num_users):
        graph.add_node(user_id(user))
    for item in range(ratings.num_items):
        graph.add_node(item_id(item))
    for user, item, rating, timestamp in ratings.iter_ratings():
        graph.add_edge(
            user_id(user),
            item_id(item),
            weights.weight(rating, timestamp),
        )
    return graph


def extend_with_external(
    graph: KnowledgeGraph,
    links: Iterable[tuple[str, str, str]],
    external_weight: float = 0.0,
    names: dict[str, str] | None = None,
) -> KnowledgeGraph:
    """Attach external-knowledge nodes/edges to ``G_M`` in place.

    Parameters
    ----------
    graph:
        The interaction graph ``G_M`` (mutated and returned).
    links:
        ``(node_id, external_id, relation)`` triples; ``node_id`` is a
        user or item already in the graph.
    external_weight:
        ``w_A`` — the paper's experiments use 0 everywhere ("we set
        w_A = 0 [16], [17], [21]").
    names:
        Optional display names for the external entities.
    """
    for node, external, relation in links:
        if node not in graph:
            raise KeyError(f"link endpoint {node!r} is not in the graph")
        graph.add_edge(node, external, external_weight, relation)
    if names:
        for node_id, name in names.items():
            if node_id in graph:
                graph.set_name(node_id, name)
    return graph
