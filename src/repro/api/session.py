"""The :class:`ExplanationSession` service facade.

A session is the long-lived, service-shaped entry point: construct it
once over a :class:`~repro.graph.knowledge_graph.KnowledgeGraph` with
three typed configs, then serve explanation traffic through

- :meth:`ExplanationSession.explain` — one request, one summary;
- :meth:`ExplanationSession.run` — a batch, returning the familiar
  :class:`~repro.core.batch.BatchReport`;
- :meth:`ExplanationSession.stream` — an iterator yielding
  :class:`~repro.core.batch.BatchResult`\\ s as chunks complete instead
  of blocking on the full barrier.

What makes it a *session* rather than a convenience wrapper is resource
ownership. Everything derived from the graph is keyed by the graph's
version counter and built exactly once per version:

- the frozen CSR view (``graph.freeze()``);
- the shared-memory export workers attach to (zero-copy, see
  :mod:`repro.graph.shared`);
- the warm ``ProcessPoolExecutor`` — workers stay up *between* calls,
  keeping their attached graph and per-worker summarizer/closure
  caches, so consecutive batches pay no re-freeze, no re-export and no
  respawn;
- the terminal-closure cache and per-config summarizers on the local
  path.

Mutating the graph between calls bumps its version; the next call
notices, tears all of that down (pool shut down, blocks unlinked,
caches dropped — the same invalidation contract the per-call engines
inherit from :mod:`repro.graph.csr`) and rebuilds exactly once.
:attr:`ExplanationSession.stats` counts freezes / exports / pool starts
/ invalidations so callers (and CI) can assert the reuse actually
happened.

Method routing goes through :mod:`repro.api.registry`: each request
names a registered method ("st", "st-fast", "pcst", "union", or
anything added via ``register_method``) and may override the session's
:class:`EngineConfig` per request. Results are bit-identical to the
legacy ``Summarizer`` / ``BatchSummarizer`` entry points — the session
routes through the same implementations and the same caches.

Batch dispatch is governed by a :class:`repro.serving.SchedulerConfig`:
the default work-stealing scheduler feeds a shared task queue to an
elastic :class:`repro.serving.ElasticWorkerPool` (per-task pulls, grow
under queue pressure / shrink on idle, per-task result streaming over
the compact :mod:`repro.serving.wire` format), while
``SchedulerConfig(mode="chunked")`` keeps the legacy static-chunk
dispatch for spawn-constrained platforms. Either way outputs stay
bit-identical to the serial path; ``stats`` additionally counts steals,
grows, shrinks and the peak queue depth.

Sessions own OS resources (shared-memory blocks, worker processes);
call :meth:`close` or use the session as a context manager when done.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections.abc import Iterable, Iterator
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields

from repro.api.config import CacheConfig, EngineConfig, ParallelConfig
from repro.api.registry import MethodSpec, method_spec
from repro.api.requests import SummaryRequest, as_request
from repro.cache import (
    ClosureStoreConfig,
    SharedClosureStore,
    StoreBackedClosureCache,
)
from repro.core.batch import (
    _PROCESS_FALLBACK_ERRORS,
    _STAT_KEYS,
    BatchReport,
    BatchResult,
    TaskFailure,
    TerminalClosureCache,
    _cache_counters,
)
from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.obs import trace as obs_trace
from repro.obs.config import ObservabilityConfig
from repro.obs.log import configure_logging, get_logger
from repro.obs.registry import exponential_buckets, get_registry
from repro.obs.trace import TraceCollector, Tracer
from repro.serving import pool as serving_pool
from repro.serving.config import (
    ResilienceConfig,
    SchedulerConfig,
    static_chunks,
)
from repro.serving.faults import FaultPlan
from repro.serving.pool import ElasticWorkerPool
from repro.serving.wire import decode_explanation, encode_explanation

#: One resolved request: (request, method spec, merged engine config).
_Resolved = tuple[SummaryRequest, MethodSpec, EngineConfig]


def _stat_line(label: str, values: dict) -> str:
    """The one shared stat-line renderer.

    Every human-readable counter line (CLI batch footer, experiment
    runner, the lines below) goes through this formatter, so label
    alignment and ``key=value`` layout can never drift between
    surfaces.
    """
    body = " ".join(f"{key}={value}" for key, value in values.items())
    return f"  {label:<10} {body}"


@dataclass
class SessionStats:
    """Lifetime counters of one session's resource churn.

    ``freezes`` / ``exports`` / ``pool_starts`` count how often the CSR
    view was compiled, shipped to shared memory, and a worker pool
    spawned; on an unchanged graph each stays at 1 no matter how many
    batches run — that is the warm-session contract the CI smoke
    asserts. ``invalidations`` counts graph-version changes noticed.

    The scheduler counters describe work-stealing dispatch: ``steals``
    is how many tasks were finished by a worker other than their
    nominal round-robin owner (the rebalancing a static schedule would
    have missed), ``grows`` / ``shrinks`` count elastic pool resizes,
    and ``peak_queue_depth`` is the deepest backlog (submitted minus
    finished minus one in-flight task per worker) any run observed.

    The resilience counters describe supervised recovery:
    ``worker_deaths`` is how many unexpectedly dead workers were
    replaced in place, ``task_timeouts`` how many per-task deadlines
    the monitor enforced, ``task_retries`` how many task re-queues
    those incidents cost, and ``local_fallbacks`` how many whole
    batches were demoted to a local run (the blast radius supervision
    exists to avoid — 0 on a healthy process backend).

    The store counters describe the cross-worker closure store (0 with
    the store disabled): ``store_hits`` / ``store_misses`` are lookups
    against the shared tier *summed across the parent and every
    worker*, ``store_evictions`` counts entries displaced under
    capacity pressure, and ``store_bytes`` is the slab's live payload
    footprint at the last sync. Counters accumulate across store
    rebuilds (graph mutations), like every other lifetime counter here.
    """

    freezes: int = 0
    exports: int = 0
    pool_starts: int = 0
    invalidations: int = 0
    runs: int = 0
    tasks: int = 0
    steals: int = 0
    grows: int = 0
    shrinks: int = 0
    peak_queue_depth: int = 0
    worker_deaths: int = 0
    task_retries: int = 0
    task_timeouts: int = 0
    local_fallbacks: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_evictions: int = 0
    store_bytes: int = 0

    def to_dict(self) -> dict:
        """Every counter as a plain dict, in declaration order.

        The one schema all counter consumers read: the line renderers
        below, the server ``stats`` op, and the metrics exposition's
        per-session view all build from this dict, so a new counter
        added to the dataclass surfaces everywhere at once. The key
        set is pinned by a test — extend deliberately.
        """
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
        }

    def scheduler_line(self) -> str | None:
        """One report line of scheduler activity; None when there was none.

        Shared by the CLI and the experiment runner so both surfaces
        print (and gate on) the same counters the same way.
        """
        if not (self.steals or self.grows or self.shrinks):
            return None
        data = self.to_dict()
        return _stat_line(
            "scheduler",
            {
                key: data[key]
                for key in (
                    "steals",
                    "grows",
                    "shrinks",
                    "peak_queue_depth",
                )
            },
        )

    def resilience_line(self) -> str | None:
        """One report line of recovery activity; None when all quiet."""
        if not (
            self.worker_deaths
            or self.task_retries
            or self.task_timeouts
            or self.local_fallbacks
        ):
            return None
        data = self.to_dict()
        return _stat_line(
            "resilience",
            {
                key: data[key]
                for key in (
                    "worker_deaths",
                    "task_retries",
                    "task_timeouts",
                    "local_fallbacks",
                )
            },
        )

    def cache_line(self) -> str | None:
        """One report line of shared-store activity; None when quiet."""
        if not (self.store_hits or self.store_misses):
            return None
        total = self.store_hits + self.store_misses
        return _stat_line(
            "store",
            {
                "hits": (
                    f"{self.store_hits}/{total} "
                    f"({self.store_hits / total:.0%})"
                ),
                "evictions": self.store_evictions,
                "bytes": self.store_bytes,
            },
        )


# ----------------------------------------------------------------------
# Process-pool worker side (chunked scheduler). Module-level so spawn
# can import it; the per-worker state and summarizer memo live in
# repro.serving.pool so the chunked executor workers and the
# work-stealing workers memoize identically.
# ----------------------------------------------------------------------
def _session_worker_init(handle, cache_config: tuple) -> None:
    """Attach the shared graph (+ store); summarizers built on use."""
    serving_pool._init_worker_state(handle, cache_config)


def _session_run_chunk(jobs: list) -> tuple[list, dict[str, int]]:
    """Summarize one chunk of ``(index, attempt, fault, method, config,
    task)`` jobs.

    Returns ``(results, counter_delta)`` with results as
    ``(index, payload, seconds)`` triples — payloads in the compact
    :mod:`repro.serving.wire` format (parent-CSR int arrays instead of
    pickled subgraph objects); chunks run sequentially inside a worker,
    so before/after cache snapshots are race-free.

    ``fault`` is the per-task fault directive (or None): "crash" hard-
    exits the worker mid-chunk — breaking the whole executor, which is
    exactly the failure the supervised parent loop recovers from —
    "hang"/"delay" sleep, "malformed" corrupts the task's payload.
    """
    worker = serving_pool._WORKER
    before = _cache_counters(worker.get("cache"))
    frozen = worker["frozen"]
    tracing = obs_trace.ambient_enabled()
    out = []
    for index, attempt, fault, name, config, task in jobs:
        if fault is not None:
            fault.apply_in_worker()
        summarizer = serving_pool._worker_summarizer(name, config)
        if tracing:
            obs_trace.set_ambient_task(index)
        task_start = time.perf_counter()
        explanation = summarizer.summarize(task)
        seconds = time.perf_counter() - task_start
        encode_start = time.perf_counter()
        payload = encode_explanation(explanation, frozen)
        if tracing:
            obs_trace.record_event(
                "worker.encode",
                time.perf_counter() - encode_start,
                worker=os.getpid(),
            )
            obs_trace.record_event(
                "worker.compute",
                seconds,
                worker=os.getpid(),
                attempt=attempt,
            )
        if fault is not None and fault.kind == "malformed":
            payload = fault.corrupt(payload)
        out.append((index, payload, seconds))
    after = _cache_counters(worker.get("cache"))
    delta = {key: after[key] - before[key] for key in _STAT_KEYS}
    if tracing:
        delta["_spans"] = obs_trace.drain_ambient()
    return out, delta


class ExplanationSession:
    """Long-lived explanation service over one knowledge graph.

    Parameters
    ----------
    graph:
        The (mutable) knowledge graph. The session watches its version
        counter and rebuilds derived state exactly once per mutation.
    engine:
        :class:`EngineConfig` defaults applied to every request (each
        request may override individual fields).
    cache:
        :class:`CacheConfig` for the session-owned closure cache (and
        the per-worker caches under the process backend).
    parallel:
        :class:`ParallelConfig` governing batch dispatch.
    scheduler:
        :class:`repro.serving.SchedulerConfig` governing how a chosen
        backend hands tasks to workers: work-stealing (shared queue,
        elastic pool, per-task streaming — the default) or the legacy
        static chunking.
    default_method:
        Registered method used for requests that don't name one
        (default "st").
    resilience:
        :class:`repro.serving.ResilienceConfig` governing supervised
        recovery on the work-stealing process backend: per-task retry
        budget, per-task deadline, worker-respawn circuit breaker.
    faults:
        Optional :class:`repro.serving.FaultPlan` threaded into worker
        job envelopes — deterministic fault injection for tests and
        chaos drills. None (the default) injects nothing.
    store:
        :class:`repro.cache.ClosureStoreConfig` for the cross-worker
        shared closure store (disabled by default). When enabled, the
        store is created alongside the shared-memory export, attached
        by every pool worker, read through by all closure caches
        (parent and workers), and invalidated with the pool on graph
        mutation.
    obs:
        :class:`repro.obs.ObservabilityConfig` governing telemetry:
        registry metrics (default on), per-request span traces
        (default off; exposed via :meth:`last_trace`,
        ``BatchResult.trace`` and the server ``trace`` op), the
        slow-request log threshold, and JSON-lines structured logging.
    """

    #: Auto-backend thresholds: below either, worker startup + IPC
    #: dominates and the local backends win.
    AUTO_PROCESS_MIN_NODES = 4096
    AUTO_PROCESS_MIN_TASKS = 8

    def __init__(
        self,
        graph: KnowledgeGraph,
        engine: EngineConfig | None = None,
        cache: CacheConfig | None = None,
        parallel: ParallelConfig | None = None,
        scheduler: SchedulerConfig | None = None,
        default_method: str = "st",
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan | None = None,
        store: ClosureStoreConfig | None = None,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        self.graph = graph
        self.engine_config = engine if engine is not None else EngineConfig()
        self.cache_config = cache if cache is not None else CacheConfig()
        self.parallel_config = (
            parallel if parallel is not None else ParallelConfig()
        )
        self.scheduler_config = (
            scheduler if scheduler is not None else SchedulerConfig()
        )
        self.resilience_config = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self.store_config = (
            store if store is not None else ClosureStoreConfig()
        )
        self.obs_config = obs if obs is not None else ObservabilityConfig()
        if self.obs_config.log_json:
            configure_logging(enabled=True, json_lines=True)
        elif self.obs_config.slow_ms > 0 and not get_logger().enabled:
            # A slow-request threshold without an output channel would
            # be silent; arm the plain-text logger.
            configure_logging(enabled=True, json_lines=False)
        self._tracer = Tracer(
            enabled=self.obs_config.trace,
            collector=TraceCollector(self.obs_config.trace_buffer),
            slow_ms=self.obs_config.slow_ms,
            logger=get_logger(),
        )
        #: Single-attribute guard every metrics hook checks first.
        self._metrics_on = self.obs_config.metrics
        registry = get_registry()
        self._m_task_seconds = registry.histogram(
            "repro_task_seconds",
            "Worker-measured per-task compute latency (seconds)",
        )
        self._m_batch_seconds = registry.histogram(
            "repro_batch_seconds",
            "End-to-end run() batch latency (seconds)",
        )
        self._m_batch_size = registry.histogram(
            "repro_batch_size",
            "Tasks per run()/stream() batch",
            buckets=exponential_buckets(start=1.0, factor=2.0, count=12),
        )
        self._m_tasks_total = registry.counter(
            "repro_tasks_total",
            "Tasks served across every session entry point",
        )
        if (
            self.scheduler_config.mode == "chunked"
            and self.resilience_config.task_timeout_seconds > 0
        ):
            # Config-validation-time warning, not a mid-batch surprise:
            # the chunked executor has no per-task leases, so deadlines
            # cannot be enforced there (see the README failure-mode
            # table). Crash supervision still applies per chunk.
            warnings.warn(
                "ResilienceConfig.task_timeout_seconds is ignored by "
                "the chunked scheduler (per-task deadlines need the "
                "work-stealing pool's task leases); use "
                'SchedulerConfig(mode="work-stealing") for deadline '
                "enforcement",
                RuntimeWarning,
                stacklevel=2,
            )
        self._faults = faults
        self.default_method = method_spec(default_method).name
        self.stats = SessionStats()
        self._version: int | None = None
        self._frozen = None
        self._export = None
        self._store: SharedClosureStore | None = None
        #: Last-synced store counters; deltas fold into ``stats`` so
        #: lifetime counters survive store rebuilds (invalidations).
        self._store_seen: dict = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._steal_pool: ElasticWorkerPool | None = None
        self._closure_cache: TerminalClosureCache | None = None
        self._summarizers: dict = {}
        self._closed = False
        # Idle-shrink ticker plumbing: the gate serializes the ticker
        # thread against dispatch starts and pool teardown (the elastic
        # pool itself is not thread-safe); the ticker-shrink counter
        # lets dispatch-delta folding subtract shrinks the ticker
        # already credited (see _absorb_steal_stats).
        self._pool_gate = threading.Lock()
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()
        self._ticker_shrinks = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every owned resource (idempotent).

        Shuts the worker pool down, unlinks the shared-memory blocks
        and drops the caches. The session cannot be used afterwards.
        """
        if self._closed:
            return
        self._teardown_derived()
        self._closed = True

    def release_pool(self) -> None:
        """Drop only the process-backend resources (pool + export).

        The serial-path state (frozen view, closure cache, summarizers)
        survives; the next process-backed run re-exports and respawns.
        Useful when a burst of batch traffic is over but the session
        should keep serving single requests.
        """
        self._stop_ticker()
        with self._pool_gate:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
                self._pool_workers = 0
            if self._steal_pool is not None:
                self._steal_pool.shutdown()
                self._steal_pool = None
            if self._export is not None:
                self._export.close()
                self._export.unlink()
                self._export = None

    # ------------------------------------------------------------------
    # Idle-shrink ticker (bare in-process sessions)
    # ------------------------------------------------------------------
    def _start_ticker(self) -> None:
        """Arm the background idle shrinker for the elastic pool.

        The pool itself deliberately has no timer — its shrinks happen
        at dispatch starts, which a server's reaper complements. A bare
        in-process session has neither between dispatches; this daemon
        ticker honors ``SchedulerConfig.shrink_idle_seconds`` there, so
        a quiet session releases workers back to the OS on its own. It
        only ever runs while no dispatch is open (the pool buffers are
        empty) and under the pool gate, so it never races a dispatch.
        """
        if self._ticker is not None and self._ticker.is_alive():
            return
        interval = max(
            0.05, self.scheduler_config.shrink_idle_seconds / 4
        )
        self._ticker_stop = threading.Event()
        stop = self._ticker_stop

        def tick() -> None:
            while not stop.wait(interval):
                with self._pool_gate:
                    if stop.is_set():
                        return
                    pool = self._steal_pool
                    if (
                        pool is None
                        or pool.broken
                        or pool._buffers  # a dispatch is open
                    ):
                        continue
                    try:
                        retired = pool.maybe_shrink(0)
                    except Exception:
                        return  # pool torn down under us; stand down
                    if retired:
                        self.stats.shrinks += retired
                        self._ticker_shrinks += retired

        self._ticker = threading.Thread(
            target=tick, name="session-idle-shrink", daemon=True
        )
        self._ticker.start()

    def _stop_ticker(self) -> None:
        if self._ticker is not None:
            self._ticker_stop.set()
            self._ticker.join(timeout=5)
            self._ticker = None

    def __enter__(self) -> "ExplanationSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # Versioned derived state
    # ------------------------------------------------------------------
    def _teardown_derived(self) -> None:
        self.release_pool()
        self._release_store()
        self._frozen = None
        self._closure_cache = None
        self._summarizers.clear()

    def _release_store(self) -> None:
        """Destroy the shared closure store (counters folded first).

        Runs on invalidation and close — *not* on ``release_pool()``:
        like the serial-path caches, the store outlives a pool release
        so the next process-backed run re-attaches warm entries.
        """
        if self._store is not None:
            self._sync_store_stats()
            self._store.close()
            self._store.unlink()
            self._store = None
            self._store_seen = {}

    def _refresh(self) -> None:
        """Notice graph mutations; rebuild derived state at most once."""
        if self._closed:
            raise RuntimeError("session is closed")
        version = self.graph.version
        if self._version == version:
            return
        if self._version is not None:
            self.stats.invalidations += 1
        self._teardown_derived()
        self._version = version

    def _frozen_view(self):
        if self._frozen is None:
            self._frozen = self.graph.freeze()
            self.stats.freezes += 1
        return self._frozen

    # ------------------------------------------------------------------
    # Request resolution and summarizer construction
    # ------------------------------------------------------------------
    def _resolve(self, item: SummaryRequest | SummaryTask) -> _Resolved:
        request = as_request(item)
        spec = method_spec(request.method or self.default_method)
        config = self.engine_config.merged(request.overrides)
        return request, spec, config

    def _ensure_closure_cache(self) -> TerminalClosureCache:
        """The session-wide closure cache, created on first need.

        One cache serves every closure-using config: entries key on
        ``(source, cost-signature)``, so λ/config mixes never collide.
        """
        if self._closure_cache is None:
            store = self._ensure_store()
            if store is not None:
                self._closure_cache = StoreBackedClosureCache(
                    self.cache_config.closure_size,
                    partial_reuse=self.cache_config.partial_reuse,
                    store=store,
                )
            else:
                self._closure_cache = TerminalClosureCache(
                    self.cache_config.closure_size,
                    partial_reuse=self.cache_config.partial_reuse,
                )
        return self._closure_cache

    def _ensure_store(self) -> SharedClosureStore | None:
        """Create the shared closure store at most once per version.

        None when disabled. The store is version-scoped like the frozen
        export: graph mutation invalidates it wholesale (entry keys
        embed the version, so stale reuse is impossible anyway, but
        recreating frees the slab for the new working set).
        """
        if not self.store_config.enabled:
            return None
        if self._store is None:
            self._store = SharedClosureStore.create(
                self.store_config, self._mp_context()
            )
            self._store_seen = {}
        return self._store

    def _worker_cache_config(self) -> tuple:
        """The per-worker cache recipe both process pools initialize with.

        ``(closure_size, partial_reuse, store_handle, plugin_modules,
        trace)`` — the store handle carries the shared-memory token
        plus its locks (inheritable through process spawn only, never
        queues), the plugin modules are imported by each worker before
        it serves tasks, and a truthy ``trace`` tail flips the
        worker's ambient span recorder on so compute/encode/store
        spans ride home through the result-pipe stat deltas.
        """
        store = self._ensure_store()
        return (
            self.cache_config.closure_size,
            self.cache_config.partial_reuse,
            store.handle if store is not None else None,
            self.parallel_config.plugin_modules,
            self._tracer.enabled,
        )

    def _sync_store_stats(self) -> None:
        """Fold the live store counters' deltas into ``stats``.

        The store accumulates raw counters across every attached
        process; ``_store_seen`` remembers the last fold so repeated
        syncs (one per run/stream drain) never double-count, and
        lifetime session totals survive store rebuilds.
        """
        if self._store is None:
            return
        try:
            live = self._store.stats()
        except (OSError, ValueError):  # store torn down under us
            return
        seen = self._store_seen
        self.stats.store_hits += live["hits"] - seen.get("hits", 0)
        self.stats.store_misses += live["misses"] - seen.get("misses", 0)
        self.stats.store_evictions += live["evictions"] - seen.get(
            "evictions", 0
        )
        self.stats.store_bytes = live["bytes_used"]
        self._store_seen = live

    def store_stats(self) -> dict | None:
        """Live counters of the shared closure store; None when off."""
        if self._store is None:
            return None
        return self._store.stats()

    def last_trace(self) -> dict | None:
        """The most recent finished request trace; None when quiet.

        Only populated with ``ObservabilityConfig(trace=True)``; the
        collector is a ring buffer of ``trace_buffer`` finished trees
        (see :meth:`repro.obs.TraceBuilder.tree` for the shape).
        """
        return self._tracer.collector.last()

    def get_trace(self, trace_id: str) -> dict | None:
        """Look one finished trace up by id; None when evicted/unknown."""
        return self._tracer.collector.get(trace_id)

    def _summarizer_for(self, spec: MethodSpec, config: EngineConfig):
        key = (spec.name, config)
        summarizer = self._summarizers.get(key)
        if summarizer is None:
            cache = (
                self._ensure_closure_cache()
                if spec.uses_closure_cache
                else None
            )
            summarizer = spec.build(self.graph, config, cache)
            self._summarizers[key] = summarizer
        return summarizer

    def _report_method(self, resolved: list[_Resolved]) -> str:
        names = {spec.legacy_name for _r, spec, _c in resolved}
        if len(names) == 1:
            return next(iter(names))
        if not names:
            return method_spec(self.default_method).legacy_name
        return "mixed"

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def explain(
        self,
        item: SummaryRequest | SummaryTask,
        *,
        trace_id: str | None = None,
        queue_wait_seconds: float | None = None,
    ):
        """Serve one request, returning its explanation.

        ``trace_id`` / ``queue_wait_seconds`` are the server-side
        observability hooks: a caller-stamped trace id correlates this
        request across process boundaries, and an admission-queue wait
        (measured by the server before the graph lock was available)
        is recorded as a ``server.queue_wait`` span under the request.
        """
        request, spec, config = self._resolve(item)
        self._refresh()
        if spec.uses_traversal and config.engine != "dict":
            self._frozen_view()
        self.stats.tasks += 1
        trace = self._tracer.begin(
            "explain", trace_id=trace_id, method=spec.name
        )
        if trace is not None and queue_wait_seconds is not None:
            trace.event("server.queue_wait", queue_wait_seconds)
        try:
            compute_start = time.perf_counter()
            explanation = self._summarizer_for(spec, config).summarize(
                request.task
            )
            seconds = time.perf_counter() - compute_start
            if trace is not None:
                trace.event("compute", seconds)
            if self._metrics_on:
                self._m_task_seconds.observe(seconds)
                self._m_tasks_total.inc()
            return explanation
        finally:
            if trace is not None:
                trace.finish()
            self._sync_store_stats()

    def run(
        self,
        items: Iterable[SummaryRequest | SummaryTask],
        *,
        trace_id: str | None = None,
        queue_wait_seconds: float | None = None,
    ) -> BatchReport:
        """Serve a batch; per-task timings and cache stats in the report.

        With tracing enabled (``ObservabilityConfig(trace=True)``) the
        whole batch becomes one trace tree — freeze/export, pool
        spawn, dispatch, per-task queue-wait/compute/encode spans (the
        worker-recorded ones ride home in the result-pipe stat deltas)
        — retrievable via :meth:`last_trace` and attached per result
        as ``BatchResult.trace``. ``trace_id`` adopts a caller-stamped
        id; ``queue_wait_seconds`` records the server's admission
        wait.
        """
        resolved = [self._resolve(item) for item in items]
        self._refresh()
        backend = self._resolve_backend(resolved)
        self.stats.runs += 1
        self.stats.tasks += len(resolved)
        trace = self._tracer.begin(
            "run",
            trace_id=trace_id,
            tasks=len(resolved),
            backend=backend,
        )
        if trace is not None and queue_wait_seconds is not None:
            trace.event("server.queue_wait", queue_wait_seconds)
        batch_start = time.perf_counter()
        try:
            if backend == "processes":
                try:
                    return self._run_processes(resolved, trace)
                except _PROCESS_FALLBACK_ERRORS as error:
                    self.release_pool()
                    backend = self._demote_to_local(
                        f"process backend unavailable ({error!r})",
                        len(resolved),
                    )
                finally:
                    self._sync_store_stats()
            try:
                return self._run_local(resolved, backend, trace)
            finally:
                self._sync_store_stats()
        finally:
            if self._metrics_on:
                self._m_batch_seconds.observe(
                    time.perf_counter() - batch_start
                )
                self._m_batch_size.observe(len(resolved))
                self._m_tasks_total.inc(len(resolved))
            if trace is not None:
                trace.finish(backend=backend)

    def stream(
        self,
        items: Iterable[SummaryRequest | SummaryTask],
        *,
        trace_id: str | None = None,
        queue_wait_seconds: float | None = None,
    ) -> Iterator[BatchResult]:
        """Serve a batch incrementally.

        Yields :class:`BatchResult`\\ s as they complete — task by task
        under the default work-stealing scheduler (each result leaves
        its worker the moment it is finished) and locally, chunk by
        chunk under the legacy chunked process scheduler — instead of
        blocking on the whole batch. Arrival order follows completion,
        not submission; each result carries its input ``index`` for
        reordering. Setup (request resolution, backend choice, pool
        warm-up, fallback warnings) happens eagerly in this call, and
        the process backend also submits its work eagerly — workers
        compute while the caller consumes. The local backends compute
        lazily, driven by iteration.
        """
        resolved = [self._resolve(item) for item in items]
        self._refresh()
        backend = self._resolve_backend(resolved)
        self.stats.runs += 1
        self.stats.tasks += len(resolved)
        trace = self._tracer.begin(
            "stream",
            trace_id=trace_id,
            tasks=len(resolved),
            backend=backend,
        )
        if trace is not None and queue_wait_seconds is not None:
            trace.event("server.queue_wait", queue_wait_seconds)
        if self._metrics_on:
            self._m_batch_size.observe(len(resolved))
            self._m_tasks_total.inc(len(resolved))
        if backend == "processes":
            try:
                return self._synced_stream(
                    self._stream_processes(resolved, trace), trace
                )
            except _PROCESS_FALLBACK_ERRORS as error:
                self.release_pool()
                backend = self._demote_to_local(
                    f"process backend unavailable ({error!r})",
                    len(resolved),
                )
        return self._synced_stream(
            self._stream_local(resolved, backend, trace), trace
        )

    def _synced_stream(
        self, iterator: Iterator[BatchResult], trace=None
    ):
        """Fold store counters when a stream drains (or is abandoned)."""
        try:
            yield from iterator
        finally:
            if trace is not None:
                trace.finish()
            self._sync_store_stats()

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------
    def _local_fallback(self, num_tasks: int) -> str:
        if self.parallel_config.workers > 1 and num_tasks > 1:
            return "threads"
        return "serial"

    def _demote_to_local(
        self, reason: str, num_tasks: int, *, stacklevel: int = 3
    ) -> str:
        """Warn once, count the demotion, and pick the local backend.

        Every path that abandons the process backend mid-request funnels
        through here so the RuntimeWarning wording, the
        ``SessionStats.local_fallbacks`` counter, and the
        threads-vs-serial choice can never drift apart. Demotion is the
        whole-batch blast radius that worker supervision exists to make
        rare; the counter is what chaos tests pin to 0.
        """
        self.stats.local_fallbacks += 1
        get_logger().emit(
            "local_fallback", reason=reason, tasks=num_tasks
        )
        warnings.warn(
            f"{reason}; falling back to a local run",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        return self._local_fallback(num_tasks)

    def _spec_process_safe(self, spec: MethodSpec) -> bool:
        """Whether spawn workers can rebuild ``spec`` from the registry.

        Import-time built-ins always are; a runtime registration becomes
        process-safe when its declared ``plugin_module`` is listed in
        ``ParallelConfig.plugin_modules`` — workers import that module
        at init, re-creating the registration in their interpreter.
        """
        if spec.process_safe:
            return True
        return (
            spec.plugin_module is not None
            and spec.plugin_module in self.parallel_config.plugin_modules
        )

    def _resolve_backend(self, resolved: list[_Resolved]) -> str:
        choice = self.parallel_config.backend or "auto"
        num_tasks = len(resolved)
        process_safe = all(
            self._spec_process_safe(spec) for _r, spec, _c in resolved
        )
        if choice == "processes":
            if num_tasks == 0:
                return "serial"
            if not process_safe:
                return self._demote_to_local(
                    "batch contains methods registered at runtime "
                    "(not process-safe)",
                    num_tasks,
                    stacklevel=4,
                )
            return choice
        if choice != "auto":
            return choice
        cpus = os.cpu_count() or 1
        if (
            cpus > 1
            and process_safe
            and any(spec.uses_traversal for _r, spec, _c in resolved)
            and self.graph.num_nodes >= self.AUTO_PROCESS_MIN_NODES
            and num_tasks >= self.AUTO_PROCESS_MIN_TASKS
        ):
            return "processes"
        if self.parallel_config.workers > 1 and num_tasks > 1:
            return "threads"
        return "serial"

    # ------------------------------------------------------------------
    # Local (serial / thread-pool) execution
    # ------------------------------------------------------------------
    def _needs_frozen(self, resolved: list[_Resolved]) -> bool:
        return any(
            spec.uses_traversal and config.engine != "dict"
            for _r, spec, config in resolved
        )

    def _one_result(
        self, index: int, item: _Resolved, trace=None
    ) -> BatchResult:
        request, spec, config = item
        summarizer = self._summarizer_for(spec, config)
        task_start = time.perf_counter()
        explanation = summarizer.summarize(request.task)
        seconds = time.perf_counter() - task_start
        if self._metrics_on:
            self._m_task_seconds.observe(seconds)
        payload_trace = None
        if trace is not None:
            trace.event(
                "compute", seconds, parent=trace.task_span(index)
            )
            trace.end_task(index)
            payload_trace = trace.task_payload(index)
        return BatchResult(
            index=index,
            task=request.task,
            explanation=explanation,
            seconds=seconds,
            trace=payload_trace,
        )

    def _local_pool_size(self) -> int:
        if self.parallel_config.workers > 0:
            return self.parallel_config.workers
        return os.cpu_count() or 1

    def _chunk_results(
        self, chunk: list, trace=None
    ) -> list[BatchResult]:
        """One static chunk, computed inline (thread chunked mode)."""
        return [
            self._one_result(index, item, trace)
            for index, item in chunk
        ]

    def _run_local(
        self, resolved: list[_Resolved], backend: str, trace=None
    ) -> BatchReport:
        start = time.perf_counter()
        freeze_seconds = 0.0
        if self._needs_frozen(resolved):
            freeze_start = time.perf_counter()
            self._frozen_view()
            freeze_seconds = time.perf_counter() - freeze_start
        if trace is not None and freeze_seconds > 0:
            trace.event("session.freeze_export", freeze_seconds)
        # Pre-build every distinct summarizer serially so the thread
        # path never races two builds of the same config (results would
        # still be right, but counters could split across caches).
        for _request, spec, config in resolved:
            self._summarizer_for(spec, config)
        before = _cache_counters(self._closure_cache)

        pool_size = self._local_pool_size()
        scheduler = ""
        if backend == "threads" and pool_size > 1 and len(resolved) > 1:
            scheduler = self.scheduler_config.mode
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                if scheduler == "chunked":
                    # Static chunks as indivisible futures; flattening
                    # in submission order restores input order.
                    futures = [
                        pool.submit(self._chunk_results, chunk, trace)
                        for chunk in static_chunks(
                            list(enumerate(resolved)),
                            pool_size,
                            self.parallel_config.chunk_size,
                        )
                    ]
                    results = [
                        result
                        for future in futures
                        for result in future.result()
                    ]
                else:
                    results = list(
                        pool.map(
                            lambda pair: self._one_result(*pair, trace),
                            enumerate(resolved),
                        )
                    )
            workers = pool_size
        else:
            backend = "serial"
            results = [
                self._one_result(index, item, trace)
                for index, item in enumerate(resolved)
            ]
            workers = self.parallel_config.workers
        after = _cache_counters(self._closure_cache)

        return BatchReport(
            method=self._report_method(resolved),
            results=tuple(results),
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=after["hits"] - before["hits"],
            cache_misses=after["misses"] - before["misses"],
            cache_patched=after["patched"] - before["patched"],
            cache_base_hits=after["base_hits"] - before["base_hits"],
            cache_base_misses=after["base_misses"] - before["base_misses"],
            store_hits=after["store_hits"] - before["store_hits"],
            store_misses=after["store_misses"] - before["store_misses"],
            workers=workers,
            parallel=backend,
            scheduler=scheduler,
        )

    def _stream_local(
        self, resolved: list[_Resolved], backend: str, trace=None
    ) -> Iterator[BatchResult]:
        if self._needs_frozen(resolved):
            self._frozen_view()
        for _request, spec, config in resolved:
            self._summarizer_for(spec, config)
        pool_size = self._local_pool_size()
        if backend == "threads" and pool_size > 1 and len(resolved) > 1:
            if self.scheduler_config.mode == "chunked":

                def chunked() -> Iterator[BatchResult]:
                    with ThreadPoolExecutor(max_workers=pool_size) as pool:
                        futures = [
                            pool.submit(
                                self._chunk_results, chunk, trace
                            )
                            for chunk in static_chunks(
                                list(enumerate(resolved)),
                                pool_size,
                                self.parallel_config.chunk_size,
                            )
                        ]
                        for future in as_completed(futures):
                            yield from future.result()

                return chunked()

            def threaded() -> Iterator[BatchResult]:
                with ThreadPoolExecutor(max_workers=pool_size) as pool:
                    futures = [
                        pool.submit(
                            self._one_result, index, item, trace
                        )
                        for index, item in enumerate(resolved)
                    ]
                    for future in as_completed(futures):
                        yield future.result()

            return threaded()

        def serial() -> Iterator[BatchResult]:
            for index, item in enumerate(resolved):
                yield self._one_result(index, item, trace)

        return serial()

    # ------------------------------------------------------------------
    # Warm process-pool execution
    # ------------------------------------------------------------------
    def _mp_context(self):
        import multiprocessing

        start_method = self.parallel_config.mp_start_method or (
            os.environ.get("REPRO_MP_START_METHOD") or None
        )
        return (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )

    def _ensure_export(self) -> float:
        """Freeze + export at most once per graph version.

        Returns the seconds spent freezing/exporting *this* call — 0.0
        on a warm hit, which is exactly what a warm ``BatchReport``
        shows in ``freeze_seconds``.
        """
        freeze_seconds = 0.0
        if self._export is None:
            freeze_start = time.perf_counter()
            frozen = self._frozen_view()
            self._export = frozen.to_shared()
            self.stats.exports += 1
            freeze_seconds = time.perf_counter() - freeze_start
        return freeze_seconds

    def _ensure_chunked_pool(self) -> None:
        """Spawn the legacy chunk executor at most once per version."""
        if self._pool is None:
            workers = max(1, self._local_pool_size())
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=self._mp_context(),
                initializer=_session_worker_init,
                initargs=(
                    self._export.handle,
                    self._worker_cache_config(),
                ),
            )
            self._pool_workers = workers
            self.stats.pool_starts += 1

    def _ensure_steal_pool(self) -> ElasticWorkerPool:
        """Spawn the elastic work-stealing pool at most once per version.

        Dispatches multiplex on one pool (results are routed per
        dispatch id), so overlapping ``stream()``/``run()`` calls and
        abandoned iterators all share it; only a pool that went broken
        (dead worker) is scrapped and respawned here.
        """
        if self._steal_pool is not None and self._steal_pool.broken:
            self._steal_pool = None
        if self._steal_pool is None:
            self._steal_pool = ElasticWorkerPool(
                self._mp_context(),
                self._export.handle,
                self._worker_cache_config(),
                self.scheduler_config,
                max(1, self._local_pool_size()),
                resilience=self.resilience_config,
                faults=self._faults,
            )
            self.stats.pool_starts += 1
        if self.scheduler_config.shrink_idle_seconds > 0:
            self._start_ticker()
        return self._steal_pool

    def _jobs(self, resolved: list[_Resolved]) -> list[tuple]:
        return [
            (index, spec.name, config, request.task)
            for index, (request, spec, config) in enumerate(resolved)
        ]

    def _steal_counters(self, pool: ElasticWorkerPool) -> tuple:
        """Snapshot the pool counters one dispatch folds deltas against."""
        return (
            pool.steals,
            pool.grows,
            pool.shrinks,
            pool.worker_deaths,
            pool.task_retries,
            pool.task_timeouts,
            self._ticker_shrinks,
        )

    def _absorb_steal_stats(
        self, pool: ElasticWorkerPool, before: tuple
    ) -> None:
        """Fold one dispatch's scheduler + resilience counters into stats."""
        steals, grows, shrinks, deaths, retries, timeouts, ticker = before
        self.stats.steals += pool.steals - steals
        self.stats.grows += pool.grows - grows
        # Shrinks the idle ticker performed (and already credited)
        # inside this snapshot window must not be folded again.
        self.stats.shrinks += (pool.shrinks - shrinks) - (
            self._ticker_shrinks - ticker
        )
        self.stats.worker_deaths += pool.worker_deaths - deaths
        self.stats.task_retries += pool.task_retries - retries
        self.stats.task_timeouts += pool.task_timeouts - timeouts
        if pool.peak_queue_depth > self.stats.peak_queue_depth:
            self.stats.peak_queue_depth = pool.peak_queue_depth
        if pool.broken:
            self._steal_pool = None

    def _steal_result(
        self,
        resolved: list[_Resolved],
        frozen,
        index: int,
        payload,
        seconds: float,
        failure: TaskFailure | None,
        trace=None,
    ) -> BatchResult:
        """One drain yield → one BatchResult, demoting bad payloads.

        A payload the wire codec cannot decode (e.g. an injected
        "malformed" frame, or genuine corruption) becomes a typed
        ``TaskFailure(cause="error")`` instead of poisoning the whole
        batch — the same isolation contract worker crashes get.
        """
        task = resolved[index][0].task
        payload_trace = (
            trace.task_payload(index) if trace is not None else None
        )
        if failure is None:
            try:
                explanation = decode_explanation(payload, frozen, task)
            except Exception as error:
                failure = TaskFailure(
                    cause="error",
                    message=(
                        "undecodable result payload "
                        f"({type(error).__name__}: {error})"
                    ),
                )
            else:
                return BatchResult(
                    index=index,
                    task=task,
                    explanation=explanation,
                    seconds=seconds,
                    trace=payload_trace,
                )
        return BatchResult(
            index=index,
            task=task,
            explanation=None,
            seconds=seconds,
            failure=failure,
            trace=payload_trace,
        )

    def _run_processes(
        self, resolved: list[_Resolved], trace=None
    ) -> BatchReport:
        if self.scheduler_config.mode == "work-stealing":
            return self._run_stealing(resolved, trace)
        return self._run_chunked(resolved, trace)

    def _run_stealing(
        self, resolved: list[_Resolved], trace=None
    ) -> BatchReport:
        start = time.perf_counter()
        freeze_seconds = self._ensure_export()
        # Dispatch start under the pool gate: the idle ticker never
        # interleaves its shrink with submission (and the open dispatch
        # it registers keeps the ticker away until the drain is done).
        with self._pool_gate:
            pool_start = time.perf_counter()
            pool = self._ensure_steal_pool()
            pool_seconds = time.perf_counter() - pool_start
            before = self._steal_counters(pool)
            dispatch_start = time.perf_counter()
            drain = pool.dispatch(self._jobs(resolved), trace=trace)
            dispatch_seconds = time.perf_counter() - dispatch_start
        if trace is not None:
            if freeze_seconds > 0:
                trace.event("session.freeze_export", freeze_seconds)
            trace.event("session.pool", pool_seconds, workers=pool.size)
            trace.event(
                "session.dispatch", dispatch_seconds, tasks=len(resolved)
            )
        stats = dict.fromkeys(_STAT_KEYS, 0)
        merged: list[tuple] = []
        try:
            for index, payload, latency, delta, failure in drain:
                merged.append((index, payload, latency, failure))
                for key in _STAT_KEYS:
                    stats[key] += delta[key]
                if trace is not None:
                    trace.merge_worker(delta.get("_spans"))
                    trace.end_task(index)
                if self._metrics_on:
                    self._m_task_seconds.observe(latency)
        finally:
            workers = max(pool.size, 1)
            retried = pool.task_retries - before[4]
            self._absorb_steal_stats(pool, before)
        merged.sort(key=lambda entry: entry[0])
        frozen = self._frozen_view()
        results = tuple(
            self._steal_result(
                resolved, frozen, index, payload, seconds, failure, trace
            )
            for index, payload, seconds, failure in merged
        )
        return BatchReport(
            method=self._report_method(resolved),
            results=results,
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=stats["hits"],
            cache_misses=stats["misses"],
            cache_patched=stats["patched"],
            cache_base_hits=stats["base_hits"],
            cache_base_misses=stats["base_misses"],
            store_hits=stats["store_hits"],
            store_misses=stats["store_misses"],
            workers=workers,
            parallel="processes",
            scheduler="work-stealing",
            retried=retried,
        )

    def _chunk_envelope(self, chunk: list, attempt: int) -> list:
        """Arm one chunk's jobs with their fault directives + attempt."""
        return [
            (
                index,
                attempt,
                (
                    self._faults.for_task(index, attempt)
                    if self._faults
                    else None
                ),
                name,
                config,
                task,
            )
            for index, name, config, task in chunk
        ]

    def _supervised_chunk_results(self, chunks: list) -> Iterator[tuple]:
        """Drive chunks through the executor, surviving worker deaths.

        Yields ``(entries, counter_delta)`` per concluded chunk, with
        entries as ``(index, payload, seconds, failure)``. A worker
        death breaks the whole ``ProcessPoolExecutor`` — every chunk
        still in flight raises ``BrokenProcessPool`` (attribution to
        the chunk that killed the worker is impossible from the
        parent), so each interrupted chunk is charged one retry and
        re-run on a respawned executor; a chunk that exhausts
        ``ResilienceConfig.max_task_retries`` concludes as typed
        ``TaskFailure(cause="crash")`` results while the rest of the
        batch completes. ``max_worker_respawns`` is the same circuit
        breaker the work-stealing pool honors: past it (or at 0, the
        supervision-off legacy contract) ``BrokenProcessPool``
        propagates and the session demotes the batch to its local
        fallback.
        """
        retries = self.resilience_config.max_task_retries
        budget = self.resilience_config.max_worker_respawns
        zero = dict.fromkeys(_STAT_KEYS, 0)
        respawns = 0
        queue = [(chunk, 0) for chunk in chunks]
        while queue:
            self._ensure_chunked_pool()
            futures = {
                self._pool.submit(
                    _session_run_chunk,
                    self._chunk_envelope(chunk, attempt),
                ): (chunk, attempt)
                for chunk, attempt in queue
            }
            queue = []
            broken = False
            for future in as_completed(futures):
                chunk, attempt = futures[future]
                try:
                    results, delta = future.result()
                except BrokenProcessPool:
                    if budget == 0:
                        raise  # supervision off: whole-batch demotion
                    broken = True
                    if attempt < retries:
                        queue.append((chunk, attempt + 1))
                        self.stats.task_retries += len(chunk)
                    else:
                        yield (
                            [
                                (
                                    index,
                                    None,
                                    0.0,
                                    TaskFailure(
                                        cause="crash",
                                        message=(
                                            "worker died while this "
                                            "chunk was in flight; "
                                            "retry budget exhausted"
                                        ),
                                        retries=attempt,
                                    ),
                                )
                                for index, _n, _c, _t in chunk
                            ],
                            zero,
                        )
                else:
                    yield (
                        [(i, p, s, None) for i, p, s in results],
                        delta,
                    )
            if broken:
                self.stats.worker_deaths += 1
                respawns += 1
                if respawns > budget:
                    raise BrokenProcessPool(
                        f"chunked executor died {respawns} time(s); "
                        f"respawn budget ({budget}) exhausted"
                    )
                # Scrap the broken executor; the shared-memory export
                # survives, so the respawn re-attaches, not re-exports.
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None

    def _run_chunked(
        self, resolved: list[_Resolved], trace=None
    ) -> BatchReport:
        start = time.perf_counter()
        freeze_seconds = self._ensure_export()
        pool_start = time.perf_counter()
        self._ensure_chunked_pool()
        if trace is not None:
            if freeze_seconds > 0:
                trace.event("session.freeze_export", freeze_seconds)
            trace.event(
                "session.pool",
                time.perf_counter() - pool_start,
                workers=self._pool_workers,
            )
        chunks = static_chunks(
            self._jobs(resolved),
            self._pool_workers,
            self.parallel_config.chunk_size,
        )
        workers = min(self._pool_workers, len(chunks))
        retried_before = self.stats.task_retries
        stats = dict.fromkeys(_STAT_KEYS, 0)
        merged: list[tuple] = []
        for entries, delta in self._supervised_chunk_results(chunks):
            merged.extend(entries)
            for key in _STAT_KEYS:
                stats[key] += delta[key]
            if trace is not None:
                trace.merge_worker(delta.get("_spans"))
                for index, _payload, _seconds, _failure in entries:
                    trace.end_task(index)
            if self._metrics_on:
                for _index, _payload, seconds, failure in entries:
                    if failure is None:
                        self._m_task_seconds.observe(seconds)
        merged.sort(key=lambda entry: entry[0])
        frozen = self._frozen_view()
        results = tuple(
            self._steal_result(
                resolved, frozen, index, payload, seconds, failure, trace
            )
            for index, payload, seconds, failure in merged
        )
        return BatchReport(
            method=self._report_method(resolved),
            results=results,
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=stats["hits"],
            cache_misses=stats["misses"],
            cache_patched=stats["patched"],
            cache_base_hits=stats["base_hits"],
            cache_base_misses=stats["base_misses"],
            store_hits=stats["store_hits"],
            store_misses=stats["store_misses"],
            workers=workers,
            parallel="processes",
            scheduler="chunked",
            retried=self.stats.task_retries - retried_before,
        )

    def _stream_processes(
        self, resolved: list[_Resolved], trace=None
    ) -> Iterator[BatchResult]:
        """Eagerly set up + submit; return the completion-order iterator."""
        if self.scheduler_config.mode == "work-stealing":
            return self._stream_stealing(resolved, trace)
        self._ensure_export()
        self._ensure_chunked_pool()
        frozen = self._frozen_view()
        chunks = static_chunks(
            self._jobs(resolved),
            self._pool_workers,
            self.parallel_config.chunk_size,
        )
        supervised = self._supervised_chunk_results(chunks)

        def results() -> Iterator[BatchResult]:
            for entries, delta in supervised:
                if trace is not None:
                    trace.merge_worker(delta.get("_spans"))
                for index, payload, seconds, failure in entries:
                    if trace is not None:
                        trace.end_task(index)
                    if self._metrics_on and failure is None:
                        self._m_task_seconds.observe(seconds)
                    yield self._steal_result(
                        resolved,
                        frozen,
                        index,
                        payload,
                        seconds,
                        failure,
                        trace,
                    )

        return results()

    def _stream_stealing(
        self, resolved: list[_Resolved], trace=None
    ) -> Iterator[BatchResult]:
        self._ensure_export()
        frozen = self._frozen_view()
        with self._pool_gate:
            pool = self._ensure_steal_pool()
            before = self._steal_counters(pool)
            drain = pool.dispatch(self._jobs(resolved), trace=trace)

        def results() -> Iterator[BatchResult]:
            try:
                for index, payload, latency, delta, failure in drain:
                    if trace is not None:
                        trace.merge_worker(delta.get("_spans"))
                        trace.end_task(index)
                    if self._metrics_on:
                        self._m_task_seconds.observe(latency)
                    yield self._steal_result(
                        resolved,
                        frozen,
                        index,
                        payload,
                        latency,
                        failure,
                        trace,
                    )
            finally:
                # close() runs the drain's cleanup deterministically; an
                # abandoned consumer forfeits only this batch's
                # remaining results, the pool stays warm.
                drain.close()
                self._absorb_steal_stats(pool, before)

        return results()
