"""The :class:`ExplanationSession` service facade.

A session is the long-lived, service-shaped entry point: construct it
once over a :class:`~repro.graph.knowledge_graph.KnowledgeGraph` with
three typed configs, then serve explanation traffic through

- :meth:`ExplanationSession.explain` — one request, one summary;
- :meth:`ExplanationSession.run` — a batch, returning the familiar
  :class:`~repro.core.batch.BatchReport`;
- :meth:`ExplanationSession.stream` — an iterator yielding
  :class:`~repro.core.batch.BatchResult`\\ s as chunks complete instead
  of blocking on the full barrier.

What makes it a *session* rather than a convenience wrapper is resource
ownership. Everything derived from the graph is keyed by the graph's
version counter and built exactly once per version:

- the frozen CSR view (``graph.freeze()``);
- the shared-memory export workers attach to (zero-copy, see
  :mod:`repro.graph.shared`);
- the warm ``ProcessPoolExecutor`` — workers stay up *between* calls,
  keeping their attached graph and per-worker summarizer/closure
  caches, so consecutive batches pay no re-freeze, no re-export and no
  respawn;
- the terminal-closure cache and per-config summarizers on the local
  path.

Mutating the graph between calls bumps its version; the next call
notices, tears all of that down (pool shut down, blocks unlinked,
caches dropped — the same invalidation contract the per-call engines
inherit from :mod:`repro.graph.csr`) and rebuilds exactly once.
:attr:`ExplanationSession.stats` counts freezes / exports / pool starts
/ invalidations so callers (and CI) can assert the reuse actually
happened.

Method routing goes through :mod:`repro.api.registry`: each request
names a registered method ("st", "st-fast", "pcst", "union", or
anything added via ``register_method``) and may override the session's
:class:`EngineConfig` per request. Results are bit-identical to the
legacy ``Summarizer`` / ``BatchSummarizer`` entry points — the session
routes through the same implementations and the same caches.

Sessions own OS resources (shared-memory blocks, worker processes);
call :meth:`close` or use the session as a context manager when done.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Iterable, Iterator
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass

from repro.api.config import CacheConfig, EngineConfig, ParallelConfig
from repro.api.registry import MethodSpec, method_spec
from repro.api.requests import SummaryRequest, as_request
from repro.core.batch import (
    _PROCESS_FALLBACK_ERRORS,
    _STAT_KEYS,
    BatchReport,
    BatchResult,
    TerminalClosureCache,
    _cache_counters,
)
from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph

#: One resolved request: (request, method spec, merged engine config).
_Resolved = tuple[SummaryRequest, MethodSpec, EngineConfig]


@dataclass
class SessionStats:
    """Lifetime counters of one session's resource churn.

    ``freezes`` / ``exports`` / ``pool_starts`` count how often the CSR
    view was compiled, shipped to shared memory, and a worker pool
    spawned; on an unchanged graph each stays at 1 no matter how many
    batches run — that is the warm-session contract the CI smoke
    asserts. ``invalidations`` counts graph-version changes noticed.
    """

    freezes: int = 0
    exports: int = 0
    pool_starts: int = 0
    invalidations: int = 0
    runs: int = 0
    tasks: int = 0


# ----------------------------------------------------------------------
# Process-pool worker side. Module-level so spawn can import it; workers
# attach the shared view once (initializer) and build summarizers lazily
# per (method, engine-config) as chunks arrive — which is what keeps the
# pool reusable across batches and across mixed-method requests.
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _session_worker_init(handle, cache_config: tuple[int, bool]) -> None:
    """Attach the shared graph; summarizers are built on first use."""
    from repro.graph.shared import attach_knowledge_graph

    _WORKER["graph"] = attach_knowledge_graph(handle)
    _WORKER["cache_config"] = cache_config
    _WORKER["cache"] = None
    _WORKER["summarizers"] = {}


def _worker_summarizer(name: str, config: EngineConfig):
    """Per-worker memo of built summarizers, keyed like the parent's."""
    key = (name, config)
    summarizer = _WORKER["summarizers"].get(key)
    if summarizer is None:
        spec = method_spec(name)
        cache = None
        if spec.uses_closure_cache:
            cache = _WORKER["cache"]
            if cache is None:
                size, partial_reuse = _WORKER["cache_config"]
                cache = TerminalClosureCache(
                    size, partial_reuse=partial_reuse
                )
                _WORKER["cache"] = cache
        summarizer = spec.build(_WORKER["graph"], config, cache)
        _WORKER["summarizers"][key] = summarizer
    return summarizer


def _session_run_chunk(jobs: list) -> tuple[list, dict[str, int]]:
    """Summarize one chunk of ``(index, method, config, task)`` jobs.

    Returns ``(results, counter_delta)`` with results as
    ``(index, explanation, seconds)`` triples; chunks run sequentially
    inside a worker, so before/after cache snapshots are race-free.
    """
    before = _cache_counters(_WORKER.get("cache"))
    out = []
    for index, name, config, task in jobs:
        summarizer = _worker_summarizer(name, config)
        task_start = time.perf_counter()
        explanation = summarizer.summarize(task)
        out.append((index, explanation, time.perf_counter() - task_start))
    after = _cache_counters(_WORKER.get("cache"))
    return out, {key: after[key] - before[key] for key in _STAT_KEYS}


class ExplanationSession:
    """Long-lived explanation service over one knowledge graph.

    Parameters
    ----------
    graph:
        The (mutable) knowledge graph. The session watches its version
        counter and rebuilds derived state exactly once per mutation.
    engine:
        :class:`EngineConfig` defaults applied to every request (each
        request may override individual fields).
    cache:
        :class:`CacheConfig` for the session-owned closure cache (and
        the per-worker caches under the process backend).
    parallel:
        :class:`ParallelConfig` governing batch dispatch.
    default_method:
        Registered method used for requests that don't name one
        (default "st").
    """

    #: Auto-backend thresholds: below either, worker startup + IPC
    #: dominates and the local backends win.
    AUTO_PROCESS_MIN_NODES = 4096
    AUTO_PROCESS_MIN_TASKS = 8

    def __init__(
        self,
        graph: KnowledgeGraph,
        engine: EngineConfig | None = None,
        cache: CacheConfig | None = None,
        parallel: ParallelConfig | None = None,
        default_method: str = "st",
    ) -> None:
        self.graph = graph
        self.engine_config = engine if engine is not None else EngineConfig()
        self.cache_config = cache if cache is not None else CacheConfig()
        self.parallel_config = (
            parallel if parallel is not None else ParallelConfig()
        )
        self.default_method = method_spec(default_method).name
        self.stats = SessionStats()
        self._version: int | None = None
        self._frozen = None
        self._export = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._closure_cache: TerminalClosureCache | None = None
        self._summarizers: dict = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every owned resource (idempotent).

        Shuts the worker pool down, unlinks the shared-memory blocks
        and drops the caches. The session cannot be used afterwards.
        """
        if self._closed:
            return
        self._teardown_derived()
        self._closed = True

    def release_pool(self) -> None:
        """Drop only the process-backend resources (pool + export).

        The serial-path state (frozen view, closure cache, summarizers)
        survives; the next process-backed run re-exports and respawns.
        Useful when a burst of batch traffic is over but the session
        should keep serving single requests.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0
        if self._export is not None:
            self._export.close()
            self._export.unlink()
            self._export = None

    def __enter__(self) -> "ExplanationSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # Versioned derived state
    # ------------------------------------------------------------------
    def _teardown_derived(self) -> None:
        self.release_pool()
        self._frozen = None
        self._closure_cache = None
        self._summarizers.clear()

    def _refresh(self) -> None:
        """Notice graph mutations; rebuild derived state at most once."""
        if self._closed:
            raise RuntimeError("session is closed")
        version = self.graph.version
        if self._version == version:
            return
        if self._version is not None:
            self.stats.invalidations += 1
        self._teardown_derived()
        self._version = version

    def _frozen_view(self):
        if self._frozen is None:
            self._frozen = self.graph.freeze()
            self.stats.freezes += 1
        return self._frozen

    # ------------------------------------------------------------------
    # Request resolution and summarizer construction
    # ------------------------------------------------------------------
    def _resolve(self, item: SummaryRequest | SummaryTask) -> _Resolved:
        request = as_request(item)
        spec = method_spec(request.method or self.default_method)
        config = self.engine_config.merged(request.overrides)
        return request, spec, config

    def _ensure_closure_cache(self) -> TerminalClosureCache:
        """The session-wide closure cache, created on first need.

        One cache serves every closure-using config: entries key on
        ``(source, cost-signature)``, so λ/config mixes never collide.
        """
        if self._closure_cache is None:
            self._closure_cache = TerminalClosureCache(
                self.cache_config.closure_size,
                partial_reuse=self.cache_config.partial_reuse,
            )
        return self._closure_cache

    def _summarizer_for(self, spec: MethodSpec, config: EngineConfig):
        key = (spec.name, config)
        summarizer = self._summarizers.get(key)
        if summarizer is None:
            cache = (
                self._ensure_closure_cache()
                if spec.uses_closure_cache
                else None
            )
            summarizer = spec.build(self.graph, config, cache)
            self._summarizers[key] = summarizer
        return summarizer

    def _report_method(self, resolved: list[_Resolved]) -> str:
        names = {spec.legacy_name for _r, spec, _c in resolved}
        if len(names) == 1:
            return next(iter(names))
        if not names:
            return method_spec(self.default_method).legacy_name
        return "mixed"

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def explain(self, item: SummaryRequest | SummaryTask):
        """Serve one request, returning its explanation."""
        request, spec, config = self._resolve(item)
        self._refresh()
        if spec.uses_traversal and config.engine != "dict":
            self._frozen_view()
        self.stats.tasks += 1
        return self._summarizer_for(spec, config).summarize(request.task)

    def run(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> BatchReport:
        """Serve a batch; per-task timings and cache stats in the report."""
        resolved = [self._resolve(item) for item in items]
        self._refresh()
        backend = self._resolve_backend(resolved)
        self.stats.runs += 1
        self.stats.tasks += len(resolved)
        if backend == "processes":
            try:
                return self._run_processes(resolved)
            except _PROCESS_FALLBACK_ERRORS as error:
                self.release_pool()
                warnings.warn(
                    f"process backend unavailable ({error!r}); falling "
                    "back to a local run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                backend = self._local_fallback(len(resolved))
        return self._run_local(resolved, backend)

    def stream(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> Iterator[BatchResult]:
        """Serve a batch incrementally.

        Yields :class:`BatchResult`\\ s as they complete — chunk by
        chunk under the process backend, task by task locally — instead
        of blocking on the whole batch. Arrival order follows
        completion, not submission; each result carries its input
        ``index`` for reordering. Setup (request resolution, backend
        choice, pool warm-up, fallback warnings) happens eagerly in
        this call, and the process backend also submits its chunks
        eagerly — workers compute while the caller consumes. The local
        backends compute lazily, driven by iteration.
        """
        resolved = [self._resolve(item) for item in items]
        self._refresh()
        backend = self._resolve_backend(resolved)
        self.stats.runs += 1
        self.stats.tasks += len(resolved)
        if backend == "processes":
            try:
                self._ensure_pool()
            except _PROCESS_FALLBACK_ERRORS as error:
                self.release_pool()
                warnings.warn(
                    f"process backend unavailable ({error!r}); falling "
                    "back to a local run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                backend = self._local_fallback(len(resolved))
            else:
                return self._stream_processes(resolved)
        return self._stream_local(resolved, backend)

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------
    def _local_fallback(self, num_tasks: int) -> str:
        if self.parallel_config.workers > 1 and num_tasks > 1:
            return "threads"
        return "serial"

    def _resolve_backend(self, resolved: list[_Resolved]) -> str:
        choice = self.parallel_config.backend or "auto"
        num_tasks = len(resolved)
        process_safe = all(spec.process_safe for _r, spec, _c in resolved)
        if choice == "processes":
            if num_tasks == 0:
                return "serial"
            if not process_safe:
                warnings.warn(
                    "batch contains methods registered at runtime "
                    "(not process-safe); running locally",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return self._local_fallback(num_tasks)
            return choice
        if choice != "auto":
            return choice
        cpus = os.cpu_count() or 1
        if (
            cpus > 1
            and process_safe
            and any(spec.uses_traversal for _r, spec, _c in resolved)
            and self.graph.num_nodes >= self.AUTO_PROCESS_MIN_NODES
            and num_tasks >= self.AUTO_PROCESS_MIN_TASKS
        ):
            return "processes"
        if self.parallel_config.workers > 1 and num_tasks > 1:
            return "threads"
        return "serial"

    # ------------------------------------------------------------------
    # Local (serial / thread-pool) execution
    # ------------------------------------------------------------------
    def _needs_frozen(self, resolved: list[_Resolved]) -> bool:
        return any(
            spec.uses_traversal and config.engine != "dict"
            for _r, spec, config in resolved
        )

    def _one_result(self, index: int, item: _Resolved) -> BatchResult:
        request, spec, config = item
        summarizer = self._summarizer_for(spec, config)
        task_start = time.perf_counter()
        explanation = summarizer.summarize(request.task)
        return BatchResult(
            index=index,
            task=request.task,
            explanation=explanation,
            seconds=time.perf_counter() - task_start,
        )

    def _local_pool_size(self) -> int:
        if self.parallel_config.workers > 0:
            return self.parallel_config.workers
        return os.cpu_count() or 1

    def _run_local(
        self, resolved: list[_Resolved], backend: str
    ) -> BatchReport:
        start = time.perf_counter()
        freeze_seconds = 0.0
        if self._needs_frozen(resolved):
            freeze_start = time.perf_counter()
            self._frozen_view()
            freeze_seconds = time.perf_counter() - freeze_start
        # Pre-build every distinct summarizer serially so the thread
        # path never races two builds of the same config (results would
        # still be right, but counters could split across caches).
        for _request, spec, config in resolved:
            self._summarizer_for(spec, config)
        before = _cache_counters(self._closure_cache)

        pool_size = self._local_pool_size()
        if backend == "threads" and pool_size > 1 and len(resolved) > 1:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                results = list(
                    pool.map(
                        lambda pair: self._one_result(*pair),
                        enumerate(resolved),
                    )
                )
            workers = pool_size
        else:
            backend = "serial"
            results = [
                self._one_result(index, item)
                for index, item in enumerate(resolved)
            ]
            workers = self.parallel_config.workers
        after = _cache_counters(self._closure_cache)

        return BatchReport(
            method=self._report_method(resolved),
            results=tuple(results),
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=after["hits"] - before["hits"],
            cache_misses=after["misses"] - before["misses"],
            cache_patched=after["patched"] - before["patched"],
            cache_base_hits=after["base_hits"] - before["base_hits"],
            cache_base_misses=after["base_misses"] - before["base_misses"],
            workers=workers,
            parallel=backend,
        )

    def _stream_local(
        self, resolved: list[_Resolved], backend: str
    ) -> Iterator[BatchResult]:
        if self._needs_frozen(resolved):
            self._frozen_view()
        for _request, spec, config in resolved:
            self._summarizer_for(spec, config)
        pool_size = self._local_pool_size()
        if backend == "threads" and pool_size > 1 and len(resolved) > 1:

            def threaded() -> Iterator[BatchResult]:
                with ThreadPoolExecutor(max_workers=pool_size) as pool:
                    futures = [
                        pool.submit(self._one_result, index, item)
                        for index, item in enumerate(resolved)
                    ]
                    for future in as_completed(futures):
                        yield future.result()

            return threaded()

        def serial() -> Iterator[BatchResult]:
            for index, item in enumerate(resolved):
                yield self._one_result(index, item)

        return serial()

    # ------------------------------------------------------------------
    # Warm process-pool execution
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> float:
        """Freeze + export + spawn at most once per graph version.

        Returns the seconds spent freezing/exporting *this* call — 0.0
        on a warm hit, which is exactly what a warm ``BatchReport``
        shows in ``freeze_seconds``.
        """
        import multiprocessing

        freeze_seconds = 0.0
        if self._export is None:
            freeze_start = time.perf_counter()
            frozen = self._frozen_view()
            self._export = frozen.to_shared()
            self.stats.exports += 1
            freeze_seconds = time.perf_counter() - freeze_start
        if self._pool is None:
            start_method = self.parallel_config.mp_start_method or (
                os.environ.get("REPRO_MP_START_METHOD") or None
            )
            context = (
                multiprocessing.get_context(start_method)
                if start_method
                else multiprocessing.get_context()
            )
            workers = max(1, self._local_pool_size())
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_session_worker_init,
                initargs=(
                    self._export.handle,
                    (
                        self.cache_config.closure_size,
                        self.cache_config.partial_reuse,
                    ),
                ),
            )
            self._pool_workers = workers
            self.stats.pool_starts += 1
        return freeze_seconds

    def _chunked_jobs(self, resolved: list[_Resolved]) -> list[list]:
        jobs = [
            (index, spec.name, config, request.task)
            for index, (request, spec, config) in enumerate(resolved)
        ]
        chunk = self.parallel_config.chunk_size or max(
            1, -(-len(jobs) // (4 * self._pool_workers))
        )
        return [jobs[i : i + chunk] for i in range(0, len(jobs), chunk)]

    def _run_processes(self, resolved: list[_Resolved]) -> BatchReport:
        start = time.perf_counter()
        freeze_seconds = self._ensure_pool()
        chunks = self._chunked_jobs(resolved)
        futures = [
            self._pool.submit(_session_run_chunk, chunk) for chunk in chunks
        ]
        stats = dict.fromkeys(_STAT_KEYS, 0)
        merged: list[tuple] = []
        for future in futures:
            chunk_results, delta = future.result()
            merged.extend(chunk_results)
            for key in _STAT_KEYS:
                stats[key] += delta[key]
        merged.sort(key=lambda triple: triple[0])
        results = tuple(
            BatchResult(
                index=index,
                task=resolved[index][0].task,
                explanation=explanation,
                seconds=seconds,
            )
            for index, explanation, seconds in merged
        )
        return BatchReport(
            method=self._report_method(resolved),
            results=results,
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=stats["hits"],
            cache_misses=stats["misses"],
            cache_patched=stats["patched"],
            cache_base_hits=stats["base_hits"],
            cache_base_misses=stats["base_misses"],
            workers=min(self._pool_workers, len(chunks)),
            parallel="processes",
        )

    def _stream_processes(
        self, resolved: list[_Resolved]
    ) -> Iterator[BatchResult]:
        chunks = self._chunked_jobs(resolved)
        futures = [
            self._pool.submit(_session_run_chunk, chunk) for chunk in chunks
        ]

        def results() -> Iterator[BatchResult]:
            for future in as_completed(futures):
                chunk_results, _delta = future.result()
                for index, explanation, seconds in chunk_results:
                    yield BatchResult(
                        index=index,
                        task=resolved[index][0].task,
                        explanation=explanation,
                        seconds=seconds,
                    )

        return results()
