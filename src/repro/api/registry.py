"""Method registry: one routing table from request names to summarizers.

Every way of turning a :class:`~repro.core.scenarios.SummaryTask` into a
summary is a registered :class:`MethodSpec`. The session resolves a
request's method name here and asks the spec to build (or reuse) the
right summarizer; user code can extend the table with
:func:`register_method` without touching the session.

Built-in methods (service names, with the legacy facade names accepted
as aliases):

=========  ===========  ==================================================
name       legacy name  implementation
=========  ===========  ==================================================
st         ST           Algorithm 1 (KMB Steiner tree), closure-cached
st-fast    ST-fast      Mehlhorn single-sweep 2-approximation
pcst       PCST         Algorithm 2 (prize-collecting growth)
union      Union        union-of-paths baseline (no traversal)
=========  ===========  ==================================================

Spawn-safety: the built-ins register at import time, so process-pool
workers (which import this module in a fresh interpreter) see the same
table. Methods registered at runtime exist only in the registering
process — they are marked ``process_safe=False`` by default and the
session routes batches containing them to the local backends.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.api.config import EngineConfig
from repro.core.summarizer import Summarizer


def _facade_builder(spec: "MethodSpec"):
    """Default builder: the legacy facade with the spec's method name.

    Routes through :class:`Summarizer` so session results inherit its
    behavior verbatim — including the connected-terminal narrowing
    fallback — which is what keeps the service bit-identical to the
    legacy entry points.
    """

    def build(graph, config: EngineConfig, closure_cache):
        return Summarizer(
            graph,
            method=spec.legacy_name,
            lam=config.lam,
            weight_influence=config.weight_influence,
            prize_policy=config.prize_policy,
            use_edge_weights=config.use_edge_weights,
            strong_pruning=config.strong_pruning,
            engine=config.engine,
            closure_cache=closure_cache,
            canonical=config.canonical,
        )

    return build


@dataclass(frozen=True)
class MethodSpec:
    """One routable summarization method.

    Parameters
    ----------
    name:
        Canonical service name ("st", "pcst", ...). Lookup is
        case-insensitive and also accepts ``aliases``.
    legacy_name:
        The facade-era method label ("ST", "PCST", ...); reports keep
        using it so ``BatchReport.summary()`` output is unchanged.
    builder:
        ``(graph, EngineConfig, closure_cache) -> summarizer`` where the
        result exposes ``summarize(task) -> SubgraphExplanation``. None
        uses the legacy :class:`Summarizer` facade.
    uses_traversal:
        False for methods that never walk the graph (union): the
        session skips freezing for batches made only of these.
    uses_closure_cache:
        True for methods that read the session's terminal-closure cache
        (the KMB ST path).
    process_safe:
        Whether workers can rebuild this method from the registry in a
        fresh interpreter. True only for the import-time built-ins;
        runtime registrations run on the local backends unless they
        declare a ``plugin_module``.
    aliases:
        Extra lookup names (matched case-insensitively).
    plugin_module:
        Importable module path whose import (re-)registers this method
        — the spawn-worker plugin handshake. A session whose
        :class:`~repro.api.config.ParallelConfig.plugin_modules` lists
        this module treats the method as process-safe: pool workers
        import it at init, so the registration exists inside every
        fresh interpreter. The module must register the method at
        import time (idempotently — use ``replace=True``) and its
        builder must be defined at module top level (picklable by
        reference).
    """

    name: str
    legacy_name: str
    builder: Callable | None = None
    uses_traversal: bool = True
    uses_closure_cache: bool = False
    process_safe: bool = False
    aliases: tuple[str, ...] = ()
    plugin_module: str | None = None

    def build(self, graph, config: EngineConfig, closure_cache=None):
        """Construct a summarizer for this method."""
        builder = self.builder or _facade_builder(self)
        return builder(graph, config, closure_cache)


_REGISTRY: dict[str, MethodSpec] = {}
_ALIASES: dict[str, str] = {}


def register_method(spec: MethodSpec, *, replace: bool = False) -> None:
    """Add a method to the routing table.

    Names and aliases are claimed case-insensitively; reusing one
    raises ``ValueError`` unless ``replace=True`` (which also drops the
    previous spec's aliases).
    """
    claims = [spec.name.lower()]
    claims += [alias.lower() for alias in spec.aliases]
    if len(set(claims)) != len(claims):
        raise ValueError(f"method {spec.name!r} repeats an alias")
    conflicts = sorted({claim for claim in claims if claim in _ALIASES})
    if conflicts and not replace:
        raise ValueError(
            f"method name(s) {conflicts} already registered; pass "
            "replace=True to override"
        )
    if spec.name in _REGISTRY:
        # Same-name replacement drops the previous spec's aliases too.
        old = _REGISTRY.pop(spec.name)
        for claim in (old.name.lower(), *(a.lower() for a in old.aliases)):
            if _ALIASES.get(claim) == spec.name:
                del _ALIASES[claim]
    for claim in conflicts:
        # A claim owned by a *different* spec: detach just the claim.
        _ALIASES.pop(claim, None)
    _REGISTRY[spec.name] = spec
    for claim in claims:
        _ALIASES[claim] = spec.name


def unregister_method(name: str) -> None:
    """Remove a runtime-registered method (tests / plugin teardown)."""
    spec = _REGISTRY.pop(_ALIASES.get(name.lower(), name), None)
    if spec is None:
        raise KeyError(f"unknown method {name!r}")
    for claim in (spec.name.lower(), *(a.lower() for a in spec.aliases)):
        if _ALIASES.get(claim) == spec.name:
            del _ALIASES[claim]


def method_spec(name: str) -> MethodSpec:
    """Resolve a request's method name (or alias) to its spec."""
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ValueError(
            f"unknown method {name!r}; expected one of "
            f"{available_methods()}"
        )
    return _REGISTRY[canonical]


def available_methods() -> tuple[str, ...]:
    """Canonical names of every registered method, registration order."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# Built-ins: registered at import time, hence visible in spawned workers.
# ----------------------------------------------------------------------
register_method(
    MethodSpec(
        name="st",
        legacy_name="ST",
        uses_closure_cache=True,
        process_safe=True,
        aliases=("steiner",),
    )
)
register_method(
    MethodSpec(
        name="st-fast",
        legacy_name="ST-fast",
        process_safe=True,
        aliases=("mehlhorn",),
    )
)
register_method(
    MethodSpec(
        name="pcst",
        legacy_name="PCST",
        process_safe=True,
    )
)
register_method(
    MethodSpec(
        name="union",
        legacy_name="Union",
        uses_traversal=False,
        process_safe=True,
    )
)
