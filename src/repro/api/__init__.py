"""Service API: one session facade over the whole summarization stack.

The pieces:

- :class:`ExplanationSession` (:mod:`repro.api.session`) — a long-lived
  service object owning the frozen CSR view, the shared-memory export,
  a warm process pool and the cross-task caches, all keyed by the
  graph's version counter.
- :class:`EngineConfig` / :class:`CacheConfig` / :class:`ParallelConfig`
  (:mod:`repro.api.config`) — the typed configs that replaced the
  legacy constructors' scattered kwargs.
- :class:`SummaryRequest` (:mod:`repro.api.requests`) — one task plus
  method routing and per-request overrides.
- :mod:`repro.api.registry` — the method routing table ("st",
  "st-fast", "pcst", "union"), user-extensible via
  :func:`register_method`.
- :mod:`repro.api.protocol` — the versioned over-the-wire schema
  (``protocol_version`` envelopes, strict decode validation, lossless
  task/request/result/report codecs) shared by the network serving
  tier (:mod:`repro.serving.server` / :mod:`repro.serving.client`),
  the CLI ``batch`` subcommand's JSONL files and
  :meth:`BatchReport.to_dict`.
- :class:`ClosureStoreConfig` (re-exported from :mod:`repro.cache`) —
  the cross-worker shared closure store: terminal closures published
  to a shared-memory slab with popularity-aware (TinyLFU) admission,
  so process-pool workers reuse each other's Dijkstra runs.
- :class:`SchedulerConfig` (re-exported from :mod:`repro.serving`) —
  the dispatch discipline: work-stealing with an elastic worker pool
  and per-task streaming (default), or legacy static chunking.
- :class:`ResilienceConfig` (re-exported from :mod:`repro.serving`) —
  supervised recovery on the process backend: per-task retry budget
  and deadline, worker-respawn circuit breaker, error isolation.
- :class:`TaskFailure` (:mod:`repro.core.batch`) — the typed per-task
  failure (cause ``crash`` / ``timeout`` / ``error``) a
  :class:`BatchResult` carries instead of an explanation when a task
  exhausted its retries.
- :class:`ObservabilityConfig` (re-exported from :mod:`repro.obs`) —
  telemetry: default-on Prometheus-style metrics, default-off
  per-request span tracing (``session.last_trace()``,
  ``BatchResult.trace``, the server ``trace`` op), slow-request
  logging and JSON-lines structured logs.

Minimal use::

    from repro.api import ExplanationSession, SummaryRequest

    with ExplanationSession(graph) as session:
        report = session.run(tasks)               # bare tasks work too
        one = session.explain(
            SummaryRequest(task=task, method="pcst")
        )
        for result in session.stream(tasks):      # as chunks complete
            ...
"""

from repro.api.config import CacheConfig, EngineConfig, ParallelConfig
from repro.api.protocol import PROTOCOL_VERSION, ProtocolError
from repro.api.registry import (
    MethodSpec,
    available_methods,
    method_spec,
    register_method,
    unregister_method,
)
from repro.api.requests import SummaryRequest
from repro.api.session import ExplanationSession, SessionStats
from repro.cache import ClosureStoreConfig
from repro.core.batch import BatchReport, BatchResult, TaskFailure
from repro.obs import ObservabilityConfig
from repro.serving.config import ResilienceConfig, SchedulerConfig

__all__ = [
    "BatchReport",
    "BatchResult",
    "CacheConfig",
    "ClosureStoreConfig",
    "EngineConfig",
    "ExplanationSession",
    "MethodSpec",
    "ObservabilityConfig",
    "PROTOCOL_VERSION",
    "ParallelConfig",
    "ProtocolError",
    "ResilienceConfig",
    "SchedulerConfig",
    "SessionStats",
    "SummaryRequest",
    "TaskFailure",
    "available_methods",
    "method_spec",
    "register_method",
    "unregister_method",
]
