"""Typed request/response envelope for the service API.

A :class:`SummaryRequest` wraps the paper's normal-form
:class:`~repro.core.scenarios.SummaryTask` with the two things a
serving layer adds: *which* registered method should answer it and any
per-request overrides of the session's :class:`EngineConfig` defaults
(e.g. one caller's λ). Responses reuse the batch engine's
:class:`~repro.core.batch.BatchResult` / ``BatchReport`` types — the
streaming iterator yields the former (one per task the moment its
worker finishes it, under the work-stealing scheduler), ``run``
returns the latter; both carry worker-measured per-task latencies
(``BatchResult.latency_ms``, aggregated to p50/p95 on the report).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.core.scenarios import SummaryTask


@dataclass(frozen=True)
class SummaryRequest:
    """One explanation request.

    Parameters
    ----------
    task:
        The normal-form summarization input.
    method:
        A registered method name ("st", "st-fast", "pcst", "union", or
        anything added via :func:`repro.api.registry.register_method`;
        legacy labels like "ST" are accepted as aliases). None uses the
        session's default method.
    overrides:
        Per-request :class:`~repro.api.config.EngineConfig` field
        overrides (e.g. ``{"lam": 100.0}``). Unknown keys fail at
        dispatch time with the valid field names.
    """

    task: SummaryTask
    method: str | None = None
    overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Snapshot into a read-only view: later caller-side mutations of
        # the passed dict can't change the request, and consumers still
        # get the declared Mapping interface (request.overrides["lam"]).
        object.__setattr__(
            self, "overrides", MappingProxyType(dict(self.overrides))
        )


def as_request(item: SummaryRequest | SummaryTask) -> SummaryRequest:
    """Coerce bare tasks to requests (session convenience)."""
    if isinstance(item, SummaryRequest):
        return item
    if isinstance(item, SummaryTask):
        return SummaryRequest(task=item)
    raise TypeError(
        f"expected SummaryRequest or SummaryTask, got {type(item).__name__}"
    )
