"""Versioned over-the-wire codecs for the service API.

Before the network tier existed, every surface serialized ad hoc:
``repro.core.batch`` had its own ``task_to_json``, reports printed but
never round-tripped, and explanations only traveled as pickles or the
worker-pipe wire format (:mod:`repro.serving.wire`), which needs a
shared frozen view on both ends. A TCP server and a client that share
nothing but bytes need one canonical, versioned schema — this module
is that schema, and the server (:mod:`repro.serving.server`), the
client (:mod:`repro.serving.client`), the CLI ``batch`` subcommand's
JSONL loader and the legacy ``task_to_json``/``task_from_json`` names
(now thin deprecated wrappers) all route through it.

Every payload is a plain-JSON-compatible dict. Top-level frames are
*envelopes* — ``{"protocol_version": 1, "kind": "...", ...body}`` —
so both peers can reject traffic from a future protocol before
touching the body. Decoding is strict: wrong types, missing fields and
unknown enum values raise :class:`ProtocolError` with a stable
machine-readable ``code`` that the server maps onto typed error frames
(see :data:`ERROR_CODES`).

Codecs come in to/from pairs and are lossless:

- :func:`task_to_json` / :func:`task_from_json` — the canonical
  :class:`~repro.core.scenarios.SummaryTask` schema (moved here from
  ``repro.core.batch``; the old names still work but warn).
- :func:`request_to_json` / :func:`request_from_json` — a
  :class:`~repro.api.requests.SummaryRequest` envelope: task + method
  routing + per-request :class:`~repro.api.config.EngineConfig`
  overrides (``prize_policy`` travels as its enum value).
- :func:`explanation_to_json` / :func:`explanation_from_json` — a
  :class:`~repro.core.explanation.SubgraphExplanation` as positional
  node/edge lists in insertion order, so the decoded subgraph is
  bit-identical to the original (same node order, same per-row
  neighbor order, same name/relation tables — the same contract
  :mod:`repro.serving.wire` pins, without needing a frozen view).
- :func:`result_to_json` / :func:`result_from_json` — one
  :class:`~repro.core.batch.BatchResult`, self-contained (carries its
  task) so streamed frames need no out-of-band context.
- :func:`report_to_json` / :func:`report_from_json` — a whole
  :class:`~repro.core.batch.BatchReport` including the scheduler field
  and every cache counter; ``latency_p50_ms`` / ``latency_p95_ms`` /
  ``throughput`` are included for artifact consumers but re-derived on
  decode (they are properties of the results). ``BatchReport.to_dict``
  / ``from_dict`` delegate here, so server responses and bench
  artifacts share one schema.

Floats survive exactly: ``json`` emits ``repr``-shortest forms that
parse back bit-equal, which is what lets the server promise summaries
bit-identical to an in-process session.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping

from repro.api.config import EngineConfig
from repro.api.requests import SummaryRequest
from repro.core.batch import (
    FAILURE_CAUSES,
    BatchReport,
    BatchResult,
    TaskFailure,
)
from repro.core.explanation import SubgraphExplanation
from repro.core.pcst_summary import PrizePolicy
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path

#: The protocol generation this module encodes/decodes. Bump on any
#: incompatible schema change; peers reject mismatches up front.
PROTOCOL_VERSION = 1

#: Stable machine-readable error codes used in ``error`` frames.
ERROR_CODES = (
    "bad-frame",        # payload not decodable as an envelope at all
    "unknown-version",  # envelope protocol_version != PROTOCOL_VERSION
    "frame-too-large",  # declared frame length exceeds the peer's bound
    "bad-request",      # envelope fine, body malformed for its kind
    "unknown-graph",    # request names a graph the server doesn't host
    "overloaded",       # admission control rejected the request
    "task-error",       # the summarization itself raised
    "deadline-exceeded",  # the client's deadline expired before the work ran
    "shutting-down",    # the server is draining; retry elsewhere/later
    "too-many-connections",  # the per-server connection bound is full
    "internal",         # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A frame that violates the protocol schema.

    ``code`` is one of :data:`ERROR_CODES`; the server echoes it in the
    typed error frame so clients can branch without string-matching
    messages. ``extra`` keyword hints (e.g. ``retry_after_ms`` on
    ``overloaded``) travel into the frame via :func:`error_frame`.
    """

    def __init__(self, code: str, message: str, **extra) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.extra = extra


def _expect(data, key: str, kind, what: str):
    """Fetch ``data[key]`` requiring type ``kind``; ProtocolError else."""
    if not isinstance(data, dict):
        raise ProtocolError(
            "bad-request", f"{what} must be an object, got {type(data).__name__}"
        )
    if key not in data:
        raise ProtocolError("bad-request", f"{what} is missing {key!r}")
    value = data[key]
    # bool is an int subclass; a numeric field must still reject True.
    if not isinstance(value, kind) or (
        (kind is int or isinstance(kind, tuple))
        and isinstance(value, bool)
    ):
        names = (
            "/".join(k.__name__ for k in kind)
            if isinstance(kind, tuple)
            else kind.__name__
        )
        raise ProtocolError(
            "bad-request",
            f"{what}[{key!r}] must be {names}, "
            f"got {type(value).__name__}",
        )
    return value


def _string_list(data, key: str, what: str) -> list[str]:
    values = _expect(data, key, list, what)
    for value in values:
        if not isinstance(value, str):
            raise ProtocolError(
                "bad-request",
                f"{what}[{key!r}] must contain only strings",
            )
    return values


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def envelope(kind: str, body: dict | None = None) -> dict:
    """Wrap a body in a versioned frame envelope."""
    frame = {"protocol_version": PROTOCOL_VERSION, "kind": kind}
    if body:
        frame.update(body)
    return frame


def open_envelope(data) -> tuple[str, dict]:
    """Strictly validate an inbound envelope; returns ``(kind, frame)``.

    The version check comes first so a peer speaking a future protocol
    gets ``unknown-version`` even if the rest of its frame is alien.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            "bad-frame",
            f"frame must be an object, got {type(data).__name__}",
        )
    version = data.get("protocol_version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unknown-version",
            f"unsupported protocol_version {version!r}; "
            f"this peer speaks {PROTOCOL_VERSION}",
        )
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("bad-request", "envelope is missing 'kind'")
    return kind, data


def error_frame(code: str, message: str, **extra) -> dict:
    """A typed error response frame.

    ``extra`` carries optional machine-readable hints alongside the
    code — e.g. ``retry_after_ms`` on ``overloaded`` frames, which
    backoff-aware clients honor as a floor on their next attempt.
    Unknown hints are ignored by older clients (they only read
    ``code``/``message``), so adding one is not a version bump.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return envelope("error", {"code": code, "message": message, **extra})


# ----------------------------------------------------------------------
# SummaryTask
# ----------------------------------------------------------------------
def _path_to_json(path: Path):
    """One explanation path: a bare node list when every non-node field
    is derivable (the historical JSONL form), a small object otherwise —
    recommender-emitted paths carry a ``score`` that participates in
    task equality, so the codec must not drop it."""
    if (
        path.user == path.nodes[0]
        and path.item == path.nodes[-1]
        and path.score == 0.0
    ):
        return list(path.nodes)
    data: dict = {"nodes": list(path.nodes)}
    if path.user != path.nodes[0]:
        data["user"] = path.user
    if path.item != path.nodes[-1]:
        data["item"] = path.item
    if path.score != 0.0:
        data["score"] = path.score
    return data


def _path_from_json(entry) -> Path:
    if isinstance(entry, list):
        return Path(nodes=tuple(entry))
    if not isinstance(entry, dict):
        raise ProtocolError(
            "bad-request",
            "task path entries must be node lists or path objects",
        )
    nodes = _string_list(entry, "nodes", "path")
    score = entry.get("score", 0.0)
    if isinstance(score, bool) or not isinstance(score, (int, float)):
        raise ProtocolError("bad-request", "path['score'] must be a number")
    user = entry.get("user", "")
    item = entry.get("item", "")
    if not isinstance(user, str) or not isinstance(item, str):
        raise ProtocolError(
            "bad-request", "path['user']/['item'] must be strings"
        )
    return Path(
        nodes=tuple(nodes), user=user, item=item, score=float(score)
    )


def task_to_json(task: SummaryTask) -> dict:
    """Plain-JSON form of a task (inverse of :func:`task_from_json`)."""
    return {
        "scenario": task.scenario.value,
        "terminals": list(task.terminals),
        "paths": [_path_to_json(p) for p in task.paths],
        "anchors": list(task.anchors),
        "focus": list(task.focus),
        "k": task.k,
    }


def task_from_json(data: dict) -> SummaryTask:
    """Build a task from its JSON form; :class:`ProtocolError` on junk."""
    scenario_value = _expect(data, "scenario", str, "task")
    try:
        scenario = Scenario(scenario_value)
    except ValueError as error:
        raise ProtocolError(
            "bad-request", f"unknown scenario {scenario_value!r}"
        ) from error
    paths = data.get("paths", [])
    if not isinstance(paths, list):
        raise ProtocolError(
            "bad-request", "task['paths'] must be a list"
        )
    k = data.get("k", 0)
    if not isinstance(k, int) or isinstance(k, bool):
        raise ProtocolError("bad-request", "task['k'] must be an int")
    try:
        return SummaryTask(
            scenario=scenario,
            terminals=tuple(_string_list(data, "terminals", "task")),
            paths=tuple(_path_from_json(entry) for entry in paths),
            anchors=tuple(data.get("anchors", [])),
            focus=tuple(data.get("focus", [])),
            k=k,
        )
    except ValueError as error:  # SummaryTask/Path invariants
        raise ProtocolError("bad-request", str(error)) from error


# ----------------------------------------------------------------------
# SummaryRequest
# ----------------------------------------------------------------------
def request_to_json(request: SummaryRequest) -> dict:
    """Plain-JSON form of one request envelope."""
    overrides = {
        key: value.value if isinstance(value, PrizePolicy) else value
        for key, value in request.overrides.items()
    }
    data: dict = {"task": task_to_json(request.task)}
    if request.method is not None:
        data["method"] = request.method
    if overrides:
        data["overrides"] = overrides
    return data


def request_from_json(data: dict) -> SummaryRequest:
    """Build a request from its JSON form, coercing enum overrides."""
    task = task_from_json(_expect(data, "task", dict, "request"))
    method = data.get("method")
    if method is not None and not isinstance(method, str):
        raise ProtocolError("bad-request", "request['method'] must be a string")
    overrides = data.get("overrides", {})
    if not isinstance(overrides, Mapping):
        raise ProtocolError(
            "bad-request", "request['overrides'] must be an object"
        )
    overrides = dict(overrides)
    if "prize_policy" in overrides and not isinstance(
        overrides["prize_policy"], PrizePolicy
    ):
        try:
            overrides["prize_policy"] = PrizePolicy(
                overrides["prize_policy"]
            )
        except ValueError as error:
            raise ProtocolError(
                "bad-request",
                f"unknown prize_policy {overrides['prize_policy']!r}",
            ) from error
    valid = {f for f in EngineConfig.__dataclass_fields__}
    unknown = set(overrides) - valid
    if unknown:
        raise ProtocolError(
            "bad-request",
            f"unknown engine override(s) {sorted(unknown)}; "
            f"valid fields: {sorted(valid)}",
        )
    return SummaryRequest(task=task, method=method, overrides=overrides)


# ----------------------------------------------------------------------
# SubgraphExplanation
# ----------------------------------------------------------------------
def explanation_to_json(explanation: SubgraphExplanation) -> dict:
    """Positional-list form of a summary (lossless, order-preserving).

    Node ids are stored once in insertion order; adjacency rows,
    display names and relations reference them by position, with
    relation strings deduplicated through a small vocabulary — the same
    layout :mod:`repro.serving.wire` uses, in JSON-native lists and
    with string ids instead of parent-CSR slots (the receiving peer
    has no frozen view).
    """
    subgraph = explanation.subgraph
    positions = {node: i for i, node in enumerate(subgraph.nodes())}
    rows = [
        [[positions[neighbor], weight] for neighbor, weight in row.items()]
        for row in (subgraph.neighbors(node) for node in subgraph.nodes())
    ]
    vocab: dict[str, int] = {}
    relations = [
        [positions[a], positions[b], vocab.setdefault(rel, len(vocab))]
        for (a, b), rel in subgraph._relations.items()
    ]
    return {
        "nodes": list(positions),
        "rows": rows,
        "names": [
            [positions[node], name]
            for node, name in subgraph._names.items()
        ],
        "relations": relations,
        "relation_vocab": list(vocab),
        "num_edges": subgraph.num_edges,
        "version": subgraph.version,
        "method": explanation.method,
        "params": dict(explanation.params),
    }


def explanation_from_json(data: dict, task: SummaryTask) -> SubgraphExplanation:
    """Rehydrate a summary; bit-identical iteration orders.

    The adjacency dict is rebuilt row by row in the encoded order —
    same node insertion order, same neighbor order inside every row,
    same name/relation table order as the encoder saw.
    """
    nodes = _string_list(data, "nodes", "explanation")
    rows = _expect(data, "rows", list, "explanation")
    if len(rows) != len(nodes):
        raise ProtocolError(
            "bad-request", "explanation rows do not match its nodes"
        )
    try:
        adjacency = {
            node: {nodes[pos]: weight for pos, weight in row}
            for node, row in zip(nodes, rows)
        }
        names = {nodes[pos]: name for pos, name in data.get("names", [])}
        vocab = data.get("relation_vocab", [])
        relations = {
            (nodes[pa], nodes[pb]): vocab[r]
            for pa, pb, r in data.get("relations", [])
        }
    except (IndexError, TypeError, ValueError) as error:
        raise ProtocolError(
            "bad-request", f"malformed explanation body ({error})"
        ) from error
    subgraph = KnowledgeGraph()
    subgraph._adjacency = adjacency
    subgraph._names = names
    subgraph._relations = relations
    subgraph._num_edges = _expect(data, "num_edges", int, "explanation")
    subgraph._version = _expect(data, "version", int, "explanation")
    return SubgraphExplanation(
        subgraph=subgraph,
        task=task,
        method=_expect(data, "method", str, "explanation"),
        params=dict(data.get("params", {})),
    )


# ----------------------------------------------------------------------
# Whole-graph state (durability snapshots)
# ----------------------------------------------------------------------
def graph_state_to_json(graph: KnowledgeGraph) -> dict:
    """Positional-list form of a *whole* mutable graph, order-preserving.

    The durability layer (:mod:`repro.serving.journal`) snapshots hosted
    graphs with this codec rather than :func:`repro.graph.io.graph_to_dict`
    because the latter sorts nodes and edges for diff-friendly files —
    a graph rebuilt from it has a different insertion order, so its
    frozen CSR arrays (and every downstream tie-break) differ from the
    pre-snapshot live graph. This codec keeps the same positional
    layout as :func:`explanation_to_json` and additionally carries the
    mutation ``version`` counter, so a recovered graph is bit-identical:
    same node order, same per-row neighbor order, same name/relation
    tables, same version.
    """
    positions = {node: i for i, node in enumerate(graph.nodes())}
    rows = [
        [[positions[neighbor], weight] for neighbor, weight in row.items()]
        for row in (graph.neighbors(node) for node in graph.nodes())
    ]
    vocab: dict[str, int] = {}
    relations = [
        [positions[a], positions[b], vocab.setdefault(rel, len(vocab))]
        for (a, b), rel in graph._relations.items()
    ]
    return {
        "nodes": list(positions),
        "rows": rows,
        "names": [
            [positions[node], name] for node, name in graph._names.items()
        ],
        "relations": relations,
        "relation_vocab": list(vocab),
        "num_edges": graph.num_edges,
        "version": graph.version,
    }


def graph_state_from_json(data: dict) -> KnowledgeGraph:
    """Rehydrate a snapshot; bit-identical iteration orders and version."""
    nodes = _string_list(data, "nodes", "graph-state")
    rows = _expect(data, "rows", list, "graph-state")
    if len(rows) != len(nodes):
        raise ProtocolError(
            "bad-request", "graph-state rows do not match its nodes"
        )
    try:
        adjacency = {
            node: {nodes[pos]: weight for pos, weight in row}
            for node, row in zip(nodes, rows)
        }
        names = {nodes[pos]: name for pos, name in data.get("names", [])}
        vocab = data.get("relation_vocab", [])
        relations = {
            (nodes[pa], nodes[pb]): vocab[r]
            for pa, pb, r in data.get("relations", [])
        }
    except (IndexError, TypeError, ValueError) as error:
        raise ProtocolError(
            "bad-request", f"malformed graph-state body ({error})"
        ) from error
    graph = KnowledgeGraph()
    graph._adjacency = adjacency
    graph._names = names
    graph._relations = relations
    graph._num_edges = _expect(data, "num_edges", int, "graph-state")
    graph._version = _expect(data, "version", int, "graph-state")
    return graph


# ----------------------------------------------------------------------
# BatchResult / BatchReport
# ----------------------------------------------------------------------
def result_to_json(result: BatchResult) -> dict:
    """One streamed result frame body — self-contained (task included).

    A failed result (typed :class:`~repro.core.batch.TaskFailure`
    instead of an explanation) travels as a ``failure`` object in
    place of the ``explanation`` key, so a streaming client still
    receives exactly one frame per submitted task and can branch on
    which key is present.

    ``trace`` (the task's span list, present only when the serving
    session traces) is an *optional* field — absent means not traced —
    so it rides inside ``protocol_version: 1`` like ``deadline_ms``
    and ``failure`` before it.
    """
    data = {
        "index": result.index,
        "seconds": result.seconds,
        "task": task_to_json(result.task),
    }
    if result.trace is not None:
        data["trace"] = result.trace
    if result.failure is not None:
        data["failure"] = {
            "cause": result.failure.cause,
            "message": result.failure.message,
            "retries": result.failure.retries,
        }
    else:
        data["explanation"] = explanation_to_json(result.explanation)
    return data


def result_from_json(data: dict) -> BatchResult:
    """Rebuild one result; the explanation reuses the decoded task."""
    task = task_from_json(_expect(data, "task", dict, "result"))
    seconds = _expect(data, "seconds", (int, float), "result")
    index = _expect(data, "index", int, "result")
    trace = data.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ProtocolError(
            "bad-request", "result 'trace' must be an object when present"
        )
    if "failure" in data:
        body = _expect(data, "failure", dict, "result")
        cause = _expect(body, "cause", str, "failure")
        if cause not in FAILURE_CAUSES:
            raise ProtocolError(
                "bad-request",
                f"unknown failure cause {cause!r}; expected one of "
                f"{FAILURE_CAUSES}",
            )
        return BatchResult(
            index=index,
            task=task,
            explanation=None,
            seconds=float(seconds),
            failure=TaskFailure(
                cause=cause,
                message=_expect(body, "message", str, "failure"),
                retries=_expect(body, "retries", int, "failure"),
            ),
            trace=trace,
        )
    return BatchResult(
        index=index,
        task=task,
        explanation=explanation_from_json(
            _expect(data, "explanation", dict, "result"), task
        ),
        seconds=float(seconds),
        trace=trace,
    )


#: BatchReport scalar fields carried verbatim through the codec.
_REPORT_FIELDS = (
    ("method", str),
    ("freeze_seconds", (int, float)),
    ("total_seconds", (int, float)),
    ("cache_hits", int),
    ("cache_misses", int),
    ("cache_patched", int),
    ("cache_base_hits", int),
    ("cache_base_misses", int),
    ("workers", int),
    ("parallel", str),
    ("scheduler", str),
)


def report_to_json(report: BatchReport) -> dict:
    """Whole-batch report, lossless (see :meth:`BatchReport.to_dict`).

    The latency percentiles and throughput are *derived* properties of
    the results; they are emitted so artifacts (``BENCH_server.json``)
    and log scrapers can read them without re-deriving, and are
    recomputed — not trusted — on decode.
    """
    data = {name: getattr(report, name) for name, _kind in _REPORT_FIELDS}
    data["results"] = [result_to_json(result) for result in report.results]
    data["retried"] = report.retried
    data["store_hits"] = report.store_hits
    data["store_misses"] = report.store_misses
    data["failed"] = report.failed  # derived; recomputed on decode
    data["latency_p50_ms"] = report.latency_p50_ms
    data["latency_p95_ms"] = report.latency_p95_ms
    data["throughput"] = report.throughput
    return data


def report_from_json(data: dict) -> BatchReport:
    """Rebuild a report from :func:`report_to_json` output."""
    results = _expect(data, "results", list, "report")
    kwargs = {}
    for name, kind in _REPORT_FIELDS:
        value = _expect(data, name, kind, "report")
        kwargs[name] = float(value) if kind == (int, float) else value
    # Optional on decode: reports written before the resilience layer
    # (retried) or the shared closure store (store_*) existed — old
    # BENCH artifacts — simply lack these fields.
    for name in ("retried", "store_hits", "store_misses"):
        value = data.get(name, 0)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "bad-request", f"report[{name!r}] must be an int"
            )
        kwargs[name] = value
    return BatchReport(
        results=tuple(result_from_json(result) for result in results),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Deprecated aliases (the pre-protocol names in repro.core.batch call
# through these shims; direct importers get a pointer here).
# ----------------------------------------------------------------------
def _warn_legacy(name: str) -> None:
    warnings.warn(
        f"repro.core.batch.{name} is deprecated; use "
        f"repro.api.protocol.{name} (the versioned protocol module) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
