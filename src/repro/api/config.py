"""Typed configuration objects for the service API.

The legacy entry points (:class:`repro.core.summarizer.Summarizer`,
:class:`repro.core.batch.BatchSummarizer`) each grew their own copy of
the ``engine=`` / ``canonical=`` / ``partial_reuse=`` / ``parallel=``
knob sprawl. The session facade replaces that with three small frozen
dataclasses, grouped by what they govern:

- :class:`EngineConfig` — *how one task is summarized*: traversal
  engine, canonical-SPT tie-breaking, and the Eq. (1) weighting and
  PCST knobs. Any field can be overridden per request through
  :class:`repro.api.requests.SummaryRequest`.
- :class:`CacheConfig` — *what the session memoizes across tasks*: the
  terminal-closure LRU capacity and λ-aware partial reuse.
- :class:`ParallelConfig` — *which backend runs a batch*: serial,
  threads or processes, worker count, chunking, and the
  multiprocessing start method.

*How* a chosen backend hands tasks to workers is the scheduler's
business — see :class:`repro.serving.SchedulerConfig` (work-stealing
with an elastic pool vs. legacy static chunking), passed to the
session as its fourth config.

All of these validate eagerly in ``__post_init__`` so a typo fails at
session construction, not mid-batch, with the same messages the legacy
constructors raised.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.core.pcst_summary import PrizePolicy
from repro.core.summarizer import ENGINES

#: Dispatch backends; ``None``/"auto" picks per run (see ParallelConfig).
PARALLEL_BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class EngineConfig:
    """Per-task summarization defaults: engine, determinism, weighting.

    Parameters
    ----------
    engine:
        Traversal backend for the graph-algorithm methods: "frozen"
        (CSR fast path, default; "csr" is an alias) or "dict" (the
        original adjacency walk, the parity oracle).
    canonical:
        Canonical-SPT tie-breaking for ST closure paths (default on;
        required for λ-aware partial reuse to stay bit-identical).
    lam, weight_influence:
        Eq. (1) λ and the cost-transform ρ for the ST methods.
    prize_policy, use_edge_weights, strong_pruning:
        PCST knobs (ignored by the other methods).
    """

    engine: str = "frozen"
    canonical: bool = True
    lam: float = 1.0
    weight_influence: float = 0.7
    prize_policy: PrizePolicy = PrizePolicy.BINARY
    use_edge_weights: bool = False
    strong_pruning: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected {ENGINES}"
            )

    def merged(self, overrides) -> "EngineConfig":
        """This config with per-request overrides applied.

        Unknown keys raise ``ValueError`` naming the valid fields, so a
        misspelled override fails loudly instead of being ignored.
        """
        if not overrides:
            return self
        mapping = dict(overrides)
        valid = {f.name for f in fields(self)}
        unknown = set(mapping) - valid
        if unknown:
            raise ValueError(
                f"unknown engine override(s) {sorted(unknown)}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **mapping)


@dataclass(frozen=True)
class CacheConfig:
    """Cross-task memoization owned by the session.

    Parameters
    ----------
    closure_size:
        LRU capacity of the shared terminal-closure cache (and of each
        worker's own cache under the process backend).
    partial_reuse:
        λ-aware partial closure reuse (ST only): derive boosted
        closures from memoized base-cost runs patched with each task's
        boosted edges. Default on — canonical-SPT reconstruction makes
        derived closures bit-identical to cold runs. Turn off together
        with ``EngineConfig.canonical=False`` when heap-order
        predecessor chains are wanted verbatim.
    """

    closure_size: int = 4096
    partial_reuse: bool = True

    def __post_init__(self) -> None:
        if self.closure_size < 1:
            raise ValueError("closure_size must be positive")


@dataclass(frozen=True)
class ParallelConfig:
    """Batch dispatch: backend, pool size, chunking.

    Parameters
    ----------
    backend:
        "serial", "threads", "processes", or None/"auto" (default).
        Threads do not parallelize the CPU-bound pure-Python traversals
        (they hold the GIL); "processes" runs over the session's
        shared-memory export with a warm spawn-safe pool. Auto picks
        processes on multi-core machines once the graph and batch are
        big enough to amortize worker startup.
    workers:
        Pool size for the threads/processes backends; 0 means "pick"
        (sequential for threads, ``os.cpu_count()`` for processes).
    chunk_size:
        Tasks per submission under the *chunked* scheduler; default
        ``ceil(n / (4 * workers))``. The default work-stealing
        scheduler dispatches per task and ignores this knob.
    mp_start_method:
        Process start method ("fork", "spawn", "forkserver"); default
        the ``REPRO_MP_START_METHOD`` env var, else the platform
        default. Workers are spawn-safe regardless.
    plugin_modules:
        Importable module paths each pool worker imports at init — the
        plugin handshake for runtime-registered methods. A module that
        calls :func:`repro.api.registry.register_method` at import time
        and declares ``MethodSpec(plugin_module=...)`` naming itself
        becomes process-safe when listed here: spawn workers import the
        module, re-registering the method inside the fresh interpreter,
        so the session no longer demotes batches containing it to the
        local backends.
    """

    backend: str | None = None
    workers: int = 0
    chunk_size: int | None = None
    mp_start_method: str | None = None
    plugin_modules: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.backend not in (None, "auto", *PARALLEL_BACKENDS):
            raise ValueError(
                f"unknown parallel backend {self.backend!r}; expected "
                f"one of {('auto', *PARALLEL_BACKENDS)}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        # Accept any iterable of module paths; store a hashable tuple
        # (EngineConfig-keyed memos hash their configs).
        object.__setattr__(
            self, "plugin_modules", tuple(self.plugin_modules)
        )
        for module in self.plugin_modules:
            if not isinstance(module, str) or not module:
                raise ValueError(
                    "plugin_modules must be non-empty module-path "
                    f"strings, got {module!r}"
                )
