"""Experiment configuration: scales, samples, sweeps and seeds.

``ExperimentConfig.ci_scale()`` (the default everywhere) shrinks the
paper's workload so the full bench suite runs in minutes of pure Python;
``paper_scale()`` reproduces the full sampling scheme (200 users, 100
items, ML1M-sized graph) for long runs. Both keep the same sweep *shape*
(k = 1..10, λ ∈ {0.01, 1, 100}, four scenarios, same samplers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs for one experimental run.

    Attributes mirror §V-A of the paper; see DESIGN.md for the mapping.
    """

    dataset: str = "ml1m"  # "ml1m" | "lfm1m"
    dataset_scale: float = 0.04
    users_per_gender: int = 8  # paper: 100
    items_per_bucket: int = 8  # paper: 50
    eval_users: int = 10  # users per user-centric panel
    eval_items: int = 10  # items per item-centric panel
    group_size: int = 6  # members per user/item group
    k_max: int = 10
    lambdas: tuple[float, ...] = (0.01, 1.0, 100.0)
    weight_influence: float = 0.7
    beta_rating: float = 1.0
    beta_recency: float = 0.0
    recency_gamma: float = 2e-8
    seed: int = 97
    scale_label: str = "ci"

    def __post_init__(self) -> None:
        if self.dataset not in ("ml1m", "lfm1m"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if not self.lambdas:
            raise ValueError("need at least one λ value")

    @property
    def k_values(self) -> range:
        """The paper's k sweep, 1..k_max."""
        return range(1, self.k_max + 1)

    @classmethod
    def ci_scale(cls, **overrides) -> "ExperimentConfig":
        """Minutes-scale configuration (default)."""
        return replace(cls(), **overrides)

    @classmethod
    def test_scale(cls, **overrides) -> "ExperimentConfig":
        """Seconds-scale configuration for the unit/integration tests."""
        base = cls(
            dataset_scale=0.02,
            users_per_gender=4,
            items_per_bucket=4,
            eval_users=4,
            eval_items=4,
            group_size=3,
            k_max=5,
            scale_label="test",
        )
        return replace(base, **overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The paper's full sampling scheme (hours of pure Python)."""
        base = cls(
            dataset_scale=1.0,
            users_per_gender=100,
            items_per_bucket=50,
            eval_users=200,
            eval_items=100,
            group_size=100,
            scale_label="paper",
        )
        return replace(base, **overrides)

    def with_dataset(self, dataset: str) -> "ExperimentConfig":
        """Copy of this config targeting another dataset."""
        return replace(self, dataset=dataset)

    def with_recency(
        self, beta_rating: float, beta_recency: float
    ) -> "ExperimentConfig":
        """Fig 16 variant: change the β1/β2 mix."""
        return replace(
            self, beta_rating=beta_rating, beta_recency=beta_recency
        )

    def cache_key(self) -> tuple:
        """Hashable identity for workbench caching."""
        return (
            self.dataset,
            self.dataset_scale,
            self.users_per_gender,
            self.items_per_bucket,
            self.eval_users,
            self.eval_items,
            self.group_size,
            self.k_max,
            self.lambdas,
            self.weight_influence,
            self.beta_rating,
            self.beta_recency,
            self.recency_gamma,
            self.seed,
        )


# Fig 16's five (β1, β2) combinations, rating-dominant to recency-dominant.
RECENCY_COMBOS: tuple[tuple[float, float], ...] = (
    (1.0, 0.0),
    (0.75, 0.25),
    (0.5, 0.5),
    (0.25, 0.75),
    (0.0, 1.0),
)
