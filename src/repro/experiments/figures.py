"""Series builders: one function per figure of the paper.

Each returns plain ``{legend label: {x: y}}`` mappings (per panel) that
the benches print via :func:`repro.experiments.report.format_series_table`
— the same series the paper plots.
"""

from __future__ import annotations

from statistics import mean

from repro.core.scenarios import Scenario
from repro.experiments.config import RECENCY_COMBOS, ExperimentConfig
from repro.experiments.workbench import BASELINE, Workbench
from repro.graph.generators import (
    SyntheticSpec,
    generate_random_kg,
    random_three_hop_paths,
    table3_specs,
)
from repro.metrics import (
    actionability,
    comprehensibility,
    consistency,
    diversity,
    measure,
    privacy,
    redundancy,
    relevance,
)

Series = dict[str, dict[object, float]]

_METRIC_FNS = {
    "comprehensibility": comprehensibility,
    "actionability": actionability,
    "diversity": diversity,
    "redundancy": redundancy,
    "privacy": privacy,
}

SCENARIOS = (
    Scenario.USER_CENTRIC,
    Scenario.ITEM_CENTRIC,
    Scenario.USER_GROUP,
    Scenario.ITEM_GROUP,
)
MAIN_RECOMMENDERS = ("PGPR", "CAFE")


def metric_series(
    bench: Workbench,
    scenario: Scenario,
    recommender: str,
    metric: str,
) -> Series:
    """Mean metric vs k, one series per method (baseline, ST·λ, PCST)."""
    series: Series = {}
    for label in bench.method_labels():
        points: dict[object, float] = {}
        for k in bench.config.k_values:
            values = [
                _metric_value(bench, metric, explanation)
                for explanation in bench.explanations(
                    label, scenario, recommender, k
                )
            ]
            if values:
                points[k] = mean(values)
        series[label] = points
    return series


def _metric_value(bench: Workbench, metric: str, explanation) -> float:
    if metric == "relevance":
        return relevance(explanation, bench.graph)
    return _METRIC_FNS[metric](explanation)


def consistency_series(
    bench: Workbench, scenario: Scenario, recommender: str
) -> Series:
    """Mean J(S_k, S_{k+1}) vs k (Fig 6's per-step consistency curves)."""
    from repro.metrics.consistency import jaccard_nodes

    series: Series = {}
    for label in bench.method_labels():
        points: dict[object, float] = {}
        for k in range(1, bench.config.k_max):
            values = []
            for subject in bench.tasks(scenario, recommender, k):
                current = bench.explanation(
                    label, scenario, recommender, k, subject
                )
                nxt = bench.explanation(
                    label, scenario, recommender, k + 1, subject
                )
                if current is not None and nxt is not None:
                    values.append(jaccard_nodes(current, nxt))
            if values:
                points[k] = mean(values)
        series[label] = points
    return series


def _panels(
    bench: Workbench, metric: str, recommenders=MAIN_RECOMMENDERS
) -> dict[str, Series]:
    """The 8-panel layout shared by Figs 2-5, 7, 8."""
    panels: dict[str, Series] = {}
    for scenario in SCENARIOS:
        for name in recommenders:
            panels[f"{scenario.value} {name}"] = metric_series(
                bench, scenario, name, metric
            )
    return panels


def figure2(bench: Workbench) -> dict[str, Series]:
    """Comprehensibility, 8 panels (scenario × PGPR/CAFE)."""
    return _panels(bench, "comprehensibility")


def figure3(bench: Workbench) -> dict[str, Series]:
    """Actionability, 8 panels."""
    return _panels(bench, "actionability")


def figure4(bench: Workbench) -> dict[str, Series]:
    """Diversity, 8 panels."""
    return _panels(bench, "diversity")


def figure5(bench: Workbench) -> dict[str, Series]:
    """Redundancy, 8 panels."""
    return _panels(bench, "redundancy")


def figure6(bench: Workbench) -> dict[str, Series]:
    """Consistency, 8 panels."""
    panels: dict[str, Series] = {}
    for scenario in SCENARIOS:
        for name in MAIN_RECOMMENDERS:
            panels[f"{scenario.value} {name}"] = consistency_series(
                bench, scenario, name
            )
    return panels


def figure7(bench: Workbench) -> dict[str, Series]:
    """Relevance, 8 panels."""
    return _panels(bench, "relevance")


def figure8(bench: Workbench) -> dict[str, Series]:
    """Privacy, 8 panels."""
    return _panels(bench, "privacy")


# ----------------------------------------------------------------------
# Performance figures
# ----------------------------------------------------------------------
def figure9(
    bench: Workbench,
    recommender: str = "PGPR",
    max_subjects: int = 3,
    k_stride: int = 2,
) -> dict[str, dict[str, Series]]:
    """Execution time and peak memory vs k, per scenario (8 panels).

    Summaries are recomputed (cache bypassed) so timings are honest;
    ``max_subjects`` tasks per cell and every ``k_stride``-th k keep the
    wall-clock of the bench reasonable without changing the trend.
    Returns ``{scenario: {"time": series, "memory": series}}`` with
    seconds and MiB values.
    """
    results: dict[str, dict[str, Series]] = {}
    method_labels = [
        label for label in bench.method_labels(include_baseline=False)
    ]
    k_points = [
        k
        for k in bench.config.k_values
        if k % k_stride == 0 or k == bench.config.k_max
    ]
    for scenario in SCENARIOS:
        time_series: Series = {label: {} for label in method_labels}
        mem_series: Series = {label: {} for label in method_labels}
        for k in k_points:
            tasks = list(bench.tasks(scenario, recommender, k).values())
            tasks = tasks[:max_subjects]
            for label in method_labels:
                summarizer = bench.summarizer(label)
                seconds, peaks = [], []
                for task in tasks:
                    measurement = measure(summarizer.summarize, task)
                    seconds.append(measurement.seconds)
                    peaks.append(measurement.peak_bytes)
                if seconds:
                    time_series[label][k] = mean(seconds)
                    mem_series[label][k] = mean(peaks) / (1024 * 1024)
        results[scenario.value] = {"time": time_series, "memory": mem_series}
    return results


def figure10(
    bench: Workbench,
    recommender: str = "PGPR",
    group_sizes: tuple[int, ...] = (2, 4, 8, 16),
) -> dict[str, Series]:
    """Execution time vs group size: ST vs PCST, user- and item-group."""
    from repro.core.scenarios import item_group_task, user_group_task

    per_user = bench.recommendations(recommender)
    by_item = bench.recommendations_by_item(
        recommender, bench.config.k_max
    )
    users = bench.sampled_users
    items = [i for i in by_item if by_item[i]]
    st = bench.summarizer(f"ST λ={bench.config.lambdas[-1]:g}")
    pcst = bench.summarizer("PCST")

    panels: dict[str, Series] = {
        "user-group": {"ST": {}, "PCST": {}},
        "item-group": {"ST": {}, "PCST": {}},
    }
    for size in group_sizes:
        if size <= len(users):
            task = user_group_task(users[:size], per_user, bench.config.k_max)
            panels["user-group"]["ST"][size] = measure(
                st.summarize, task, track_memory=False
            ).seconds
            panels["user-group"]["PCST"][size] = measure(
                pcst.summarize, task, track_memory=False
            ).seconds
        if size <= len(items):
            task = item_group_task(items[:size], by_item)
            panels["item-group"]["ST"][size] = measure(
                st.summarize, task, track_memory=False
            ).seconds
            panels["item-group"]["PCST"][size] = measure(
                pcst.summarize, task, track_memory=False
            ).seconds
    return panels


def figure11(
    scale: float = 0.05,
    k: int = 10,
    group_size: int = 20,
    seed: int = 5,
) -> dict[str, Series]:
    """Time and memory vs synthetic graph size (G1..G5, Table III).

    Random 3-hop paths play the baseline explanations, per §V-B.8.
    Returns four panels: user-centric/user-group × time/memory.
    """
    import numpy as np

    from repro.core.scenarios import (
        Scenario,
        SummaryTask,
    )
    from repro.core.summarizer import Summarizer

    panels: dict[str, Series] = {
        "user-centric time": {"ST": {}, "PCST": {}},
        "user-group time": {"ST": {}, "PCST": {}},
        "user-centric memory": {"ST": {}, "PCST": {}},
        "user-group memory": {"ST": {}, "PCST": {}},
    }
    rng = np.random.default_rng(seed)
    for index, spec in enumerate(table3_specs(scale), start=1):
        graph = generate_random_kg(spec, rng)
        graph_label = f"G{index}"
        users = [f"u:{i}" for i in range(group_size)]
        paths = random_three_hop_paths(graph, users, paths_per_user=k, rng=rng)
        if not paths:
            continue
        st = Summarizer(graph, method="ST", lam=1.0)
        pcst = Summarizer(graph, method="PCST")

        # User-centric: the first user's k paths.
        first_user_paths = [p for p in paths if p.user == users[0]][:k]
        if first_user_paths:
            task = _synthetic_task(
                Scenario.USER_CENTRIC, users[:1], first_user_paths
            )
            _record_perf(panels, "user-centric", graph_label, st, pcst, task)

        # User-group: everything.
        task = _synthetic_task(Scenario.USER_GROUP, users, paths)
        _record_perf(panels, "user-group", graph_label, st, pcst, task)
    return panels


def _synthetic_task(scenario, users, paths):
    from repro.core.scenarios import SummaryTask

    items = tuple(dict.fromkeys(p.item for p in paths))
    present_users = tuple(
        u for u in dict.fromkeys(users) if any(p.user == u for p in paths)
    )
    return SummaryTask(
        scenario=scenario,
        terminals=tuple(dict.fromkeys((*present_users, *items))),
        paths=tuple(paths),
        anchors=items,
        focus=present_users,
    )


def _record_perf(panels, prefix, graph_label, st, pcst, task) -> None:
    for name, summarizer in (("ST", st), ("PCST", pcst)):
        measurement = measure(summarizer.summarize, task)
        panels[f"{prefix} time"][name][graph_label] = measurement.seconds
        panels[f"{prefix} memory"][name][graph_label] = (
            measurement.peak_bytes / (1024 * 1024)
        )


# ----------------------------------------------------------------------
# Additional baselines / dataset / sensitivity figures
# ----------------------------------------------------------------------
def figure12(bench: Workbench) -> dict[str, Series]:
    """Comprehensibility with PLM and PEARLM baselines (2 panels)."""
    return {
        f"{scenario.value} {name}": metric_series(
            bench, scenario, name, "comprehensibility"
        )
        for scenario in (Scenario.USER_CENTRIC, Scenario.USER_GROUP)
        for name in ("PLM", "PEARLM")
    }


def figure13(bench: Workbench) -> dict[str, Series]:
    """Diversity with PLM and PEARLM baselines (2 panels)."""
    return {
        f"{scenario.value} {name}": metric_series(
            bench, scenario, name, "diversity"
        )
        for scenario in (Scenario.USER_CENTRIC, Scenario.USER_GROUP)
        for name in ("PLM", "PEARLM")
    }


def figure14(bench: Workbench) -> dict[str, Series]:
    """Comprehensibility on the LFM1M-shaped dataset (2 panels).

    ``bench`` must be built from an lfm1m config.
    """
    _require_dataset(bench, "lfm1m")
    return {
        f"{scenario.value} {name}": metric_series(
            bench, scenario, name, "comprehensibility"
        )
        for scenario in (Scenario.USER_CENTRIC, Scenario.USER_GROUP)
        for name in MAIN_RECOMMENDERS
    }


def figure15(bench: Workbench) -> dict[str, Series]:
    """Diversity on the LFM1M-shaped dataset (2 panels)."""
    _require_dataset(bench, "lfm1m")
    return {
        f"{scenario.value} {name}": metric_series(
            bench, scenario, name, "diversity"
        )
        for scenario in (Scenario.USER_CENTRIC, Scenario.USER_GROUP)
        for name in MAIN_RECOMMENDERS
    }


def figure16(
    base_config: ExperimentConfig, recommender: str = "PGPR"
) -> dict[str, Series]:
    """Comprehensibility and diversity across (β1, β2) mixes (Fig 16).

    Five rating/recency combinations, ST summaries at k = k_max over the
    recommender's paths; user-centric and user-group panels.
    """
    panels: dict[str, Series] = {
        "user-centric": {"comprehensibility": {}, "diversity": {}},
        "user-group": {"comprehensibility": {}, "diversity": {}},
    }
    for beta_rating, beta_recency in RECENCY_COMBOS:
        label = f"β1={beta_rating:g}/β2={beta_recency:g}"
        config = base_config.with_recency(beta_rating, beta_recency)
        bench = Workbench.get(config)
        st_label_ = f"ST λ={config.lambdas[-1]:g}"
        k = config.k_max
        for scenario, panel in (
            (Scenario.USER_CENTRIC, "user-centric"),
            (Scenario.USER_GROUP, "user-group"),
        ):
            explanations = bench.explanations(
                st_label_, scenario, recommender, k
            )
            if explanations:
                panels[panel]["comprehensibility"][label] = mean(
                    comprehensibility(e) for e in explanations
                )
                panels[panel]["diversity"][label] = mean(
                    diversity(e) for e in explanations
                )
    return panels


def figure17(
    bench: Workbench, recommender: str = "CAFE"
) -> dict[str, Series]:
    """Popularity bias: item-centric comprehensibility for popular vs
    unpopular items (Fig 17); ST/PCST should be roughly unaffected while
    the baseline degrades on unpopular items."""
    popular, unpopular = bench.sampled_items
    buckets = {"popular": set(popular), "unpopular": set(unpopular)}
    panels: dict[str, Series] = {}
    for bucket_name, bucket in buckets.items():
        series: Series = {}
        for label in bench.method_labels():
            points: dict[object, float] = {}
            for k in bench.config.k_values:
                values = [
                    comprehensibility(
                        bench.explanation(
                            label, Scenario.ITEM_CENTRIC, recommender, k, item
                        )
                    )
                    for item in bench.tasks(
                        Scenario.ITEM_CENTRIC, recommender, k
                    )
                    if item in bucket
                ]
                if values:
                    points[k] = mean(values)
            series[label] = points
        panels[bucket_name] = series
    return panels


def _require_dataset(bench: Workbench, dataset: str) -> None:
    if bench.config.dataset != dataset:
        raise ValueError(
            f"this figure needs a {dataset!r} workbench, got "
            f"{bench.config.dataset!r}"
        )
