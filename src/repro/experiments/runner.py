"""Generic experiment runner: execute any set of experiments by id.

This is the programmatic mirror of the CLI — useful for scripted runs
("regenerate figures 2, 4 and the user study at test scale and give me
the reports as strings") and for the integration tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_series_table, format_table
from repro.experiments.tables import table1_example, table2, table3
from repro.experiments.user_study import simulate_user_study
from repro.experiments.workbench import Workbench


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """One regenerated experiment."""

    experiment_id: str
    report: str
    data: object


def available_experiments() -> list[str]:
    """All experiment ids the runner accepts."""
    return [
        "table1",
        "table2",
        "table3",
        *(f"fig{n}" for n in range(2, 18)),
        "userstudy",
        "batch",
    ]


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Regenerate one experiment and return its printable report."""
    config = config or ExperimentConfig.ci_scale()
    handler = _HANDLERS.get(experiment_id)
    if handler is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; see "
            "available_experiments()"
        )
    report, data = handler(config)
    return ExperimentResult(
        experiment_id=experiment_id, report=report, data=data
    )


def run_experiments(
    experiment_ids: Iterable[str],
    config: ExperimentConfig | None = None,
) -> list[ExperimentResult]:
    """Run several experiments against one shared configuration."""
    config = config or ExperimentConfig.ci_scale()
    return [run_experiment(eid, config) for eid in experiment_ids]


# ----------------------------------------------------------------------
def _render_panels(title: str, panels) -> str:
    return "\n\n".join(
        format_series_table(f"{title} [{panel}]", series)
        for panel, series in panels.items()
    )


def _table1(_config) -> tuple[str, object]:
    result = table1_example()
    report = format_table(
        "Table I",
        ["quantity", "value"],
        [
            ["total path edges", result.total_path_edges],
            ["summary edges", result.summary_edges],
        ],
    )
    return report + "\nSummary: " + result.summary_sentence, result


def _table2(config) -> tuple[str, object]:
    stats = table2(config, approx_pairs=32)
    report = format_table(
        "Table II",
        ["property", "value"],
        [
            ["nodes", stats.num_nodes],
            ["edges", stats.num_edges],
            ["average degree", stats.average_degree],
            ["average path length", stats.average_path_length],
            ["diameter", stats.diameter],
        ],
    )
    return report, stats


def _table3(_config) -> tuple[str, object]:
    rows = table3(scale=0.01)
    report = format_table(
        "Table III",
        ["graph", "nodes", "edges"],
        [
            [f"G{i}", stats.num_nodes, stats.num_edges]
            for i, (_spec, stats) in enumerate(rows, start=1)
        ],
    )
    return report, rows


def _figure(builder: Callable, title: str, needs_lfm: bool = False):
    def handler(config: ExperimentConfig) -> tuple[str, object]:
        """Regenerate this figure against the shared config."""
        if needs_lfm:
            config = config.with_dataset("lfm1m")
        bench = Workbench.get(config)
        panels = builder(bench)
        return _render_panels(title, panels), panels

    return handler


def _fig9(config) -> tuple[str, object]:
    bench = Workbench.get(config)
    results = figures.figure9(bench)
    flat = {
        f"{scenario} {side}": series
        for scenario, sides in results.items()
        for side, series in sides.items()
    }
    return _render_panels("Fig 9", flat), results


def _fig11(_config) -> tuple[str, object]:
    panels = figures.figure11(scale=0.01, k=5, group_size=8)
    return _render_panels("Fig 11", panels), panels


def _fig16(config) -> tuple[str, object]:
    panels = figures.figure16(config)
    return _render_panels("Fig 16", panels), panels


def _batch(config) -> tuple[str, object]:
    """Freeze-once batch throughput over the workbench's session.

    The programmatic mirror of ``repro-xsum batch --demo``: every
    user-centric PGPR task at the config's k_max, served through the
    workbench's long-lived :class:`~repro.api.ExplanationSession`
    (shared frozen view + closure cache, work-stealing dispatch when a
    pool runs), reported in the batch engine's standard format plus a
    scheduler-counter line when any dispatch rebalancing happened.
    """
    from repro.core.scenarios import Scenario

    bench = Workbench.get(config)
    tasks = list(
        bench.tasks(Scenario.USER_CENTRIC, "PGPR", config.k_max).values()
    )
    try:
        report = bench.session.run(tasks)
    finally:
        # The workbench session outlives this experiment (it backs the
        # figure summaries too); drop only the OS-level resources so a
        # processes-backend run can't leave a pool or /dev/shm blocks
        # behind — the serial caches stay warm for later experiments.
        bench.session.release_pool()
    text = report.summary()
    scheduler_line = bench.session.stats.scheduler_line()
    if scheduler_line:
        text += "\n" + scheduler_line
    return text, report


def _userstudy(config) -> tuple[str, object]:
    bench = Workbench.get(config)
    result = simulate_user_study(bench)
    report = format_table(
        "User study (simulated)",
        ["quantity", "value"],
        [
            ["preference for summaries", f"{result.preference_share:.2%}"],
            *[
                [f"usefulness: {metric}", f"{rating:.2f}"]
                for metric, rating in result.metric_ratings.items()
            ],
        ],
    )
    return report, result


_HANDLERS: dict[str, Callable] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "fig2": _figure(figures.figure2, "Fig 2"),
    "fig3": _figure(figures.figure3, "Fig 3"),
    "fig4": _figure(figures.figure4, "Fig 4"),
    "fig5": _figure(figures.figure5, "Fig 5"),
    "fig6": _figure(figures.figure6, "Fig 6"),
    "fig7": _figure(figures.figure7, "Fig 7"),
    "fig8": _figure(figures.figure8, "Fig 8"),
    "fig9": _fig9,
    "fig10": _figure(figures.figure10, "Fig 10"),
    "fig11": _fig11,
    "fig12": _figure(figures.figure12, "Fig 12"),
    "fig13": _figure(figures.figure13, "Fig 13"),
    "fig14": _figure(figures.figure14, "Fig 14", needs_lfm=True),
    "fig15": _figure(figures.figure15, "Fig 15", needs_lfm=True),
    "fig16": _fig16,
    "fig17": _figure(figures.figure17, "Fig 17"),
    "userstudy": _userstudy,
    "batch": _batch,
}
