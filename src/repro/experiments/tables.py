"""Table reproductions: the worked example (Table I), the ML1M graph
statistics (Table II) and the synthetic graph statistics (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.explanation import PathSetExplanation, SubgraphExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.steiner_summary import SteinerSummarizer
from repro.core.verbalize import verbalize_path, verbalize_summary
from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench
from repro.graph.generators import SyntheticSpec, generate_random_kg, table3_specs
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.types import GraphStats


@dataclass(frozen=True, slots=True)
class Table1Result:
    """The worked example: individual paths vs their summary."""

    path_sentences: tuple[str, ...]
    summary_sentence: str
    total_path_edges: int
    summary_edges: int


def table1_example() -> Table1Result:
    """Reproduce the paper's Table I / Fig 1 Angelopoulos example.

    Builds the small movie graph from the figure, the three explanation
    paths for User 1, and the ST summary; the paper reports the total
    explanation length dropping from 13 edges to 6.
    """
    graph, paths = angelopoulos_example()
    user = "u:1"
    items = tuple(p.item for p in paths)
    task = SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=(user, *items),
        paths=tuple(paths),
        anchors=items,
        focus=(user,),
        k=len(items),
    )
    summary = SteinerSummarizer(graph, lam=100.0).summarize(task)
    return Table1Result(
        path_sentences=tuple(verbalize_path(p, graph) for p in paths),
        summary_sentence=verbalize_summary(summary, graph),
        total_path_edges=PathSetExplanation(paths=tuple(paths)).size_in_edges,
        summary_edges=summary.subgraph.num_edges,
    )


def angelopoulos_example() -> tuple[KnowledgeGraph, list[Path]]:
    """The Fig 1 toy graph: User 1, six Angelopoulos films, two key
    entities (Theo Angelopoulos, Drama) plus the clutter nodes the
    individual paths wander through."""
    graph = KnowledgeGraph()
    names = {
        "u:1": "User 1",
        "u:2": "User 2",
        "i:1": "Eternity and a Day",
        "i:2": "The Beekeeper",
        "i:3": "The Suspended Step of the Stork",
        "i:4": "Landscape in the Mist",
        "i:5": "The Travelling Players",
        "i:6": "Ulysses' Gaze",
        "i:7": "The Weeping Meadow",
        "i:8": "The Dust of Time",
        "e:director:0": "Theo Angelopoulos",
        "e:genre:0": "Drama",
    }
    interactions = [
        ("u:1", "i:4", 4.0),
        ("u:1", "i:6", 5.0),
        ("u:1", "i:7", 4.0),
        ("u:2", "i:4", 4.0),
        ("u:2", "i:5", 5.0),
    ]
    knowledge = [
        ("i:5", "e:genre:0", "genre"),
        ("i:1", "e:genre:0", "genre"),
        ("i:8", "e:genre:0", "genre"),
        ("i:3", "e:genre:0", "genre"),
        ("i:6", "e:genre:0", "genre"),
        ("i:7", "e:genre:0", "genre"),
        ("i:6", "e:director:0", "director"),
        ("i:2", "e:director:0", "director"),
        ("i:7", "e:director:0", "director"),
        ("i:8", "e:director:0", "director"),
    ]
    for u, i, r in interactions:
        graph.add_edge(u, i, r)
    for i, e, rel in knowledge:
        graph.add_edge(i, e, 0.0, rel)
    for node, name in names.items():
        graph.set_name(node, name)

    paths = [
        # P1,A: User 1 - Landscape in the Mist - User 2 - The Travelling
        # Players - Drama - Eternity and a Day
        Path(nodes=("u:1", "i:4", "u:2", "i:5", "e:genre:0", "i:1")),
        # P1,B: User 1 - Ulysses' Gaze - Theo Angelopoulos - The Beekeeper
        Path(nodes=("u:1", "i:6", "e:director:0", "i:2")),
        # P1,C: User 1 - The Weeping Meadow - Theo Angelopoulos - The Dust
        # of Time - Drama - The Suspended Step of the Stork
        Path(nodes=("u:1", "i:7", "e:director:0", "i:8", "e:genre:0", "i:3")),
    ]
    return graph, paths


def table2(config: ExperimentConfig | None = None, approx_pairs: int = 64) -> GraphStats:
    """Knowledge-graph statistics in the shape of the paper's Table II."""
    bench = Workbench.get(config or ExperimentConfig.ci_scale())
    rng = np.random.default_rng(bench.config.seed + 9)
    return bench.graph.stats(approx_pairs=approx_pairs, rng=rng)


def table3(
    scale: float = 0.05, seed: int = 5
) -> list[tuple[SyntheticSpec, GraphStats]]:
    """Synthetic graph statistics (Table III): spec vs realized stats."""
    rng = np.random.default_rng(seed)
    rows = []
    for spec in table3_specs(scale):
        graph = generate_random_kg(spec, rng)
        stats = graph.stats(approx_pairs=16, rng=rng)
        rows.append((spec, stats))
    return rows
