"""ASCII reporting helpers: the benches print the same rows/series the
paper's figures plot, in a grep-friendly fixed-width format.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series_table(
    title: str,
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "k",
) -> str:
    """Series table: one row per x value, one column per series.

    ``series`` maps a legend label (e.g. "ST λ=1") to an {x: y} mapping —
    the exact structure :mod:`repro.experiments.figures` produces.
    """
    labels = list(series)
    xs = sorted({x for values in series.values() for x in values},
                key=lambda v: (isinstance(v, str), v))
    headers = [x_label, *labels]
    rows = []
    for x in xs:
        row: list[object] = [x]
        for label in labels:
            value = series[label].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(title, headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)
