"""Experiment harness: everything needed to regenerate the paper's tables
and figures (see DESIGN.md §4 for the experiment index).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench
from repro.experiments.report import format_series_table, format_table

__all__ = [
    "ExperimentConfig",
    "Workbench",
    "format_series_table",
    "format_table",
]
