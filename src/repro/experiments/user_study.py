"""Simulated user study (paper §VI).

The paper ran 30 human participants through (a) pairwise preference
between baseline path-set explanations and ST summaries, and (b) 1-5
usefulness ratings of seven metrics. Humans are unavailable to a code
reproduction, so this module *simulates* the study with an explicit
preference model and reports the same two outputs. This is a model of the
study, not evidence about humans — EXPERIMENTS.md flags it as such.

Preference model: a rater prefers explanation A over B with probability
``σ(β·Δutility)`` where utility combines brevity (size relative to the
pair) and diversity, with per-rater weights drawn around the population
mix the XAI literature reports (brevity-dominant). The paper's observed
78.67% preference for summaries emerges if summaries are indeed shorter
at similar diversity — which is exactly what Figs 2/4 claim.

Metric-usefulness ratings are derived, per metric, from how strongly that
metric alone separates the preferred from the rejected explanation across
the study pairs (point-biserial-style agreement mapped onto the 1-5
scale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean

import numpy as np

from repro.core.scenarios import Scenario
from repro.experiments.workbench import BASELINE, Workbench
from repro.metrics import (
    actionability,
    comprehensibility,
    diversity,
    privacy,
    redundancy,
    relevance,
)

STUDY_METRICS = (
    "comprehensibility",
    "actionability",
    "diversity",
    "redundancy",
    "consistency",
    "relevance",
    "privacy",
)


@dataclass(frozen=True, slots=True)
class UserStudyResult:
    """Simulation outputs mirroring §VI."""

    preference_share: float  # fraction preferring the summary
    num_participants: int
    num_pairs: int
    metric_ratings: dict[str, float]  # metric -> mean 1-5 rating


def simulate_user_study(
    bench: Workbench,
    recommender: str = "PGPR",
    num_participants: int = 30,
    num_pairs: int = 5,
    noise: float = 1.0,
    seed: int = 73,
) -> UserStudyResult:
    """Run the §VI study against this workbench's explanations."""
    rng = np.random.default_rng(seed)
    st_label = f"ST λ={bench.config.lambdas[-1]:g}"
    k = bench.config.k_max

    subjects = list(bench.tasks(Scenario.USER_CENTRIC, recommender, k))
    pairs = []
    for subject in subjects[:num_pairs]:
        baseline = bench.explanation(
            BASELINE, Scenario.USER_CENTRIC, recommender, k, subject
        )
        summary = bench.explanation(
            st_label, Scenario.USER_CENTRIC, recommender, k, subject
        )
        if baseline is not None and summary is not None:
            pairs.append((baseline, summary))
    if not pairs:
        raise ValueError("no explanation pairs available for the study")

    choices: list[bool] = []  # True = summary preferred
    for _ in range(num_participants):
        brevity_weight = float(rng.normal(1.0, 0.25))
        diversity_weight = float(rng.normal(0.5, 0.2))
        for baseline, summary in pairs:
            utility_delta = _utility(
                summary, brevity_weight, diversity_weight, baseline
            ) - _utility(baseline, brevity_weight, diversity_weight, summary)
            probability = 1.0 / (1.0 + math.exp(-utility_delta / noise))
            choices.append(bool(rng.random() < probability))

    ratings = _metric_ratings(bench, pairs, choices, num_participants, rng)
    return UserStudyResult(
        preference_share=mean(choices),
        num_participants=num_participants,
        num_pairs=len(pairs),
        metric_ratings=ratings,
    )


def _utility(
    explanation, brevity_weight: float, diversity_weight: float, other
) -> float:
    """Rater utility: brevity relative to the pair + diversity."""
    size = explanation.size_in_edges
    other_size = other.size_in_edges
    brevity = 1.0 - size / max(1, size + other_size)  # in (0, 1)
    return 6.0 * brevity_weight * brevity + diversity_weight * diversity(
        explanation
    )


def _metric_ratings(
    bench: Workbench, pairs, choices, num_participants, rng
) -> dict[str, float]:
    """1-5 usefulness per metric from its agreement with the choices."""
    scorers = {
        "comprehensibility": comprehensibility,
        "actionability": actionability,
        "diversity": diversity,
        "redundancy": lambda e: -redundancy(e),  # lower is better
        "relevance": lambda e: relevance(e, bench.graph),
        "privacy": privacy,
    }
    summary_share = mean(choices)
    ratings: dict[str, float] = {}
    for metric in STUDY_METRICS:
        if metric == "consistency":
            # Pairwise study exposes no k-sweep; raters judge it from the
            # description only — model as mid-scale with small spread.
            ratings[metric] = float(
                np.clip(rng.normal(3.7, 0.15), 1.0, 5.0)
            )
            continue
        scorer = scorers[metric]
        agreements = []
        for baseline, summary in pairs:
            summary_score = scorer(summary)
            baseline_score = scorer(baseline)
            denominator = abs(summary_score) + abs(baseline_score)
            if denominator == 0:
                agreements.append(0.5)
                continue
            # Signed, margin-weighted agreement with the raters' choices:
            # a metric that points at the preferred explanation *with a
            # wide margin* reads as more useful than a coin-flip metric.
            margin = (summary_score - baseline_score) / denominator
            # tanh saturation: modest relative margins already register
            # as decisive to a human rater.
            agreements.append(
                0.5 + (summary_share - 0.5) * math.tanh(4.0 * margin)
            )
        # Map mean agreement (0.5 = uninformative, 1 = perfect) to 1-5,
        # with per-rater dispersion.
        ratings[metric] = float(
            np.clip(
                1.0 + 4.0 * mean(agreements) + rng.normal(0.0, 0.1),
                1.0,
                5.0,
            )
        )
    return ratings
