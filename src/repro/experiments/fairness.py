"""Explanation-fairness slicing (paper §VII future work, plus Fig 17).

Slices any static metric across user-demographic groups and
item-popularity buckets, reporting per-group means and the max pairwise
gap — the quantity a fairness audit of explanation quality cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.scenarios import Scenario
from repro.experiments.workbench import Workbench
from repro.metrics import (
    actionability,
    comprehensibility,
    diversity,
    privacy,
    redundancy,
)

_METRICS = {
    "comprehensibility": comprehensibility,
    "actionability": actionability,
    "diversity": diversity,
    "redundancy": redundancy,
    "privacy": privacy,
}


@dataclass(frozen=True, slots=True)
class FairnessReport:
    """Per-group metric means and the largest between-group gap."""

    metric: str
    group_means: dict[str, float]
    max_gap: float

    @property
    def groups(self) -> list[str]:
        """Group labels present in the report."""
        return sorted(self.group_means)


def user_fairness(
    bench: Workbench,
    recommender: str,
    metric: str,
    method_label: str,
    k: int | None = None,
) -> FairnessReport:
    """Slice a user-centric metric by the user's gender attribute."""
    scorer = _METRICS[metric]
    k = k or bench.config.k_max
    gender = bench.dataset.user_gender
    buckets: dict[str, list[float]] = {}
    for subject in bench.tasks(Scenario.USER_CENTRIC, recommender, k):
        explanation = bench.explanation(
            method_label, Scenario.USER_CENTRIC, recommender, k, subject
        )
        if explanation is None:
            continue
        group = str(gender[int(subject.split(":")[1])])
        buckets.setdefault(group, []).append(scorer(explanation))
    return _report(metric, buckets)


def item_fairness(
    bench: Workbench,
    recommender: str,
    metric: str,
    method_label: str,
    k: int | None = None,
) -> FairnessReport:
    """Slice an item-centric metric by item popularity bucket (Fig 17)."""
    scorer = _METRICS[metric]
    k = k or bench.config.k_max
    popular, unpopular = bench.sampled_items
    membership = {i: "popular" for i in popular}
    membership.update({i: "unpopular" for i in unpopular})
    buckets: dict[str, list[float]] = {}
    for subject in bench.tasks(Scenario.ITEM_CENTRIC, recommender, k):
        group = membership.get(subject)
        if group is None:
            continue
        explanation = bench.explanation(
            method_label, Scenario.ITEM_CENTRIC, recommender, k, subject
        )
        if explanation is None:
            continue
        buckets.setdefault(group, []).append(scorer(explanation))
    return _report(metric, buckets)


def _report(metric: str, buckets: dict[str, list[float]]) -> FairnessReport:
    means = {group: mean(values) for group, values in buckets.items() if values}
    if len(means) < 2:
        gap = 0.0
    else:
        ordered = sorted(means.values())
        gap = ordered[-1] - ordered[0]
    return FairnessReport(metric=metric, group_means=means, max_gap=gap)
