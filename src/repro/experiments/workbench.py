"""The experiment workbench: build once, reuse everywhere.

Every figure bench needs the same expensive artifacts — dataset, knowledge
graph, fitted recommenders, sampled users/items, top-k recommendations and
the summaries themselves. :class:`Workbench` builds each lazily and caches
it; :meth:`Workbench.get` memoizes whole workbenches per configuration so
the eight metric figures share one set of summaries within a pytest
session.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.explanation import (
    Explanation,
    PathSetExplanation,
    SubgraphExplanation,
)
from repro.core.scenarios import (
    Scenario,
    SummaryTask,
    item_centric_task,
    item_group_task,
    user_centric_task,
    user_group_task,
)
from repro.api import EngineConfig, ExplanationSession, SummaryRequest
from repro.core.summarizer import Summarizer
from repro.data.dbpedia import ExternalSchema, attach_external_knowledge
from repro.data.lastfm import LastFMSpec, generate_lfm1m_like
from repro.data.movielens import MovieLensSpec, generate_ml1m_like
from repro.data.sampling import (
    sample_items_by_popularity,
    sample_users_balanced,
)
from repro.experiments.config import ExperimentConfig
from repro.graph.build import build_interaction_graph
from repro.graph.weights import InteractionWeights
from repro.recommenders.base import (
    Recommendation,
    RecommendationList,
    invert_recommendations,
)
from repro.recommenders.registry import make_recommender

_WORKBENCH_CACHE: dict[tuple, "Workbench"] = {}

#: Method labels used across figures; "baseline" is the raw path set.
BASELINE = "baseline"


def st_label(lam: float) -> str:
    """Figure legend label for one ST λ setting."""
    return f"ST λ={lam:g}"


class Workbench:
    """Lazily-built shared experimental state for one configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._recommenders: dict[str, object] = {}
        self._recommendations: dict[str, dict[str, RecommendationList]] = {}
        self._by_item: dict[tuple[str, int], dict[str, list[Recommendation]]] = {}
        self._summaries: dict[tuple, SubgraphExplanation] = {}
        self._summarizers: dict[str, Summarizer] = {}

    @classmethod
    def get(cls, config: ExperimentConfig) -> "Workbench":
        """Memoized workbench per configuration."""
        key = config.cache_key()
        bench = _WORKBENCH_CACHE.get(key)
        if bench is None:
            bench = cls(config)
            _WORKBENCH_CACHE[key] = bench
        return bench

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all memoized workbenches (tests only)."""
        _WORKBENCH_CACHE.clear()

    # ------------------------------------------------------------------
    # Dataset and graph
    # ------------------------------------------------------------------
    @cached_property
    def dataset(self):
        """ML1M- or LFM1M-shaped dataset bundle."""
        if self.config.dataset == "ml1m":
            return generate_ml1m_like(
                MovieLensSpec(
                    scale=self.config.dataset_scale, seed=self.config.seed
                )
            )
        return generate_lfm1m_like(
            LastFMSpec(scale=self.config.dataset_scale, seed=self.config.seed)
        )

    @cached_property
    def interaction_weights(self) -> InteractionWeights:
        """The w_M weight function for this config."""
        return InteractionWeights(
            beta_rating=self.config.beta_rating,
            beta_recency=self.config.beta_recency,
            gamma=self.config.recency_gamma,
            now=self.dataset.ratings.max_timestamp,
        )

    @cached_property
    def graph(self):
        """The knowledge-based graph G (interactions + external layer)."""
        kg = build_interaction_graph(
            self.dataset.ratings, weights=self.interaction_weights
        )
        schema = (
            ExternalSchema.movies()
            if self.config.dataset == "ml1m"
            else ExternalSchema.music()
        )
        rng = np.random.default_rng(self.config.seed + 1)
        return attach_external_knowledge(kg, schema, rng)

    # ------------------------------------------------------------------
    # Sampling (§V-A)
    # ------------------------------------------------------------------
    @cached_property
    def sampled_users(self) -> list[str]:
        """Gender-balanced, activity-stratified user sample."""
        rng = np.random.default_rng(self.config.seed + 2)
        indices = sample_users_balanced(
            self.dataset.user_gender,
            self.dataset.ratings.user_activity(),
            per_gender=self.config.users_per_gender,
            rng=rng,
        )
        return [f"u:{i}" for i in indices]

    @cached_property
    def eval_users(self) -> list[str]:
        """The per-user evaluation subset (capped sample)."""
        return self.sampled_users[: self.config.eval_users]

    @cached_property
    def sampled_items(self) -> tuple[list[str], list[str]]:
        """(popular, unpopular) item samples."""
        popular, unpopular = sample_items_by_popularity(
            self.dataset.ratings.item_popularity(),
            per_bucket=self.config.items_per_bucket,
        )
        return (
            [f"i:{i}" for i in popular],
            [f"i:{i}" for i in unpopular],
        )

    @cached_property
    def user_groups(self) -> dict[str, list[str]]:
        """Named user groups (by gender, per the paper's sampling)."""
        gender = self.dataset.user_gender
        males = [
            u
            for u in self.sampled_users
            if gender[int(u.split(":")[1])] == "M"
        ][: self.config.group_size]
        females = [
            u
            for u in self.sampled_users
            if gender[int(u.split(":")[1])] == "F"
        ][: self.config.group_size]
        groups = {}
        if males:
            groups["male"] = males
        if females:
            groups["female"] = females
        return groups

    @cached_property
    def item_groups(self) -> dict[str, list[str]]:
        """Named item groups (popularity buckets)."""
        popular, unpopular = self.sampled_items
        return {
            "popular": popular[: self.config.group_size],
            "unpopular": unpopular[: self.config.group_size],
        }

    # ------------------------------------------------------------------
    # Recommendations
    # ------------------------------------------------------------------
    def recommender(self, name: str):
        """Fitted recommender by paper name (PGPR/CAFE/PLM/PEARLM/...)."""
        rec = self._recommenders.get(name)
        if rec is None:
            rec = make_recommender(name, seed=self.config.seed + 3)
            rec.fit(self.graph, self.dataset.ratings)
            self._recommenders[name] = rec
        return rec

    def recommendations(self, name: str) -> dict[str, RecommendationList]:
        """Top-``k_max`` lists for every sampled user (cached)."""
        cached = self._recommendations.get(name)
        if cached is None:
            rec = self.recommender(name)
            cached = rec.recommend_many(self.sampled_users, self.config.k_max)
            self._recommendations[name] = cached
        return cached

    def recommendations_by_item(
        self, name: str, k: int
    ) -> dict[str, list[Recommendation]]:
        """``C_i``/``E_i`` inputs: top-k recommendations grouped by item."""
        key = (name, k)
        cached = self._by_item.get(key)
        if cached is None:
            cached = invert_recommendations(self.recommendations(name), k)
            self._by_item[key] = cached
        return cached

    def eval_items_for(self, name: str) -> list[str]:
        """Items with a non-trivial ``C_i`` under recommender ``name``.

        Prefers the popularity-sampled items that actually received
        recommendations; falls back to the most-recommended items so the
        item-centric panels are never empty.
        """
        by_item = self.recommendations_by_item(name, self.config.k_max)
        popular, unpopular = self.sampled_items
        chosen = [
            i for i in (*popular, *unpopular) if len(by_item.get(i, ())) >= 1
        ]
        if len(chosen) < self.config.eval_items:
            extras = sorted(
                (i for i in by_item if i not in set(chosen)),
                key=lambda i: -len(by_item[i]),
            )
            chosen.extend(extras[: self.config.eval_items - len(chosen)])
        return chosen[: self.config.eval_items]

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def tasks(
        self, scenario: Scenario, name: str, k: int
    ) -> dict[str, SummaryTask]:
        """subject-id -> task, for every subject of ``scenario``."""
        if scenario is Scenario.USER_CENTRIC:
            per_user = self.recommendations(name)
            return {
                user: user_centric_task(per_user[user], k)
                for user in self.eval_users
                if len(per_user[user]) >= 1
            }
        if scenario is Scenario.ITEM_CENTRIC:
            by_item = self.recommendations_by_item(name, k)
            tasks = {}
            for item in self.eval_items_for(name):
                recs = by_item.get(item)
                if recs:
                    tasks[item] = item_centric_task(item, recs)
            return tasks
        if scenario is Scenario.USER_GROUP:
            per_user = self.recommendations(name)
            return {
                label: user_group_task(group, per_user, k)
                for label, group in self.user_groups.items()
            }
        if scenario is Scenario.ITEM_GROUP:
            by_item = self.recommendations_by_item(name, k)
            tasks = {}
            for label, group in self.item_groups.items():
                present = [i for i in group if by_item.get(i)]
                if present:
                    tasks[label] = item_group_task(present, by_item)
            return tasks
        raise ValueError(f"unhandled scenario {scenario}")

    # ------------------------------------------------------------------
    # Explanations (baselines + summaries), cached
    # ------------------------------------------------------------------
    def method_labels(self, include_baseline: bool = True) -> list[str]:
        """Figure legend order: baseline, ST per λ, PCST."""
        labels = [BASELINE] if include_baseline else []
        labels.extend(st_label(lam) for lam in self.config.lambdas)
        labels.append("PCST")
        return labels

    @cached_property
    def session(self) -> ExplanationSession:
        """The service-API session every figure's summaries run through.

        One long-lived :class:`~repro.api.ExplanationSession` per
        workbench: the frozen view and the closure cache are shared
        across every (method, scenario, k) cell instead of per
        summarizer, and a graph mutation invalidates all of it at once.
        """
        return ExplanationSession(
            self.graph,
            engine=EngineConfig(
                weight_influence=self.config.weight_influence
            ),
        )

    def _method_request(self, label: str, task: SummaryTask) -> SummaryRequest:
        """Figure legend label -> service request (λ parsed from ST labels)."""
        if label.startswith("ST"):
            lam = float(label.split("=")[1])
            return SummaryRequest(
                task=task, method="st", overrides={"lam": lam}
            )
        if label == "PCST":
            return SummaryRequest(task=task, method="pcst")
        if label == "Union":
            return SummaryRequest(task=task, method="union")
        raise ValueError(f"unknown method label {label!r}")

    def summarizer(self, label: str) -> Summarizer:
        """Method label -> configured summarizer (cached).

        Kept for the figure benches that time raw ``summarize`` calls;
        plain summary construction goes through :attr:`session` now.
        """
        summarizer = self._summarizers.get(label)
        if summarizer is None:
            if label.startswith("ST"):
                lam = float(label.split("=")[1])
                summarizer = Summarizer(
                    self.graph,
                    method="ST",
                    lam=lam,
                    weight_influence=self.config.weight_influence,
                )
            elif label == "PCST":
                summarizer = Summarizer(self.graph, method="PCST")
            elif label == "Union":
                summarizer = Summarizer(self.graph, method="Union")
            else:
                raise ValueError(f"unknown method label {label!r}")
            self._summarizers[label] = summarizer
        return summarizer

    def explanation(
        self,
        label: str,
        scenario: Scenario,
        name: str,
        k: int,
        subject: str,
    ) -> Explanation | None:
        """One explanation (baseline path set or cached summary)."""
        task = self.tasks(scenario, name, k).get(subject)
        if task is None:
            return None
        if label == BASELINE:
            return PathSetExplanation(paths=task.paths, method=name)
        key = (label, scenario, name, k, subject)
        cached = self._summaries.get(key)
        if cached is None:
            cached = self.session.explain(self._method_request(label, task))
            self._summaries[key] = cached
        return cached

    def explanations(
        self, label: str, scenario: Scenario, name: str, k: int
    ) -> list[Explanation]:
        """All subjects' explanations for one (method, scenario, k) cell."""
        subjects = self.tasks(scenario, name, k)
        results = []
        for subject in subjects:
            explanation = self.explanation(label, scenario, name, k, subject)
            if explanation is not None:
                results.append(explanation)
        return results
