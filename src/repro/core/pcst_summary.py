"""PCST summary explanations (§IV-B).

The experiments' default follows the paper's simplification: node prizes
``p(v) = 1`` for terminals and ``0`` otherwise, edge weights ignored
(unit costs) — "we found that using edge weights in the PCST
summarization led to excessively large summaries ... as a result, we
opted to ignore the edge weights".

The future-work prize policies (§VII: "testing additional PCST prize
assignment policies and considering incorporating node centrality
measures") are implemented as :class:`PrizePolicy` variants.
"""

from __future__ import annotations

from enum import Enum

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.pcst import grow_prune_pcst, paper_pcst
from repro.graph.types import NodeType


class PrizePolicy(Enum):
    """How node prizes are assigned.

    - ``BINARY``: the paper's experimental setting (1 / 0).
    - ``WEIGHT_RANGE``: §IV-B's formal setting — α = max w(e) for
      terminals, β = min w(e) for the rest.
    - ``DEGREE_CENTRALITY``: terminals get 1; non-terminals earn a small
      prize proportional to normalized degree (future-work policy).
    - ``ITEM_BOOSTED``: terminals get 1; non-terminal *items* get a small
      prize, addressing the paper's observation that PCST actionability
      "could improve with a node-prize assignment that prioritizes
      items".
    - ``PAGERANK``: like ``DEGREE_CENTRALITY`` but with PageRank scores
      (a smoother centrality; §VII future-work policy).
    """

    BINARY = "binary"
    WEIGHT_RANGE = "weight-range"
    DEGREE_CENTRALITY = "degree-centrality"
    ITEM_BOOSTED = "item-boosted"
    PAGERANK = "pagerank"


class PCSTSummarizer:
    """Prize-Collecting Steiner Tree summarizer bound to one graph.

    Parameters
    ----------
    graph:
        The knowledge-based graph.
    prize_policy:
        Prize assignment (default: the paper's binary policy).
    use_edge_weights:
        If True, edge costs follow stored weights (the configuration the
        paper tried and rejected); default False = unit costs.
    strong_pruning:
        If True, apply Goemans-Williamson strong pruning after growth
        (ablation; collapses summaries under the binary policy).
    prune_leaves:
        If True (default), strip zero-prize leaves after growth so the
        summary is the grown forest's minimal subtree spanning the
        terminals. Disabling keeps the full growth wavefront — orders of
        magnitude larger summaries (the "excessively large" regime the
        paper reports for weighted PCST).
    side_prize:
        Magnitude of the non-terminal prize for the centrality/item
        policies (must stay < 1 so terminals dominate).
    engine:
        "frozen" (default; "csr" is an alias) runs the Algorithm 2
        growth pass on the graph's cached CSR view with an indexed heap
        and array-backed disjoint set; "dict" forces the original
        adjacency walk. Both produce bit-identical forests ("dict" is
        the parity oracle and escape hatch).
    """

    method = "PCST"

    ENGINES = ("frozen", "csr", "dict")

    def __init__(
        self,
        graph: KnowledgeGraph,
        prize_policy: PrizePolicy = PrizePolicy.BINARY,
        use_edge_weights: bool = False,
        strong_pruning: bool = False,
        prune_leaves: bool = True,
        side_prize: float = 0.2,
        engine: str = "frozen",
    ) -> None:
        if not 0.0 <= side_prize < 1.0:
            raise ValueError("side_prize must be in [0, 1)")
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected {self.ENGINES}"
            )
        self.graph = graph
        self.prize_policy = prize_policy
        self.use_edge_weights = use_edge_weights
        self.strong_pruning = strong_pruning
        self.prune_leaves = prune_leaves
        self.side_prize = side_prize
        self.engine = "frozen" if engine == "csr" else engine
        # Version-keyed derived state: recomputed if the graph mutates.
        self._max_degree_cache: tuple[int, int] | None = None
        self._pagerank_cache: tuple[int, dict[str, float]] | None = None
        self._weighted_costs_cache = None

    @property
    def _max_degree(self) -> int:
        version = self.graph.version
        if self._max_degree_cache is None or (
            self._max_degree_cache[0] != version
        ):
            value = max(
                (self.graph.degree(n) for n in self.graph.nodes()), default=1
            )
            self._max_degree_cache = (version, value)
        return self._max_degree_cache[1]

    def summarize(self, task: SummaryTask) -> SubgraphExplanation:
        """Compute the PCST summary for one task."""
        prizes = self._prizes(task)
        cost_fn = None
        if self.use_edge_weights:
            weight_max = max(
                (edge.weight for edge in self.graph.edges()), default=1.0
            )
            scale = weight_max if weight_max > 0 else 1.0

            def cost_fn(_u, _v, stored, _scale=scale):  # noqa: E306
                """Edge-weighted PCST cost (the rejected configuration)."""
                return 1.0 - 0.7 * (stored / _scale)

        frozen = None
        slot_costs = None
        if self.engine == "frozen":
            frozen = self.graph.freeze()
            if cost_fn is not None:
                slot_costs = self._weighted_slot_costs(frozen, cost_fn)
            # cost_fn None -> slot_costs None -> unit costs, the dict
            # default, shared from the frozen view without a copy.

        if self.strong_pruning:
            forest = grow_prune_pcst(
                self.graph, prizes, cost_fn=cost_fn,
                seeds=list(task.terminals),
                frozen=frozen, slot_costs=slot_costs,
            )
        else:
            forest = paper_pcst(
                self.graph,
                prizes,
                cost_fn=cost_fn,
                prune_zero_prize_leaves=self.prune_leaves,
                seeds=list(task.terminals),
                frozen=frozen,
                slot_costs=slot_costs,
            )
        return SubgraphExplanation(
            subgraph=forest,
            task=task,
            method=self.method,
            params={
                "prize_policy": self.prize_policy.value,
                "use_edge_weights": self.use_edge_weights,
                "strong_pruning": self.strong_pruning,
            },
        )

    # ------------------------------------------------------------------
    def _weighted_slot_costs(self, frozen, cost_fn):
        """Per-slot costs for the edge-weighted configuration.

        The cost function depends only on the graph's stored weights, so
        the materialized table is cached per graph version (one O(|E|)
        pass instead of one per task).
        """
        version = self.graph.version
        if (
            self._weighted_costs_cache is None
            or self._weighted_costs_cache[0] != version
        ):
            costs = frozen.costs_from(
                cost_fn, signature=("pcst-weighted", version)
            )
            self._weighted_costs_cache = (version, costs)
        return self._weighted_costs_cache[1]

    def _prizes(self, task: SummaryTask) -> dict[str, float]:
        terminals = set(task.terminals)
        if self.prize_policy is PrizePolicy.BINARY:
            return {t: 1.0 for t in terminals}
        if self.prize_policy is PrizePolicy.WEIGHT_RANGE:
            # §IV-B formal policy: α = max w(e), β = min w(e). Knowledge
            # edges carry w_A = 0, so the meaningful β is the smallest
            # *positive* weight; every non-terminal then holds a small
            # prize — the configuration whose growth keeps far more of
            # the wavefront (the paper's "excessively large" regime when
            # combined with edge weights).
            weights = [edge.weight for edge in self.graph.edges()]
            alpha = max(weights, default=1.0)
            positive = [w for w in weights if w > 0]
            beta = min(positive, default=0.0)
            prizes = {t: alpha for t in terminals}
            if beta > 0:
                for node in self.graph.nodes():
                    if node not in terminals:
                        prizes[node] = beta
            return prizes
        if self.prize_policy is PrizePolicy.DEGREE_CENTRALITY:
            prizes = {t: 1.0 for t in terminals}
            for node in self.graph.nodes():
                if node not in terminals:
                    centrality = self.graph.degree(node) / self._max_degree
                    prizes[node] = self.side_prize * centrality
            return prizes
        if self.prize_policy is PrizePolicy.ITEM_BOOSTED:
            prizes = {t: 1.0 for t in terminals}
            for node in self.graph.nodes_of_type(NodeType.ITEM):
                if node not in terminals:
                    prizes[node] = self.side_prize
            return prizes
        if self.prize_policy is PrizePolicy.PAGERANK:
            scores = self._pagerank_scores()
            prizes = {t: 1.0 for t in terminals}
            for node, score in scores.items():
                if node not in terminals:
                    prizes[node] = self.side_prize * score
            return prizes
        raise ValueError(f"unhandled prize policy {self.prize_policy}")

    def _pagerank_scores(self) -> dict[str, float]:
        """PageRank centrality, computed once per graph version."""
        version = self.graph.version
        if self._pagerank_cache is None or self._pagerank_cache[0] != version:
            from repro.graph.centrality import pagerank

            self._pagerank_cache = (version, pagerank(self.graph))
        return self._pagerank_cache[1]
