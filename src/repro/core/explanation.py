"""Explanation result objects.

Metrics must treat two shapes uniformly:

- the baselines' *path sets* (k standalone paths, possibly overlapping),
  where the paper counts nodes/edges with multiplicity ("the explanation
  paths had a total length of 13"), and
- our *summary subgraphs*, where nodes/edges are unique by construction.

Both are :class:`Explanation` subtypes exposing the same counting views;
:class:`SubgraphExplanation` additionally provides the connection-path
decomposition used by the redundancy metric and verbalization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property

from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import bfs_shortest_path
from repro.graph.types import NodeType, undirected_key


class Explanation:
    """Common counting interface over path-set and subgraph explanations."""

    #: Producing method name ("ST", "PCST", "PGPR", ...).
    method: str = ""

    def node_mentions(self) -> Counter:
        """Node -> number of mentions (multiplicity view)."""
        raise NotImplementedError

    def edge_mentions(self) -> list[tuple[str, str]]:
        """Edge occurrences, with repeats where the explanation repeats."""
        raise NotImplementedError

    @property
    def size_in_edges(self) -> int:
        """``|E_S|`` — the denominator of comprehensibility."""
        return len(self.edge_mentions())

    def unique_nodes(self) -> set[str]:
        """Distinct nodes appearing in the explanation."""
        return set(self.node_mentions())

    def unique_edges(self) -> set[tuple[str, str]]:
        """Distinct (undirected) edges in the explanation."""
        return {undirected_key(u, v) for u, v in self.edge_mentions()}

    def count_nodes_of_type(self, node_type: NodeType) -> int:
        """Mentions of nodes of ``node_type`` (multiplicity view)."""
        return sum(
            count
            for node, count in self.node_mentions().items()
            if NodeType.of(node) is node_type
        )

    @property
    def total_node_mentions(self) -> int:
        """Sum of all node mention counts."""
        return sum(self.node_mentions().values())


@dataclass
class PathSetExplanation(Explanation):
    """The baseline explanation: k separate paths shown side by side."""

    paths: tuple[Path, ...]
    method: str = "paths"

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("empty path set")

    def node_mentions(self) -> Counter:
        """Node -> mention count for this explanation form."""
        counter: Counter = Counter()
        for path in self.paths:
            counter.update(path.nodes)
        return counter

    def edge_mentions(self) -> list[tuple[str, str]]:
        """Edge occurrences for this explanation form."""
        return [key for path in self.paths for key in path.edge_keys()]


@dataclass
class SubgraphExplanation(Explanation):
    """A summary explanation: one connected (sub)graph over the terminals."""

    subgraph: KnowledgeGraph
    task: SummaryTask
    method: str = "summary"
    params: dict = field(default_factory=dict)

    def node_mentions(self) -> Counter:
        """Node -> mention count for this explanation form."""
        return Counter({node: 1 for node in self.subgraph.nodes()})

    def edge_mentions(self) -> list[tuple[str, str]]:
        """Edge occurrences for this explanation form."""
        return [edge.key() for edge in self.subgraph.edges()]

    @property
    def covered_terminals(self) -> set[str]:
        """Terminals actually present (PCST may forfeit unreachable ones)."""
        return {
            t for t in self.task.terminals if t in self.subgraph
        }

    @property
    def terminal_coverage(self) -> float:
        """Fraction of requested terminals included in the summary."""
        return len(self.covered_terminals) / len(self.task.terminals)

    @cached_property
    def connection_paths(self) -> tuple[Path, ...]:
        """Decomposition into focus-to-anchor paths inside the summary.

        For a user-centric summary this recovers, for each recommended
        item, the (unique, since the summary is a tree) route from the
        user to that item — the per-recommendation reading of the summary
        that the redundancy metric and the verbalizer work from.
        """
        paths: list[Path] = []
        focus_nodes = [f for f in self.task.focus if f in self.subgraph]
        if not focus_nodes:
            return ()
        for anchor in self.task.anchors:
            if anchor not in self.subgraph:
                continue
            best: list[str] | None = None
            for focus in focus_nodes:
                nodes = bfs_shortest_path(self.subgraph, focus, anchor)
                if nodes is not None and (
                    best is None or len(nodes) < len(best)
                ):
                    best = nodes
            if best is not None and len(best) >= 2:
                paths.append(Path(nodes=tuple(best)))
        return tuple(paths)
