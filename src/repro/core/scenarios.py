"""The four summarization scenarios and their terminal/path sets (§III).

Each scenario reduces to the same optimization problem over different
inputs; :class:`SummaryTask` is that normal form:

=============  =======================  =====================  ============
scenario       terminals ``T``          input paths ``P``      anchors ``S``
=============  =======================  =====================  ============
user-centric   ``{u} ∪ R_u``            ``E_u``                ``R_u``
item-centric   ``{i} ∪ C_i``            ``E_i``                ``C_i``
user-group     ``D ∪ R_D``              ``E_D``                ``R_D``
item-group     ``F ∪ C_F``              ``E_F``                ``C_F``
=============  =======================  =====================  ============

``anchors`` is the set the paper calls ``S`` in Eq. (1) — the nodes whose
explanation paths weight the summarization; ``focus`` is the explained
side (the user(s) in user scenarios, the item(s) in item scenarios), used
by verbalization and the redundancy decomposition.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.graph.paths import Path
from repro.recommenders.base import Recommendation, RecommendationList


class Scenario(Enum):
    """Summary granularity."""

    USER_CENTRIC = "user-centric"
    ITEM_CENTRIC = "item-centric"
    USER_GROUP = "user-group"
    ITEM_GROUP = "item-group"

    @property
    def is_group(self) -> bool:
        """True for the user-group / item-group granularities."""
        return self in (Scenario.USER_GROUP, Scenario.ITEM_GROUP)


@dataclass(frozen=True)
class SummaryTask:
    """Normal-form summarization input (see module docstring)."""

    scenario: Scenario
    terminals: tuple[str, ...]
    paths: tuple[Path, ...]
    anchors: tuple[str, ...]
    focus: tuple[str, ...]
    k: int = 0

    def __post_init__(self) -> None:
        if not self.terminals:
            raise ValueError("a summary task needs at least one terminal")
        terminal_set = set(self.terminals)
        for anchor in self.anchors:
            if anchor not in terminal_set:
                raise ValueError(
                    f"anchor {anchor!r} missing from terminals"
                )
        for node in self.focus:
            if node not in terminal_set:
                raise ValueError(f"focus {node!r} missing from terminals")


def _dedupe(values) -> tuple[str, ...]:
    return tuple(dict.fromkeys(values))


def user_centric_task(
    recommendations: RecommendationList, k: int
) -> SummaryTask:
    """``T = {u} ∪ R_u`` from one user's top-k list."""
    top = recommendations.top(k)
    if not top:
        raise ValueError(
            f"user {recommendations.user!r} has no recommendations"
        )
    items = _dedupe(rec.item for rec in top)
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=_dedupe((recommendations.user, *items)),
        paths=tuple(rec.path for rec in top),
        anchors=items,
        focus=(recommendations.user,),
        k=k,
    )


def item_centric_task(
    item: str, recommendations: Sequence[Recommendation]
) -> SummaryTask:
    """``T = {i} ∪ C_i`` from the recommendations pointing at ``item``."""
    relevant = [rec for rec in recommendations if rec.item == item]
    if not relevant:
        raise ValueError(f"item {item!r} was not recommended to anyone")
    users = _dedupe(rec.user for rec in relevant)
    return SummaryTask(
        scenario=Scenario.ITEM_CENTRIC,
        terminals=_dedupe((item, *users)),
        paths=tuple(rec.path for rec in relevant),
        anchors=users,
        focus=(item,),
    )


def user_group_task(
    group: Sequence[str],
    per_user: Mapping[str, RecommendationList],
    k: int,
) -> SummaryTask:
    """``T = D ∪ R_D`` for a user group ``D``."""
    users = _dedupe(group)
    if not users:
        raise ValueError("empty user group")
    paths: list[Path] = []
    items: list[str] = []
    for user in users:
        rec_list = per_user.get(user)
        if rec_list is None:
            raise KeyError(f"no recommendations for group member {user!r}")
        for rec in rec_list.top(k):
            paths.append(rec.path)
            items.append(rec.item)
    if not paths:
        raise ValueError("no recommendations across the group")
    item_terminals = _dedupe(items)
    return SummaryTask(
        scenario=Scenario.USER_GROUP,
        terminals=_dedupe((*users, *item_terminals)),
        paths=tuple(paths),
        anchors=item_terminals,
        focus=users,
        k=k,
    )


def item_group_task(
    group: Sequence[str],
    by_item: Mapping[str, Sequence[Recommendation]],
) -> SummaryTask:
    """``T = F ∪ C_F`` for an item group ``F``."""
    items = _dedupe(group)
    if not items:
        raise ValueError("empty item group")
    paths: list[Path] = []
    users: list[str] = []
    present_items: list[str] = []
    for item in items:
        for rec in by_item.get(item, ()):
            paths.append(rec.path)
            users.append(rec.user)
            present_items.append(item)
    if not paths:
        raise ValueError("no recommendations across the item group")
    user_terminals = _dedupe(users)
    return SummaryTask(
        scenario=Scenario.ITEM_GROUP,
        terminals=_dedupe((*_dedupe(present_items), *user_terminals)),
        paths=tuple(paths),
        anchors=user_terminals,
        focus=_dedupe(present_items),
    )
