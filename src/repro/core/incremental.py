"""Incremental ST summaries across the top-k sweep (extension).

The experiments need ``S_1, S_2, ..., S_K`` for every subject (the
consistency metric is defined over that sequence). Running Algorithm 1
from scratch per k costs ``Σ_k k·Dijkstra``; since the terminal sets are
nested (``T_k ⊂ T_{k+1}``), the metric closure computed once for ``T_K``
already contains every closure the smaller k need.

:class:`IncrementalSteinerSummarizer` computes that closure once
(K+1 single-source Dijkstras) and then derives each ``S_k`` with an MST
over the cached closure plus the cached shortest-path unfoldings —
a ~K× speedup over the naive sweep.

Approximation note: Eq. (1)'s boost depends on k through ``freq/|S|``
(paths and anchors of the *current* k). The incremental variant fixes
the weighting at ``k = K``; for λ ∈ {0.01, 100} the cost surface is
saturated and the trees coincide with the per-k computation, for λ ≈ 1
they may differ slightly. The figure benches use the exact per-k
computation; this class serves interactive/production use where the
sweep dominates latency.
"""

from __future__ import annotations

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask, user_centric_task
from repro.core.weighting import ExplanationWeighting
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import (
    dijkstra,
    dijkstra_frozen,
    reconstruct_path,
)
from repro.graph.steiner import _prune_non_terminal_leaves
from repro.graph.subgraph import edge_subgraph
from repro.graph.types import undirected_key
from repro.recommenders.base import RecommendationList


class IncrementalSteinerSummarizer:
    """Shared-closure ST summaries for nested terminal sets."""

    method = "ST"

    def __init__(
        self,
        graph: KnowledgeGraph,
        lam: float = 1.0,
        weight_influence: float = 0.7,
    ) -> None:
        self.graph = graph
        self.lam = lam
        self.weight_influence = weight_influence

    def summaries_for_ks(
        self, recommendations: RecommendationList, k_max: int
    ) -> list[SubgraphExplanation]:
        """``[S_1, ..., S_k_max]`` for one user's top-k sweep."""
        k_max = min(k_max, len(recommendations))
        if k_max < 1:
            raise ValueError("need at least one recommendation")
        full_task = user_centric_task(recommendations, k_max)
        weighting = ExplanationWeighting(
            graph=self.graph,
            task=full_task,
            lam=self.lam,
            weight_influence=self.weight_influence,
        )
        cost_fn = weighting.cost_fn()

        terminals = list(full_task.terminals)
        frozen = self.graph.freeze()
        slot_costs = weighting.slot_costs(frozen)
        closure, shortest = self._metric_closure(
            terminals, cost_fn, frozen, slot_costs
        )

        summaries = []
        for k in range(1, k_max + 1):
            task = user_centric_task(recommendations, k)
            tree = self._tree_for(
                list(task.terminals), closure, shortest, cost_fn
            )
            summaries.append(
                SubgraphExplanation(
                    subgraph=tree,
                    task=task,
                    method=self.method,
                    params={
                        "lam": self.lam,
                        "weight_influence": self.weight_influence,
                        "algorithm": "kmb-incremental",
                    },
                )
            )
        return summaries

    # ------------------------------------------------------------------
    def _metric_closure(self, terminals, cost_fn, frozen=None, slot_costs=None):
        """All-pairs terminal distances + paths, one Dijkstra per terminal.

        Runs on the frozen CSR view when given one (identical results,
        see :mod:`repro.graph.csr`); falls back to the dict traversal.
        """
        closure: dict[tuple[str, str], float] = {}
        shortest: dict[tuple[str, str], list[str]] = {}
        for index, source in enumerate(terminals):
            later = terminals[index + 1 :]
            if not later:
                break
            if frozen is not None:
                dist, prev = dijkstra_frozen(
                    frozen, source, costs=slot_costs, targets=set(later)
                )
            else:
                dist, prev = dijkstra(
                    self.graph, source, cost_fn=cost_fn, targets=set(later)
                )
            # List order, not set order: see steiner_tree — closure edge
            # order feeds stable MST tie-breaking.
            for target in later:
                if target not in dist:
                    raise ValueError(
                        f"terminals {source!r}, {target!r} disconnected"
                    )
                key = undirected_key(source, target)
                closure[key] = dist[target]
                shortest[key] = reconstruct_path(prev, source, target)
        return closure, shortest

    def _tree_for(self, terminals, closure, shortest, cost_fn):
        """Algorithm 1 steps 7-14 against the cached closure."""
        if len(terminals) == 1:
            only = KnowledgeGraph()
            only.add_node(terminals[0])
            return only
        closure_edges = [
            (a, b, closure[undirected_key(a, b)])
            for i, a in enumerate(terminals)
            for b in terminals[i + 1 :]
        ]
        closure_mst = kruskal_mst(terminals, closure_edges)
        unfolded: dict[tuple[str, str], float] = {}
        for a, b, _w in closure_mst:
            for u, v in zip(
                shortest[undirected_key(a, b)],
                shortest[undirected_key(a, b)][1:],
            ):
                unfolded[undirected_key(u, v)] = self.graph.weight(u, v)
        nodes = sorted({n for key in unfolded for n in key})
        tree_edges = kruskal_mst(
            nodes,
            [(u, v, cost_fn(u, v, w)) for (u, v), w in unfolded.items()],
        )
        tree = edge_subgraph(
            self.graph, {undirected_key(u, v) for u, v, _ in tree_edges}
        )
        _prune_non_terminal_leaves(tree, set(terminals))
        return tree
