"""Batch summarization engine: freeze once, memoize closures, time everything.

Serving summary explanations to many users means answering many
:class:`SummaryTask`s over the *same* knowledge graph. Running the
facade :class:`~repro.core.summarizer.Summarizer` in a loop repeats work
that is identical across tasks:

- the CSR compilation of the graph (``graph.freeze()`` — shared here,
  computed once up front and version-checked);
- the terminal-to-terminal Dijkstra runs of the ST metric closure —
  popular items appear as terminals in many users' tasks, and every
  λ=0 task shares one uniform cost surface, so
  :class:`TerminalClosureCache` memoizes ``(source, cost-signature) ->
  (dist, prev)`` in an LRU and reuses a run whenever its settled set
  covers the targets a new task needs.

Cache reuse is exact, not approximate: a Dijkstra's settle sequence does
not depend on its early-exit target set (targets only decide when the
loop *stops*), so a longer run's ``(dist, prev)`` agrees with a fresh
shorter run on every entry the Steiner construction reads. Predecessor
chains are safe because Eq. (1) costs are bounded below by ``1 - ρ > 0``
— every node on a shortest path settles strictly before its target.

A second tier (``partial_reuse``, default on in the batch engine)
extends reuse to λ>0 workloads whose tasks boost *different* edges:
base-cost (unit) Dijkstra runs are memoized once per node — bounded to
the radius the task actually needs — and recombined with each task's
boosted edges through a small overlay graph (see
:meth:`TerminalClosureCache._patched_closure`). Distances are exact and
accumulated in the same fold order as a cold run, and the summarizer's
canonical-SPT reconstruction (see
:func:`repro.graph.steiner.canonical_shortest_path`) picks predecessors
from those distances alone — so derived closures produce bit-identical
summaries to cold runs, which is what lets the tier default on.

Batch *execution* moved to the service layer: a long-lived
:class:`repro.api.ExplanationSession` owns the frozen view, the
shared-memory export, the warm process pool and this module's
:class:`TerminalClosureCache`, and dispatches serial / thread-pool /
process-pool runs. :class:`BatchSummarizer` remains as a thin deprecated
shim over a private session so existing call sites keep working
(bit-identical results, same report format) while emitting a
``DeprecationWarning``.

JSONL (de)serialization for task files lives here too — the CLI
``batch`` subcommand reads one task per line.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import warnings
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.core.summarizer import METHODS
from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.shortest_paths import dijkstra_frozen, dijkstra_indexed

#: Cache-key marker for base-cost (all-unit) Dijkstra runs — a sentinel
#: no real cost signature can equal, so base entries and per-signature
#: closure entries share one LRU without colliding.
_BASE_COSTS = ("__base-unit__",)


def _fold_units(value: float, steps: float) -> float:
    """Append ``steps`` unit edges to a distance, one ``+ 1.0`` at a time.

    ``steps`` is an exact integer-valued float (a unit-cost Dijkstra
    distance). Floating-point addition is not associative, so
    ``value + steps`` can differ in the last ulp from what a cold
    Dijkstra accumulates walking the same segment edge by edge; folding
    reproduces the cold accumulation order bit-for-bit, which the
    canonical-SPT equality test relies on.
    """
    for _ in range(int(steps)):
        value += 1.0
    return value


class _OverlayDistances(dict):
    """Id-keyed boosted distances with lazy off-target lookups.

    Explicit entries (plain dict items) are the requested targets — the
    keys the closure cache's covering check and the Steiner closure
    read. ``get`` additionally answers any other node by folding the
    memoized base runs through the overlay hub distances
    (``min over hubs of fold(h_dist[hub], base_dist[hub][node])``),
    which is exactly the decomposition a cold run's distance surface
    realizes — bit-equal values, computed on demand. That lazy surface
    is what canonical-SPT path reconstruction scans, so closures
    derived here reconstruct the *same* canonical paths as cold runs.

    Lazy values are memoized in a side table rather than into the
    mapping itself: ``keys()`` must keep meaning "targets whose
    predecessor chains were recorded", which the cache's reuse check
    relies on, while canonical reconstruction re-queries shared path
    prefixes often enough that recomputing the min-fold would hurt.
    """

    __slots__ = ("_frozen", "_base", "_h_dist", "_memo")

    def __init__(self, frozen, base, h_dist):
        super().__init__()
        self._frozen = frozen
        self._base = base
        self._h_dist = h_dist
        self._memo: dict = {}

    def get(self, key, default=None):
        if key in self:
            return dict.__getitem__(self, key)
        if key in self._memo:
            value = self._memo[key]
            return value if value is not None else default
        index = self._frozen._index.get(key)
        if index is None:
            self._memo[key] = None
            return default
        best = None
        h_dist = self._h_dist
        for hub, (base_dist, _prev) in self._base.items():
            through = h_dist.get(hub)
            if through is None:
                continue
            leg = base_dist.get(index)
            if leg is None:
                continue
            value = _fold_units(through, leg)
            if best is None or value < best:
                best = value
        self._memo[key] = best
        return best if best is not None else default


class TerminalClosureCache:
    """LRU memo of single-source Dijkstra runs over a frozen view.

    Keyed by ``(source id, cost signature)``. An entry is reusable for a
    request whenever every requested target is in its settled set; on a
    miss the fresh run replaces the entry if it settled more nodes.
    Thread-safe (the batch engine shares one cache across workers); the
    Dijkstra itself runs outside the lock, so concurrent misses on the
    same key merely duplicate work, never corrupt results.

    λ-aware partial reuse (``partial_reuse=True``) adds a second tier
    for boosted cost surfaces — Eq. (1) surfaces that are the unit base
    patched on a handful of boosted slots (declared via
    ``FrozenCosts.overrides``). On an exact-signature miss the closure
    is *derived* instead of recomputed from scratch: radius-bounded
    base-cost runs from the source and from every boosted-edge endpoint
    (memoized under a shared base key, so they cut across tasks with
    **disjoint** boost sets) are recombined through a tiny overlay graph
    whose nodes are the boosted endpoints and whose edges are base
    distances plus the boosted edges themselves. Distances are exact
    (boosts only ever lower costs, so every shortest path decomposes
    into base segments joined at boosted edges) and bit-equal to a cold
    run's (unit segments are re-folded in cold accumulation order); the
    returned ``dist`` also answers lazy off-target lookups, so the
    summarizer's canonical-SPT reconstruction recovers the *same* paths
    a cold run would. The raw ``prev`` chains still reflect overlay
    hop order — consumers that want heap-order chains verbatim (and
    only those) should keep the tier off.
    """

    #: Partial-reuse bail-out: with more boosted-edge endpoints than
    #: this, the per-hub base runs + O(hubs^2) overlay cost more than
    #: the single early-exit fresh run they replace.
    MAX_OVERLAY_HUBS = 48

    def __init__(
        self, maxsize: int = 4096, partial_reuse: bool = False
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.partial_reuse = partial_reuse
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self.base_hits = 0
        self.base_misses = 0
        # Second-tier (shared store) lookups; stay 0 on this class —
        # :class:`repro.cache.StoreBackedClosureCache` counts into them.
        self.store_hits = 0
        self.store_misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._frozen = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters kept)."""
        with self._lock:
            self._entries.clear()
            self._frozen = None

    def pair_fn(self, frozen, costs):
        """``(source, rest) -> (dist, prev)`` hook bound to one frozen view.

        Entries from an older frozen view (a re-freeze after graph
        mutation) are discarded wholesale — version-keyed staleness is
        handled here so callers never see distances from a dead graph.
        """
        with self._lock:
            if frozen is not self._frozen:
                self._entries.clear()
                self._frozen = frozen
        signature = costs.signature

        def pairs(source: str, rest: set[str]):
            key = (source, signature)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and rest <= entry[0].keys():
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry
            # Local miss: consult the shared tier (a no-op here; the
            # store-backed subclass fetches a sibling worker's run),
            # then derive, then compute fresh — publishing only fresh
            # plain-dict runs back to the tier.
            result = self._tier_fetch(frozen, source, signature, rest)
            if result is not None:
                with self._lock:
                    self.hits += 1
            else:
                if self.partial_reuse and getattr(
                    costs, "overrides", None
                ):
                    result = self._patched_closure(
                        frozen, costs, source, rest
                    )
                if result is not None:
                    with self._lock:
                        self.patched += 1
                else:
                    result = dijkstra_frozen(
                        frozen, source, costs=costs, targets=rest
                    )
                    with self._lock:
                        self.misses += 1
                    self._tier_publish(
                        frozen, source, signature, result[0], result[1]
                    )
            dist, prev = result
            with self._lock:
                # The cache may have been rebound to a newer frozen view
                # while this Dijkstra ran; our result is still valid for
                # our caller, but must not repopulate the new view's
                # cache with pre-mutation distances.
                if frozen is self._frozen:
                    current = self._entries.get(key)
                    if current is None or len(current[0]) < len(dist):
                        self._entries[key] = (dist, prev)
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.maxsize:
                            self._entries.popitem(last=False)
            return dist, prev

        return pairs

    # ------------------------------------------------------------------
    # λ-aware partial reuse: base runs + boosted-edge overlay
    # ------------------------------------------------------------------
    @staticmethod
    def _base_entry_covers(entry, radius, required) -> bool:
        """Does a cached base run cover this request?

        Entries record the radius they are *complete through* (``None``
        = whole component settled). A required-set request is covered
        once every required node appears — bounded entries only contain
        nodes within their bound, so membership implies the entry is
        complete through the farthest required distance, which is the
        radius the caller derives from it.
        """
        dist, _prev, bound = entry
        if bound is None:
            return True
        if required is not None:
            return required <= dist.keys()
        return radius is not None and bound >= radius

    def _base_run(
        self,
        frozen,
        index: int,
        radius: float | None = None,
        required: set[int] | None = None,
    ):
        """Bounded unit-cost Dijkstra from a node, memoized.

        These runs are λ-independent — every boosted surface shares
        them — so entries keyed ``(index, _BASE_COSTS)`` are the tier
        that cuts across tasks with disjoint boost sets. Instead of
        settling whole components, runs are *radius-bounded*: a
        ``required`` request settles through the farthest required
        node's distance tier (``cover_targets``), a ``radius`` request
        through the given bound — either way the entry is complete
        through its recorded bound and is reused for any request it
        covers, deepened (recomputed and replaced) otherwise. Returns
        the index-keyed ``(dist, prev)`` of ``dijkstra_indexed``.
        Lookups count into ``base_hits``/``base_misses``, not
        ``hits``/``misses`` — the report's closure hit rate stays about
        closure requests.
        """
        key = (index, _BASE_COSTS)
        with self._lock:
            # Base keys are index-keyed, and a dense index means a
            # different node on a different frozen view — so reads (like
            # every write path) are only valid against the view this
            # cache is currently bound to. A stale caller computes fresh.
            entry = (
                self._entries.get(key)
                if frozen is self._frozen
                else None
            )
            if entry is not None and self._base_entry_covers(
                entry, radius, required
            ):
                self._entries.move_to_end(key)
                self.base_hits += 1
                return entry[0], entry[1]
        fetched = self._tier_fetch_base(frozen, index, radius, required)
        if fetched is not None:
            dist, prev, bound = fetched
            with self._lock:
                self.base_hits += 1
            self._remember_base(frozen, key, dist, prev, bound)
            return dist, prev
        if required:
            dist, prev = dijkstra_indexed(
                frozen,
                index,
                costs=frozen.shared_unit_costs(),
                targets=set(required),
                cover_targets=True,
            )
            # Unreachable required nodes mean the heap ran dry: the
            # whole component settled, so the run is complete.
            bound = (
                None
                if required - dist.keys()
                else dist[next(reversed(dist))]
            )
        else:
            dist, prev = dijkstra_indexed(
                frozen,
                index,
                costs=frozen.shared_unit_costs(),
                radius=radius,
            )
            bound = radius
        with self._lock:
            self.base_misses += 1
        self._remember_base(frozen, key, dist, prev, bound)
        self._tier_publish_base(frozen, index, dist, prev, bound)
        return dist, prev

    def _remember_base(self, frozen, key, dist, prev, bound) -> None:
        """Insert one base entry, replace-if-more-settled (LRU-trimmed)."""
        with self._lock:
            if frozen is self._frozen:
                current = self._entries.get(key)
                # Replace when the new run settled more — or settled
                # the same nodes under a deeper bound (an empty
                # annulus): keeping the shallow bound would re-run the
                # identical Dijkstra on every future deeper request.
                if current is None or len(current[0]) < len(dist) or (
                    len(current[0]) == len(dist)
                    and current[2] is not None
                    and (bound is None or bound > current[2])
                ):
                    self._entries[key] = (dist, prev, bound)
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.maxsize:
                        self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Shared-tier hooks (no-ops here; see repro.cache.readthrough)
    # ------------------------------------------------------------------
    def _tier_fetch(self, frozen, source, signature, rest):
        """Second-tier closure lookup: ``(dist, prev)`` or None."""
        return None

    def _tier_publish(self, frozen, source, signature, dist, prev) -> None:
        """Offer one fresh closure run to the second tier."""

    def _tier_fetch_base(self, frozen, index, radius, required):
        """Second-tier base-run lookup: ``(dist, prev, bound)`` or None."""
        return None

    def _tier_publish_base(
        self, frozen, index, dist, prev, bound
    ) -> None:
        """Offer one fresh base run to the second tier."""

    def _patched_closure(self, frozen, costs, source: str, rest: set[str]):
        """Derive a boosted closure from base runs + an overlay graph.

        Exact by decomposition: boosts only lower slot costs, so any
        shortest path under the boosted surface splits into base-cost
        segments joined at boosted edges. The overlay graph has the
        source, the boosted-edge endpoints and the targets as nodes;
        base distances (from memoized radius-bounded unit runs) and the
        boosted edges as weighted edges. A Dijkstra over that handful
        of nodes yields the exact boosted distances, and expanding its
        hops through the base predecessor chains yields exact shortest
        paths.

        Two properties make the derivation interchangeable with a cold
        run:

        - *Fold-order parity*: overlay relaxations add unit base
          segments one ``+ 1.0`` at a time (:func:`_fold_units`), the
          same floating-point accumulation order as a cold heap walking
          the segment edge by edge — derived distances are bit-equal to
          cold ones, not merely mathematically equal.
        - *Radius bounds*: the source's base run settles through the
          farthest requested target's distance tier, which bounds every
          base segment a shortest boosted path can use; the per-hub
          runs are clipped to that radius instead of settling whole
          components (the ROADMAP's "early-bounded base runs" item).

        Returns id-keyed ``(dist, prev)`` covering the reachable
        targets — ``dist`` is an :class:`_OverlayDistances` view that
        also answers (bit-exact) lazy lookups for any settled node, the
        surface canonical-SPT reconstruction scans — or None when the
        override structure is not the symmetric-decrease shape the
        decomposition needs (the caller then falls back to a fresh run).
        """
        edges: dict[tuple[int, int], float] = {}
        slot_count: dict[tuple[int, int], int] = {}
        for slot, value in costs.overrides:
            if value > 1.0:
                return None
            u, v = frozen.slot_endpoints(slot)
            key = (u, v) if u < v else (v, u)
            if key in edges and edges[key] != value:
                return None
            edges[key] = value
            slot_count[key] = slot_count.get(key, 0) + 1
        if any(count != 2 for count in slot_count.values()):
            return None

        ids = frozen.ids
        source_idx = frozen.index_of(source)
        target_of = {}
        for target in sorted(rest):
            if target in frozen:
                target_of[frozen.index_of(target)] = target
        hubs = [source_idx] + sorted(
            {i for pair in edges for i in pair} - {source_idx}
        )
        if len(hubs) > self.MAX_OVERLAY_HUBS:
            # One bounded base run per hub plus an O(hubs^2) overlay
            # only beats a single early-exit fresh run while the boost
            # set is small; past this point fall back to the fresh run.
            return None
        # The source run doubles as the radius oracle: it settles
        # through the farthest requested target's distance tier, and
        # that distance bounds every base segment on any shortest
        # boosted path to a target (boosts only shorten paths, so
        # boosted distances never exceed the base distance from the
        # source — hubs beyond the bound can't lie on a useful path).
        required = set(target_of) - {source_idx}
        source_dist, source_prev = self._base_run(
            frozen, source_idx, required=required
        )
        radius = max(
            (source_dist[x] for x in required if x in source_dist),
            default=0.0,
        )
        base = {source_idx: (source_dist, source_prev)}
        for hub in hubs[1:]:
            base[hub] = self._base_run(frozen, hub, radius=radius)
        h_nodes = sorted(set(hubs) | set(target_of))

        boosted_adj: dict[int, list[tuple[int, float]]] = {}
        for (u, v), value in edges.items():
            boosted_adj.setdefault(u, []).append((v, value))
            boosted_adj.setdefault(v, []).append((u, value))

        heap: AddressableHeap[int] = AddressableHeap()
        heap.push(source_idx, 0.0)
        h_dist: dict[int, float] = {}
        h_prev: dict[int, tuple[int, bool]] = {}
        tentative: dict[int, tuple[int, bool]] = {}
        while heap:
            node, d = heap.pop_min()
            h_dist[node] = d
            if node in tentative:
                h_prev[node] = tentative[node]
            base_run = base.get(node)
            if base_run is None:
                continue  # plain targets are sinks in the overlay
            base_dist = base_run[0]
            for other in h_nodes:
                if other in h_dist or other == node:
                    continue
                base_d = base_dist.get(other)
                if base_d is not None and heap.decrease_if_lower(
                    other, _fold_units(d, base_d)
                ):
                    tentative[other] = (node, False)
            for other, value in boosted_adj.get(node, ()):
                if other in h_dist:
                    continue
                if heap.decrease_if_lower(other, d + value):
                    tentative[other] = (node, True)

        dist = _OverlayDistances(frozen, base, h_dist)
        prev: dict[str, str] = {}
        for t_idx in sorted(target_of):
            if t_idx not in h_dist:
                continue  # disconnected, exactly like the fresh run
            dist[target_of[t_idx]] = h_dist[t_idx]
            path = self._expand_overlay_path(base, h_prev, source_idx, t_idx)
            # First-writer-wins keeps every recorded chain a shortest
            # path: each written node carries its exact boosted distance,
            # so splicing a later path onto an earlier one at a shared
            # node preserves both length and termination at the source.
            for above, node in zip(path, path[1:]):
                prev.setdefault(ids[node], ids[above])
        return dist, prev

    @staticmethod
    def _expand_overlay_path(base, h_prev, source_idx: int, t_idx: int):
        """Expand an overlay hop sequence into a full index path."""
        hops = []
        node = t_idx
        while node != source_idx:
            above, boosted = h_prev[node]
            hops.append((above, node, boosted))
            node = above
        hops.reverse()
        path = [source_idx]
        for above, node, boosted in hops:
            if boosted:
                path.append(node)
                continue
            chain = [node]
            base_prev = base[above][1]
            while chain[-1] != above:
                chain.append(base_prev[chain[-1]])
            chain.reverse()
            path.extend(chain[1:])
        return path


#: Valid ``TaskFailure.cause`` values: the worker process died while
#: holding the task ("crash"), the task blew its per-task deadline and
#: its worker was terminated ("timeout"), or the task itself raised /
#: produced an undecodable result ("error").
FAILURE_CAUSES = ("crash", "timeout", "error")


@dataclass(frozen=True)
class TaskFailure:
    """Why one task inside a batch did not produce an explanation.

    Carried on :attr:`BatchResult.failure` when the resilience layer
    (see :class:`repro.serving.config.ResilienceConfig`) exhausts a
    task's retry budget — the batch's other tasks complete normally.
    ``retries`` is how many times this task was re-queued before the
    pool gave up on it.
    """

    cause: str
    message: str = ""
    retries: int = 0

    def __post_init__(self) -> None:
        if self.cause not in FAILURE_CAUSES:
            raise ValueError(
                f"unknown failure cause {self.cause!r}; expected one of "
                f"{FAILURE_CAUSES}"
            )
        if self.retries < 0:
            raise ValueError("failure retries must be >= 0")

    def __str__(self) -> str:
        note = f" after {self.retries} retry(ies)" if self.retries else ""
        return f"[{self.cause}]{note} {self.message}".rstrip()


@dataclass(frozen=True)
class BatchResult:
    """One task's outcome inside a batch.

    ``seconds`` is worker-measured compute time — the clock starts when
    a worker picks the task up and stops when its summary is done, so
    queue wait and result-pipe transit are excluded on every backend.

    Exactly one of ``explanation`` / ``failure`` is set: a task the
    resilience layer gave up on (crash/timeout past the retry budget,
    undecodable result) carries a typed :class:`TaskFailure` instead
    of an explanation, so streamed batches still yield one result per
    task and end-count verification holds over the wire.

    ``trace`` is only populated when the session runs with
    ``ObservabilityConfig(trace=True)``: a plain-JSON dict holding the
    request's ``trace_id`` and this task's span list (queue wait,
    worker compute/encode, store fetches — see :mod:`repro.obs.trace`).
    It travels as an optional protocol field, still
    ``protocol_version: 1``.
    """

    index: int
    task: SummaryTask
    explanation: SubgraphExplanation | None
    seconds: float
    failure: TaskFailure | None = None
    trace: dict | None = None

    def __post_init__(self) -> None:
        if (self.explanation is None) == (self.failure is None):
            raise ValueError(
                "exactly one of explanation/failure must be set"
            )

    @property
    def ok(self) -> bool:
        """True when the task produced an explanation."""
        return self.failure is None

    @property
    def latency_ms(self) -> float:
        """Worker-measured per-task latency in milliseconds."""
        return self.seconds * 1000.0


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run measured."""

    method: str
    results: tuple[BatchResult, ...]
    freeze_seconds: float
    total_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_patched: int = 0
    cache_base_hits: int = 0
    cache_base_misses: int = 0
    #: Shared closure-store lookups this batch made (0 with the store
    #: off — see :class:`repro.cache.ClosureStoreConfig`). A store hit
    #: also counts as a ``cache_hits`` closure hit: the request was
    #: served without a fresh Dijkstra, just from the cross-worker tier.
    store_hits: int = 0
    store_misses: int = 0
    workers: int = 0
    parallel: str = "serial"
    #: Dispatch discipline that produced this report: "work-stealing"
    #: or "chunked" for pooled backends, "" for serial runs.
    scheduler: str = ""
    #: How many task re-queues (after worker crashes / deadline kills)
    #: this batch absorbed; 0 on an incident-free run. The companion
    #: ``failed`` count is derived from the results.
    retried: int = 0

    def to_dict(self) -> dict:
        """Lossless plain-JSON form of the whole report.

        Delegates to :func:`repro.api.protocol.report_to_json` so server
        responses, bench artifacts and :meth:`from_dict` all share one
        versioned schema. Includes every constructor field (scheduler,
        all five cache counters) plus the derived ``latency_p50_ms`` /
        ``latency_p95_ms`` / ``throughput`` for artifact consumers.
        """
        from repro.api import protocol

        return protocol.report_to_json(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        """Rebuild a report from :meth:`to_dict` output (lossless)."""
        from repro.api import protocol

        return protocol.report_from_json(data)

    @property
    def explanations(self) -> list[SubgraphExplanation]:
        """Per-task explanations, in input order (None for failures)."""
        return [r.explanation for r in self.results]

    @property
    def failed(self) -> int:
        """Tasks that ended as typed :class:`TaskFailure` results."""
        return sum(1 for r in self.results if r.failure is not None)

    @property
    def task_seconds(self) -> list[float]:
        """Per-task wall-clock seconds, in input order."""
        return [r.seconds for r in self.results]

    @property
    def latency_p50_ms(self) -> float:
        """Median worker-measured task latency (ms); 0.0 when empty."""
        return self._latency_percentile(0.50)

    @property
    def latency_p95_ms(self) -> float:
        """95th-percentile worker-measured task latency (ms)."""
        return self._latency_percentile(0.95)

    def _latency_percentile(self, q: float) -> float:
        if not self.results:
            return 0.0
        ordered = sorted(r.latency_ms for r in self.results)
        return ordered[min(len(ordered) - 1, int(len(ordered) * q))]

    @property
    def throughput(self) -> float:
        """Tasks per second over the whole run (freeze included).

        A trivially small batch can finish inside one timer tick, so a
        zero or near-zero elapsed denominator reports 0.0 instead of
        dividing through to ``inf``/absurdly large rates.
        """
        if not self.results or self.total_seconds < 1e-9:
            return 0.0
        return len(self.results) / self.total_seconds

    def summary(self) -> str:
        """Human-readable one-screen report."""
        seconds = self.task_seconds
        headline = (
            f"batch method={self.method} tasks={len(self.results)} "
            f"parallel={self.parallel} workers={self.workers}"
        )
        if self.scheduler:
            headline += f" scheduler={self.scheduler}"
        lines = [
            headline,
            f"  total      {self.total_seconds * 1000.0:10.1f} ms",
            f"  freeze     {self.freeze_seconds * 1000.0:10.1f} ms",
            f"  throughput {self.throughput:10.1f} tasks/s",
        ]
        if seconds:
            lines.append(
                f"  per-task   mean {sum(seconds) / len(seconds) * 1000.0:.2f} ms"
                f" | p50 {self.latency_p50_ms:.2f} ms"
                f" | p95 {self.latency_p95_ms:.2f} ms"
                f" | max {max(seconds) * 1000.0:.2f} ms"
            )
        if self.cache_hits or self.cache_misses:
            total = self.cache_hits + self.cache_misses
            lines.append(
                f"  closures   {self.cache_hits}/{total} cache hits "
                f"({self.cache_hits / total:.0%})"
            )
        if self.cache_patched:
            base_total = self.cache_base_hits + self.cache_base_misses
            lines.append(
                f"  patched    {self.cache_patched} closures derived "
                f"from base runs (λ-aware reuse; "
                f"{self.cache_base_hits}/{base_total} base-run hits)"
            )
        if self.store_hits or self.store_misses:
            store_total = self.store_hits + self.store_misses
            lines.append(
                f"  store      {self.store_hits}/{store_total} "
                f"shared-store hits "
                f"({self.store_hits / store_total:.0%})"
            )
        if self.failed or self.retried:
            lines.append(
                f"  resilience {self.failed} task(s) failed, "
                f"{self.retried} retry(ies) absorbed"
            )
        return "\n".join(lines)


#: Backend choices for :class:`BatchSummarizer`; None means "auto".
PARALLEL_BACKENDS = ("serial", "threads", "processes")

#: Counter attributes mirrored between caches and reports.
_STAT_KEYS = (
    "hits",
    "misses",
    "patched",
    "base_hits",
    "base_misses",
    "store_hits",
    "store_misses",
)

#: Infrastructure failures that demote the process backend to a local
#: run instead of failing the batch: shared-memory/pool setup errors,
#: a broken pool (worker died in init), unpicklable inputs. Task-level
#: exceptions (e.g. disconnected terminals) are *not* in this set — they
#: propagate exactly like a serial run's.
_PROCESS_FALLBACK_ERRORS = (
    OSError,
    BrokenProcessPool,
    pickle.PicklingError,
    ImportError,
)


def _cache_counters(cache) -> dict[str, int]:
    """Snapshot a closure cache's counters (zeros for no cache)."""
    if cache is None:
        return dict.fromkeys(_STAT_KEYS, 0)
    return {key: getattr(cache, key) for key in _STAT_KEYS}


class BatchSummarizer:
    """Deprecated batch facade: many-task summarization over one graph.

    .. deprecated::
        Construct a :class:`repro.api.ExplanationSession` instead — it
        replaces this class's kwarg sprawl with typed configs
        (:class:`~repro.api.EngineConfig` /
        :class:`~repro.api.CacheConfig` /
        :class:`~repro.api.ParallelConfig`), keeps the frozen view,
        shared-memory export and process pool warm *across* batches,
        and adds per-request method routing plus a streaming iterator.

    The shim delegates to a private session configured identically, so
    results, the report format, backend auto-selection and the
    local-fallback ``RuntimeWarning`` are unchanged. To preserve the
    legacy resource contract, the pool and shared-memory export are
    released after every :meth:`run` (nothing persists between calls
    except the closure cache, exactly as before).

    Parameters match the historical constructor: ``method`` ("ST",
    "ST-fast", "PCST", "Union"), ``workers``, ``closure_cache_size``,
    ``partial_reuse``, ``parallel`` ("serial" / "threads" /
    "processes" / None for auto), ``chunk_size``, ``mp_start_method``,
    and ``**params`` forwarded to the summarizer (lam,
    weight_influence, prize_policy, use_edge_weights, strong_pruning,
    engine, canonical). The shim rides the session's scheduler: batch
    dispatch defaults to work-stealing (bit-identical results), with
    ``scheduler="chunked"`` restoring static chunk dispatch.
    """

    #: Auto-backend thresholds (mirrors ExplanationSession, which owns
    #: the resolution logic now): below either, worker startup + IPC
    #: dominates and the local backends win.
    AUTO_PROCESS_MIN_NODES = 4096
    AUTO_PROCESS_MIN_TASKS = 8

    #: Keyword params that map onto EngineConfig fields; anything else
    #: is a typo and fails construction like the legacy facade did.
    _ENGINE_PARAMS = frozenset(
        (
            "engine",
            "canonical",
            "lam",
            "weight_influence",
            "prize_policy",
            "use_edge_weights",
            "strong_pruning",
        )
    )

    def __init__(
        self,
        graph: KnowledgeGraph,
        method: str = "ST",
        workers: int = 0,
        closure_cache_size: int = 4096,
        partial_reuse: bool = True,
        parallel: str | None = None,
        chunk_size: int | None = None,
        mp_start_method: str | None = None,
        scheduler: str | None = None,
        **params,
    ) -> None:
        warnings.warn(
            "BatchSummarizer is deprecated; use repro.api."
            "ExplanationSession (typed configs, warm pooled execution, "
            "streaming results) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        unknown = set(params) - self._ENGINE_PARAMS
        if unknown:
            raise TypeError(
                f"unexpected summarizer parameter(s) {sorted(unknown)}"
            )
        from repro.api import (
            CacheConfig,
            EngineConfig,
            ExplanationSession,
            ParallelConfig,
            SchedulerConfig,
        )

        self.graph = graph
        self.method = method
        self.workers = workers
        self.parallel = parallel
        self.chunk_size = chunk_size
        self.mp_start_method = mp_start_method or os.environ.get(
            "REPRO_MP_START_METHOD"
        ) or None
        self.closure_cache_size = closure_cache_size
        self.partial_reuse = partial_reuse
        self.scheduler = scheduler
        self._params = dict(params)
        self._session = ExplanationSession(
            graph,
            engine=EngineConfig(**params),
            cache=CacheConfig(
                closure_size=closure_cache_size,
                partial_reuse=partial_reuse,
            ),
            parallel=ParallelConfig(
                backend=parallel,
                workers=workers,
                chunk_size=chunk_size,
                mp_start_method=self.mp_start_method,
            ),
            scheduler=(
                SchedulerConfig(mode=scheduler)
                if scheduler is not None
                else None
            ),
            default_method=method,
        )

    @property
    def closure_cache(self):
        """The session-owned closure cache (ST only; None otherwise).

        The legacy class built this eagerly in ``__init__``; the shim
        materializes the session's cache on access so counter reads
        (``cache.hits`` etc.) keep working without an AttributeError.
        """
        if self.method != "ST":
            return None
        return self._session._ensure_closure_cache()

    def run(self, tasks: Iterable[SummaryTask]) -> BatchReport:
        """Summarize every task; per-task timings in the report."""
        try:
            return self._session.run(list(tasks))
        finally:
            # Legacy runs never kept worker processes or shared-memory
            # blocks alive between calls; the shim keeps that contract
            # (warm reuse is the session's feature, not this facade's).
            self._session.release_pool()


# ----------------------------------------------------------------------
# JSONL task files (one task per line) for the CLI `batch` subcommand.
# The task codec itself moved to repro.api.protocol (the versioned
# over-the-wire schema shared with the network tier); the old names
# remain as thin deprecated wrappers, and the JSONL helpers route
# through the protocol module without warning — file I/O stays a
# batch-layer concern, only the schema ownership moved.
# ----------------------------------------------------------------------
def task_to_json(task: SummaryTask) -> dict:
    """Plain-JSON form of a task (inverse of :func:`task_from_json`).

    .. deprecated::
        Moved to :func:`repro.api.protocol.task_to_json`.
    """
    from repro.api import protocol

    protocol._warn_legacy("task_to_json")
    return protocol.task_to_json(task)


def task_from_json(data: dict) -> SummaryTask:
    """Build a task from its JSON form; raises on malformed input.

    .. deprecated::
        Moved to :func:`repro.api.protocol.task_from_json`.
    """
    from repro.api import protocol

    protocol._warn_legacy("task_from_json")
    return protocol.task_from_json(data)


def load_tasks_jsonl(path: str | FilePath) -> list[SummaryTask]:
    """Read tasks from a JSONL file, skipping blank lines."""
    from repro.api import protocol

    tasks = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                tasks.append(protocol.task_from_json(json.loads(line)))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad task line ({error})"
                ) from error
    return tasks


def dump_tasks_jsonl(
    tasks: Sequence[SummaryTask], path: str | FilePath
) -> None:
    """Write tasks to a JSONL file (one task per line)."""
    from repro.api import protocol

    with open(path, "w", encoding="utf-8") as handle:
        for task in tasks:
            handle.write(json.dumps(protocol.task_to_json(task)) + "\n")
