"""Batch summarization engine: freeze once, memoize closures, time everything.

Serving summary explanations to many users means answering many
:class:`SummaryTask`s over the *same* knowledge graph. Running the
facade :class:`~repro.core.summarizer.Summarizer` in a loop repeats work
that is identical across tasks:

- the CSR compilation of the graph (``graph.freeze()`` — shared here,
  computed once up front and version-checked);
- the terminal-to-terminal Dijkstra runs of the ST metric closure —
  popular items appear as terminals in many users' tasks, and every
  λ=0 task shares one uniform cost surface, so
  :class:`TerminalClosureCache` memoizes ``(source, cost-signature) ->
  (dist, prev)`` in an LRU and reuses a run whenever its settled set
  covers the targets a new task needs.

Cache reuse is exact, not approximate: a Dijkstra's settle sequence does
not depend on its early-exit target set (targets only decide when the
loop *stops*), so a longer run's ``(dist, prev)`` agrees with a fresh
shorter run on every entry the Steiner construction reads. Predecessor
chains are safe because Eq. (1) costs are bounded below by ``1 - ρ > 0``
— every node on a shortest path settles strictly before its target.

A second tier (``partial_reuse``, default on in the batch engine)
extends reuse to λ>0 workloads whose tasks boost *different* edges:
base-cost (unit) Dijkstra runs are memoized once per node — bounded to
the radius the task actually needs — and recombined with each task's
boosted edges through a small overlay graph (see
:meth:`TerminalClosureCache._patched_closure`). Distances are exact and
accumulated in the same fold order as a cold run, and the summarizer's
canonical-SPT reconstruction (see
:func:`repro.graph.steiner.canonical_shortest_path`) picks predecessors
from those distances alone — so derived closures produce bit-identical
summaries to cold runs, which is what lets the tier default on.

:class:`BatchSummarizer` wraps all of it behind a ``parallel`` knob:

- ``"serial"`` — one task at a time in the calling thread.
- ``"threads"`` — a thread pool. The traversals are pure Python and
  hold the GIL, so threads do **not** parallelize the CPU-bound work;
  they only help when tasks block elsewhere (I/O hooks, C extensions).
- ``"processes"`` — a spawn-safe ``ProcessPoolExecutor`` over the
  frozen view exported to shared memory (zero-copy attach per worker,
  see :mod:`repro.graph.shared`): chunked dispatch, a per-worker
  closure cache, per-task timings measured in the workers, and counter
  aggregation so the report reads exactly like a serial run's.
- default (``None``/``"auto"``) — picks processes on multi-core
  machines once the graph and batch are big enough to amortize worker
  startup, else threads/serial as before.

JSONL (de)serialization for task files lives here too — the CLI
``batch`` subcommand reads one task per line.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
import warnings
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import METHODS, Summarizer
from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import dijkstra_frozen, dijkstra_indexed

#: Cache-key marker for base-cost (all-unit) Dijkstra runs — a sentinel
#: no real cost signature can equal, so base entries and per-signature
#: closure entries share one LRU without colliding.
_BASE_COSTS = ("__base-unit__",)


def _fold_units(value: float, steps: float) -> float:
    """Append ``steps`` unit edges to a distance, one ``+ 1.0`` at a time.

    ``steps`` is an exact integer-valued float (a unit-cost Dijkstra
    distance). Floating-point addition is not associative, so
    ``value + steps`` can differ in the last ulp from what a cold
    Dijkstra accumulates walking the same segment edge by edge; folding
    reproduces the cold accumulation order bit-for-bit, which the
    canonical-SPT equality test relies on.
    """
    for _ in range(int(steps)):
        value += 1.0
    return value


class _OverlayDistances(dict):
    """Id-keyed boosted distances with lazy off-target lookups.

    Explicit entries (plain dict items) are the requested targets — the
    keys the closure cache's covering check and the Steiner closure
    read. ``get`` additionally answers any other node by folding the
    memoized base runs through the overlay hub distances
    (``min over hubs of fold(h_dist[hub], base_dist[hub][node])``),
    which is exactly the decomposition a cold run's distance surface
    realizes — bit-equal values, computed on demand. That lazy surface
    is what canonical-SPT path reconstruction scans, so closures
    derived here reconstruct the *same* canonical paths as cold runs.

    Lazy values are memoized in a side table rather than into the
    mapping itself: ``keys()`` must keep meaning "targets whose
    predecessor chains were recorded", which the cache's reuse check
    relies on, while canonical reconstruction re-queries shared path
    prefixes often enough that recomputing the min-fold would hurt.
    """

    __slots__ = ("_frozen", "_base", "_h_dist", "_memo")

    def __init__(self, frozen, base, h_dist):
        super().__init__()
        self._frozen = frozen
        self._base = base
        self._h_dist = h_dist
        self._memo: dict = {}

    def get(self, key, default=None):
        if key in self:
            return dict.__getitem__(self, key)
        if key in self._memo:
            value = self._memo[key]
            return value if value is not None else default
        index = self._frozen._index.get(key)
        if index is None:
            self._memo[key] = None
            return default
        best = None
        h_dist = self._h_dist
        for hub, (base_dist, _prev) in self._base.items():
            through = h_dist.get(hub)
            if through is None:
                continue
            leg = base_dist.get(index)
            if leg is None:
                continue
            value = _fold_units(through, leg)
            if best is None or value < best:
                best = value
        self._memo[key] = best
        return best if best is not None else default


class TerminalClosureCache:
    """LRU memo of single-source Dijkstra runs over a frozen view.

    Keyed by ``(source id, cost signature)``. An entry is reusable for a
    request whenever every requested target is in its settled set; on a
    miss the fresh run replaces the entry if it settled more nodes.
    Thread-safe (the batch engine shares one cache across workers); the
    Dijkstra itself runs outside the lock, so concurrent misses on the
    same key merely duplicate work, never corrupt results.

    λ-aware partial reuse (``partial_reuse=True``) adds a second tier
    for boosted cost surfaces — Eq. (1) surfaces that are the unit base
    patched on a handful of boosted slots (declared via
    ``FrozenCosts.overrides``). On an exact-signature miss the closure
    is *derived* instead of recomputed from scratch: radius-bounded
    base-cost runs from the source and from every boosted-edge endpoint
    (memoized under a shared base key, so they cut across tasks with
    **disjoint** boost sets) are recombined through a tiny overlay graph
    whose nodes are the boosted endpoints and whose edges are base
    distances plus the boosted edges themselves. Distances are exact
    (boosts only ever lower costs, so every shortest path decomposes
    into base segments joined at boosted edges) and bit-equal to a cold
    run's (unit segments are re-folded in cold accumulation order); the
    returned ``dist`` also answers lazy off-target lookups, so the
    summarizer's canonical-SPT reconstruction recovers the *same* paths
    a cold run would. The raw ``prev`` chains still reflect overlay
    hop order — consumers that want heap-order chains verbatim (and
    only those) should keep the tier off.
    """

    #: Partial-reuse bail-out: with more boosted-edge endpoints than
    #: this, the per-hub base runs + O(hubs^2) overlay cost more than
    #: the single early-exit fresh run they replace.
    MAX_OVERLAY_HUBS = 48

    def __init__(
        self, maxsize: int = 4096, partial_reuse: bool = False
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.partial_reuse = partial_reuse
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self.base_hits = 0
        self.base_misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._frozen = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters kept)."""
        with self._lock:
            self._entries.clear()
            self._frozen = None

    def pair_fn(self, frozen, costs):
        """``(source, rest) -> (dist, prev)`` hook bound to one frozen view.

        Entries from an older frozen view (a re-freeze after graph
        mutation) are discarded wholesale — version-keyed staleness is
        handled here so callers never see distances from a dead graph.
        """
        with self._lock:
            if frozen is not self._frozen:
                self._entries.clear()
                self._frozen = frozen
        signature = costs.signature

        def pairs(source: str, rest: set[str]):
            key = (source, signature)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and rest <= entry[0].keys():
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry
            result = None
            if self.partial_reuse and getattr(costs, "overrides", None):
                result = self._patched_closure(frozen, costs, source, rest)
            if result is not None:
                with self._lock:
                    self.patched += 1
            else:
                result = dijkstra_frozen(
                    frozen, source, costs=costs, targets=rest
                )
                with self._lock:
                    self.misses += 1
            dist, prev = result
            with self._lock:
                # The cache may have been rebound to a newer frozen view
                # while this Dijkstra ran; our result is still valid for
                # our caller, but must not repopulate the new view's
                # cache with pre-mutation distances.
                if frozen is self._frozen:
                    current = self._entries.get(key)
                    if current is None or len(current[0]) < len(dist):
                        self._entries[key] = (dist, prev)
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.maxsize:
                            self._entries.popitem(last=False)
            return dist, prev

        return pairs

    # ------------------------------------------------------------------
    # λ-aware partial reuse: base runs + boosted-edge overlay
    # ------------------------------------------------------------------
    @staticmethod
    def _base_entry_covers(entry, radius, required) -> bool:
        """Does a cached base run cover this request?

        Entries record the radius they are *complete through* (``None``
        = whole component settled). A required-set request is covered
        once every required node appears — bounded entries only contain
        nodes within their bound, so membership implies the entry is
        complete through the farthest required distance, which is the
        radius the caller derives from it.
        """
        dist, _prev, bound = entry
        if bound is None:
            return True
        if required is not None:
            return required <= dist.keys()
        return radius is not None and bound >= radius

    def _base_run(
        self,
        frozen,
        index: int,
        radius: float | None = None,
        required: set[int] | None = None,
    ):
        """Bounded unit-cost Dijkstra from a node, memoized.

        These runs are λ-independent — every boosted surface shares
        them — so entries keyed ``(index, _BASE_COSTS)`` are the tier
        that cuts across tasks with disjoint boost sets. Instead of
        settling whole components, runs are *radius-bounded*: a
        ``required`` request settles through the farthest required
        node's distance tier (``cover_targets``), a ``radius`` request
        through the given bound — either way the entry is complete
        through its recorded bound and is reused for any request it
        covers, deepened (recomputed and replaced) otherwise. Returns
        the index-keyed ``(dist, prev)`` of ``dijkstra_indexed``.
        Lookups count into ``base_hits``/``base_misses``, not
        ``hits``/``misses`` — the report's closure hit rate stays about
        closure requests.
        """
        key = (index, _BASE_COSTS)
        with self._lock:
            # Base keys are index-keyed, and a dense index means a
            # different node on a different frozen view — so reads (like
            # every write path) are only valid against the view this
            # cache is currently bound to. A stale caller computes fresh.
            entry = (
                self._entries.get(key)
                if frozen is self._frozen
                else None
            )
            if entry is not None and self._base_entry_covers(
                entry, radius, required
            ):
                self._entries.move_to_end(key)
                self.base_hits += 1
                return entry[0], entry[1]
        if required:
            dist, prev = dijkstra_indexed(
                frozen,
                index,
                costs=frozen.shared_unit_costs(),
                targets=set(required),
                cover_targets=True,
            )
            # Unreachable required nodes mean the heap ran dry: the
            # whole component settled, so the run is complete.
            bound = (
                None
                if required - dist.keys()
                else dist[next(reversed(dist))]
            )
        else:
            dist, prev = dijkstra_indexed(
                frozen,
                index,
                costs=frozen.shared_unit_costs(),
                radius=radius,
            )
            bound = radius
        with self._lock:
            self.base_misses += 1
            if frozen is self._frozen:
                current = self._entries.get(key)
                # Replace when the new run settled more — or settled
                # the same nodes under a deeper bound (an empty
                # annulus): keeping the shallow bound would re-run the
                # identical Dijkstra on every future deeper request.
                if current is None or len(current[0]) < len(dist) or (
                    len(current[0]) == len(dist)
                    and current[2] is not None
                    and (bound is None or bound > current[2])
                ):
                    self._entries[key] = (dist, prev, bound)
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.maxsize:
                        self._entries.popitem(last=False)
        return dist, prev

    def _patched_closure(self, frozen, costs, source: str, rest: set[str]):
        """Derive a boosted closure from base runs + an overlay graph.

        Exact by decomposition: boosts only lower slot costs, so any
        shortest path under the boosted surface splits into base-cost
        segments joined at boosted edges. The overlay graph has the
        source, the boosted-edge endpoints and the targets as nodes;
        base distances (from memoized radius-bounded unit runs) and the
        boosted edges as weighted edges. A Dijkstra over that handful
        of nodes yields the exact boosted distances, and expanding its
        hops through the base predecessor chains yields exact shortest
        paths.

        Two properties make the derivation interchangeable with a cold
        run:

        - *Fold-order parity*: overlay relaxations add unit base
          segments one ``+ 1.0`` at a time (:func:`_fold_units`), the
          same floating-point accumulation order as a cold heap walking
          the segment edge by edge — derived distances are bit-equal to
          cold ones, not merely mathematically equal.
        - *Radius bounds*: the source's base run settles through the
          farthest requested target's distance tier, which bounds every
          base segment a shortest boosted path can use; the per-hub
          runs are clipped to that radius instead of settling whole
          components (the ROADMAP's "early-bounded base runs" item).

        Returns id-keyed ``(dist, prev)`` covering the reachable
        targets — ``dist`` is an :class:`_OverlayDistances` view that
        also answers (bit-exact) lazy lookups for any settled node, the
        surface canonical-SPT reconstruction scans — or None when the
        override structure is not the symmetric-decrease shape the
        decomposition needs (the caller then falls back to a fresh run).
        """
        edges: dict[tuple[int, int], float] = {}
        slot_count: dict[tuple[int, int], int] = {}
        for slot, value in costs.overrides:
            if value > 1.0:
                return None
            u, v = frozen.slot_endpoints(slot)
            key = (u, v) if u < v else (v, u)
            if key in edges and edges[key] != value:
                return None
            edges[key] = value
            slot_count[key] = slot_count.get(key, 0) + 1
        if any(count != 2 for count in slot_count.values()):
            return None

        ids = frozen.ids
        source_idx = frozen.index_of(source)
        target_of = {}
        for target in sorted(rest):
            if target in frozen:
                target_of[frozen.index_of(target)] = target
        hubs = [source_idx] + sorted(
            {i for pair in edges for i in pair} - {source_idx}
        )
        if len(hubs) > self.MAX_OVERLAY_HUBS:
            # One bounded base run per hub plus an O(hubs^2) overlay
            # only beats a single early-exit fresh run while the boost
            # set is small; past this point fall back to the fresh run.
            return None
        # The source run doubles as the radius oracle: it settles
        # through the farthest requested target's distance tier, and
        # that distance bounds every base segment on any shortest
        # boosted path to a target (boosts only shorten paths, so
        # boosted distances never exceed the base distance from the
        # source — hubs beyond the bound can't lie on a useful path).
        required = set(target_of) - {source_idx}
        source_dist, source_prev = self._base_run(
            frozen, source_idx, required=required
        )
        radius = max(
            (source_dist[x] for x in required if x in source_dist),
            default=0.0,
        )
        base = {source_idx: (source_dist, source_prev)}
        for hub in hubs[1:]:
            base[hub] = self._base_run(frozen, hub, radius=radius)
        h_nodes = sorted(set(hubs) | set(target_of))

        boosted_adj: dict[int, list[tuple[int, float]]] = {}
        for (u, v), value in edges.items():
            boosted_adj.setdefault(u, []).append((v, value))
            boosted_adj.setdefault(v, []).append((u, value))

        heap: AddressableHeap[int] = AddressableHeap()
        heap.push(source_idx, 0.0)
        h_dist: dict[int, float] = {}
        h_prev: dict[int, tuple[int, bool]] = {}
        tentative: dict[int, tuple[int, bool]] = {}
        while heap:
            node, d = heap.pop_min()
            h_dist[node] = d
            if node in tentative:
                h_prev[node] = tentative[node]
            base_run = base.get(node)
            if base_run is None:
                continue  # plain targets are sinks in the overlay
            base_dist = base_run[0]
            for other in h_nodes:
                if other in h_dist or other == node:
                    continue
                base_d = base_dist.get(other)
                if base_d is not None and heap.decrease_if_lower(
                    other, _fold_units(d, base_d)
                ):
                    tentative[other] = (node, False)
            for other, value in boosted_adj.get(node, ()):
                if other in h_dist:
                    continue
                if heap.decrease_if_lower(other, d + value):
                    tentative[other] = (node, True)

        dist = _OverlayDistances(frozen, base, h_dist)
        prev: dict[str, str] = {}
        for t_idx in sorted(target_of):
            if t_idx not in h_dist:
                continue  # disconnected, exactly like the fresh run
            dist[target_of[t_idx]] = h_dist[t_idx]
            path = self._expand_overlay_path(base, h_prev, source_idx, t_idx)
            # First-writer-wins keeps every recorded chain a shortest
            # path: each written node carries its exact boosted distance,
            # so splicing a later path onto an earlier one at a shared
            # node preserves both length and termination at the source.
            for above, node in zip(path, path[1:]):
                prev.setdefault(ids[node], ids[above])
        return dist, prev

    @staticmethod
    def _expand_overlay_path(base, h_prev, source_idx: int, t_idx: int):
        """Expand an overlay hop sequence into a full index path."""
        hops = []
        node = t_idx
        while node != source_idx:
            above, boosted = h_prev[node]
            hops.append((above, node, boosted))
            node = above
        hops.reverse()
        path = [source_idx]
        for above, node, boosted in hops:
            if boosted:
                path.append(node)
                continue
            chain = [node]
            base_prev = base[above][1]
            while chain[-1] != above:
                chain.append(base_prev[chain[-1]])
            chain.reverse()
            path.extend(chain[1:])
        return path


@dataclass(frozen=True)
class BatchResult:
    """One task's outcome inside a batch."""

    index: int
    task: SummaryTask
    explanation: SubgraphExplanation
    seconds: float


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run measured."""

    method: str
    results: tuple[BatchResult, ...]
    freeze_seconds: float
    total_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_patched: int = 0
    cache_base_hits: int = 0
    cache_base_misses: int = 0
    workers: int = 0
    parallel: str = "serial"

    @property
    def explanations(self) -> list[SubgraphExplanation]:
        """Per-task explanations, in input order."""
        return [r.explanation for r in self.results]

    @property
    def task_seconds(self) -> list[float]:
        """Per-task wall-clock seconds, in input order."""
        return [r.seconds for r in self.results]

    @property
    def throughput(self) -> float:
        """Tasks per second over the whole run (freeze included)."""
        if self.total_seconds <= 0:
            return 0.0
        return len(self.results) / self.total_seconds

    def summary(self) -> str:
        """Human-readable one-screen report."""
        seconds = self.task_seconds
        lines = [
            f"batch method={self.method} tasks={len(self.results)} "
            f"parallel={self.parallel} workers={self.workers}",
            f"  total      {self.total_seconds * 1000.0:10.1f} ms",
            f"  freeze     {self.freeze_seconds * 1000.0:10.1f} ms",
            f"  throughput {self.throughput:10.1f} tasks/s",
        ]
        if seconds:
            ordered = sorted(seconds)
            p50 = ordered[len(ordered) // 2]
            p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
            lines.append(
                f"  per-task   mean {sum(seconds) / len(seconds) * 1000.0:.2f} ms"
                f" | p50 {p50 * 1000.0:.2f} ms | p95 {p95 * 1000.0:.2f} ms"
                f" | max {max(seconds) * 1000.0:.2f} ms"
            )
        if self.cache_hits or self.cache_misses:
            total = self.cache_hits + self.cache_misses
            lines.append(
                f"  closures   {self.cache_hits}/{total} cache hits "
                f"({self.cache_hits / total:.0%})"
            )
        if self.cache_patched:
            base_total = self.cache_base_hits + self.cache_base_misses
            lines.append(
                f"  patched    {self.cache_patched} closures derived "
                f"from base runs (λ-aware reuse; "
                f"{self.cache_base_hits}/{base_total} base-run hits)"
            )
        return "\n".join(lines)


#: Backend choices for :class:`BatchSummarizer`; None means "auto".
PARALLEL_BACKENDS = ("serial", "threads", "processes")

#: Counter attributes mirrored between caches and reports.
_STAT_KEYS = ("hits", "misses", "patched", "base_hits", "base_misses")

#: Infrastructure failures that demote the process backend to a local
#: run instead of failing the batch: shared-memory/pool setup errors,
#: a broken pool (worker died in init), unpicklable inputs. Task-level
#: exceptions (e.g. disconnected terminals) are *not* in this set — they
#: propagate exactly like a serial run's.
_PROCESS_FALLBACK_ERRORS = (
    OSError,
    BrokenProcessPool,
    pickle.PicklingError,
    ImportError,
)


def _cache_counters(cache) -> dict[str, int]:
    """Snapshot a closure cache's counters (zeros for no cache)."""
    if cache is None:
        return dict.fromkeys(_STAT_KEYS, 0)
    return {key: getattr(cache, key) for key in _STAT_KEYS}


#: Per-process worker state, populated by :func:`_process_worker_init`.
_WORKER_STATE: dict = {}


def _process_worker_init(handle, config: dict) -> None:
    """Worker initializer: attach the shared view, build a summarizer.

    Runs once per worker process under any start method — ``spawn``
    included, since everything it needs arrives as picklable initargs
    (the shared-memory handle and a plain config dict) and the CSR
    arrays are attached by name, zero-copy.
    """
    from repro.graph.shared import attach_knowledge_graph

    graph = attach_knowledge_graph(handle)
    cache = (
        TerminalClosureCache(
            config["cache_size"], partial_reuse=config["partial_reuse"]
        )
        if config["method"] == "ST"
        else None
    )
    _WORKER_STATE["cache"] = cache
    _WORKER_STATE["summarizer"] = Summarizer(
        graph,
        method=config["method"],
        closure_cache=cache,
        **config["params"],
    )


def _process_chunk(pairs: list) -> tuple[list, dict[str, int]]:
    """Summarize one chunk of ``(index, task)`` pairs in a worker.

    Returns ``(results, counter_delta)`` where results are
    ``(index, explanation, seconds)`` triples and the delta is this
    chunk's closure-cache activity (chunks run sequentially inside a
    worker, so before/after snapshots are race-free).
    """
    summarizer = _WORKER_STATE["summarizer"]
    cache = _WORKER_STATE["cache"]
    before = _cache_counters(cache)
    out = []
    for index, task in pairs:
        task_start = time.perf_counter()
        explanation = summarizer.summarize(task)
        out.append((index, explanation, time.perf_counter() - task_start))
    after = _cache_counters(cache)
    return out, {key: after[key] - before[key] for key in _STAT_KEYS}


class BatchSummarizer:
    """Many-task summarization over one knowledge graph.

    Parameters
    ----------
    graph:
        The shared knowledge graph. Frozen once per run (re-frozen
        automatically if mutated between runs).
    method:
        Any of the facade's methods ("ST", "ST-fast", "PCST", "Union").
        ST, ST-fast and PCST all run on the shared frozen CSR view
        (frozen once per run, up front); ST additionally shares the
        terminal-closure cache across tasks. Union builds straight from
        the task's paths (no traversal, ``freeze_seconds`` is 0.0).
        Output is identical to a per-task :class:`Summarizer` for every
        method and every backend.
    workers:
        Pool size for the threads/processes backends; 0 means "pick"
        (sequential for threads — the historical default — and
        ``os.cpu_count()`` for processes).
    closure_cache_size:
        LRU capacity of the shared :class:`TerminalClosureCache` (and
        of each worker's own cache under the process backend).
    partial_reuse:
        The cache's λ-aware partial reuse (ST only): boosted (λ>0)
        closures are derived from memoized radius-bounded base runs
        patched with each task's boosted edges, so reuse cuts across
        tasks with disjoint boost sets. Default **on**: distances are
        exact and fold-order-identical to cold runs, and the
        summarizer's canonical-SPT reconstruction makes the resulting
        trees bit-identical to cold ones. Turn off alongside
        ``canonical=False`` when heap-order predecessor chains are
        wanted verbatim.
    parallel:
        Dispatch backend: "serial", "threads", "processes", or
        None/"auto" (default). Threads do not parallelize the
        CPU-bound pure-Python traversals (they hold the GIL) — use
        "processes" for multi-core speedups; auto picks processes when
        the machine has more than one core and the graph is at least
        :data:`AUTO_PROCESS_MIN_NODES` nodes with
        :data:`AUTO_PROCESS_MIN_TASKS` tasks queued. The process
        backend exports the frozen view to shared memory (workers
        attach zero-copy), chunks tasks across spawn-safe workers with
        per-worker closure caches, and merges timings and cache
        counters so the report format matches a serial run. If process
        infrastructure is unavailable the run falls back to a local
        backend (with a ``RuntimeWarning``); results are identical
        either way.
    chunk_size:
        Tasks per process-pool submission; default
        ``ceil(n / (4 * workers))`` — small enough to level out skewed
        task costs, large enough to amortize IPC.
    mp_start_method:
        Process start method ("fork", "spawn", "forkserver"); default
        the ``REPRO_MP_START_METHOD`` env var, else the platform
        default. Workers are spawn-safe regardless.
    **params:
        Forwarded to :class:`Summarizer` (lam, weight_influence,
        prize_policy, engine, canonical, ...). Must be picklable when
        the process backend is used.
    """

    #: Auto-backend thresholds: below either, worker startup + IPC
    #: dominates and the local backends win.
    AUTO_PROCESS_MIN_NODES = 4096
    AUTO_PROCESS_MIN_TASKS = 8

    def __init__(
        self,
        graph: KnowledgeGraph,
        method: str = "ST",
        workers: int = 0,
        closure_cache_size: int = 4096,
        partial_reuse: bool = True,
        parallel: str | None = None,
        chunk_size: int | None = None,
        mp_start_method: str | None = None,
        **params,
    ) -> None:
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if parallel not in (None, "auto", *PARALLEL_BACKENDS):
            raise ValueError(
                f"unknown parallel backend {parallel!r}; expected one of "
                f"{('auto', *PARALLEL_BACKENDS)}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.graph = graph
        self.method = method
        self.workers = workers
        self.parallel = parallel
        self.chunk_size = chunk_size
        self.mp_start_method = mp_start_method or os.environ.get(
            "REPRO_MP_START_METHOD"
        ) or None
        self.closure_cache_size = closure_cache_size
        self.partial_reuse = partial_reuse
        engine = params.get("engine", "frozen")
        self._uses_frozen = method != "Union" and engine != "dict"
        self._params = dict(params)
        self.closure_cache = (
            TerminalClosureCache(
                closure_cache_size, partial_reuse=partial_reuse
            )
            if method == "ST"
            else None
        )
        self._summarizer = Summarizer(
            graph, method=method, closure_cache=self.closure_cache, **params
        )

    # ------------------------------------------------------------------
    def _resolve_backend(self, num_tasks: int) -> str:
        """Pick the dispatch backend for this run."""
        choice = self.parallel or "auto"
        if choice == "processes" and num_tasks == 0:
            return "serial"
        if choice != "auto":
            return choice
        cpus = os.cpu_count() or 1
        if (
            cpus > 1
            and self.method != "Union"
            and self.graph.num_nodes >= self.AUTO_PROCESS_MIN_NODES
            and num_tasks >= self.AUTO_PROCESS_MIN_TASKS
        ):
            return "processes"
        if self.workers > 1 and num_tasks > 1:
            return "threads"
        return "serial"

    def run(self, tasks: Iterable[SummaryTask]) -> BatchReport:
        """Summarize every task; per-task timings in the report."""
        task_list = list(tasks)
        backend = self._resolve_backend(len(task_list))
        if backend == "processes":
            try:
                return self._run_processes(task_list)
            except _PROCESS_FALLBACK_ERRORS as error:
                warnings.warn(
                    f"process backend unavailable ({error!r}); falling "
                    "back to a local run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                backend = (
                    "threads"
                    if self.workers > 1 and len(task_list) > 1
                    else "serial"
                )
        return self._run_local(task_list, backend)

    def _run_local(
        self, task_list: list[SummaryTask], backend: str
    ) -> BatchReport:
        """The serial / thread-pool path (shared closure cache)."""
        start = time.perf_counter()
        freeze_seconds = 0.0
        if self._uses_frozen:
            freeze_start = time.perf_counter()
            self.graph.freeze()
            freeze_seconds = time.perf_counter() - freeze_start
        before = _cache_counters(self.closure_cache)

        def one(indexed: tuple[int, SummaryTask]) -> BatchResult:
            index, task = indexed
            task_start = time.perf_counter()
            explanation = self._summarizer.summarize(task)
            return BatchResult(
                index=index,
                task=task,
                explanation=explanation,
                seconds=time.perf_counter() - task_start,
            )

        pool_size = self.workers if self.workers > 0 else (
            os.cpu_count() or 1
        )
        if backend == "threads" and pool_size > 1 and len(task_list) > 1:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                results = list(pool.map(one, enumerate(task_list)))
            workers = pool_size
        else:
            backend = "serial"
            results = [one(pair) for pair in enumerate(task_list)]
            workers = self.workers
        after = _cache_counters(self.closure_cache)

        return BatchReport(
            method=self.method,
            results=tuple(results),
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=after["hits"] - before["hits"],
            cache_misses=after["misses"] - before["misses"],
            cache_patched=after["patched"] - before["patched"],
            cache_base_hits=after["base_hits"] - before["base_hits"],
            cache_base_misses=after["base_misses"] - before["base_misses"],
            workers=workers,
            parallel=backend,
        )

    def _run_processes(self, task_list: list[SummaryTask]) -> BatchReport:
        """The shared-memory process-pool path.

        Freeze + export once, attach per worker, chunked dispatch,
        ordered merge. Blocks are closed and unlinked on every exit
        path so ``/dev/shm`` never accumulates leaked segments.
        """
        import multiprocessing

        start = time.perf_counter()
        freeze_start = time.perf_counter()
        frozen = self.graph.freeze()
        export = frozen.to_shared()
        freeze_seconds = time.perf_counter() - freeze_start

        cpus = os.cpu_count() or 1
        workers = self.workers if self.workers > 0 else cpus
        workers = max(1, min(workers, len(task_list)))
        chunk = self.chunk_size or max(
            1, -(-len(task_list) // (4 * workers))
        )
        pairs = list(enumerate(task_list))
        chunks = [
            pairs[i : i + chunk] for i in range(0, len(pairs), chunk)
        ]
        workers = min(workers, len(chunks))
        config = {
            "method": self.method,
            "cache_size": self.closure_cache_size,
            "partial_reuse": self.partial_reuse,
            "params": self._params,
        }
        context = (
            multiprocessing.get_context(self.mp_start_method)
            if self.mp_start_method
            else multiprocessing.get_context()
        )
        stats = dict.fromkeys(_STAT_KEYS, 0)
        merged: list[tuple[int, SubgraphExplanation, float]] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(export.handle, config),
            ) as pool:
                futures = [
                    pool.submit(_process_chunk, chunk_pairs)
                    for chunk_pairs in chunks
                ]
                for future in futures:
                    chunk_results, delta = future.result()
                    merged.extend(chunk_results)
                    for key in _STAT_KEYS:
                        stats[key] += delta[key]
        finally:
            export.close()
            export.unlink()

        merged.sort(key=lambda triple: triple[0])
        results = tuple(
            BatchResult(
                index=index,
                task=task_list[index],
                explanation=explanation,
                seconds=seconds,
            )
            for index, explanation, seconds in merged
        )
        return BatchReport(
            method=self.method,
            results=results,
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=stats["hits"],
            cache_misses=stats["misses"],
            cache_patched=stats["patched"],
            cache_base_hits=stats["base_hits"],
            cache_base_misses=stats["base_misses"],
            workers=workers,
            parallel="processes",
        )


# ----------------------------------------------------------------------
# JSONL task files (one task per line) for the CLI `batch` subcommand
# ----------------------------------------------------------------------
def task_to_json(task: SummaryTask) -> dict:
    """Plain-JSON form of a task (inverse of :func:`task_from_json`)."""
    return {
        "scenario": task.scenario.value,
        "terminals": list(task.terminals),
        "paths": [list(p.nodes) for p in task.paths],
        "anchors": list(task.anchors),
        "focus": list(task.focus),
        "k": task.k,
    }


def task_from_json(data: dict) -> SummaryTask:
    """Build a task from its JSON form; raises on malformed input."""
    return SummaryTask(
        scenario=Scenario(data["scenario"]),
        terminals=tuple(data["terminals"]),
        paths=tuple(
            Path(nodes=tuple(nodes)) for nodes in data.get("paths", [])
        ),
        anchors=tuple(data.get("anchors", [])),
        focus=tuple(data.get("focus", [])),
        k=int(data.get("k", 0)),
    )


def load_tasks_jsonl(path: str | FilePath) -> list[SummaryTask]:
    """Read tasks from a JSONL file, skipping blank lines."""
    tasks = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                tasks.append(task_from_json(json.loads(line)))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad task line ({error})"
                ) from error
    return tasks


def dump_tasks_jsonl(
    tasks: Sequence[SummaryTask], path: str | FilePath
) -> None:
    """Write tasks to a JSONL file (one task per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for task in tasks:
            handle.write(json.dumps(task_to_json(task)) + "\n")
