"""Batch summarization engine: freeze once, memoize closures, time everything.

Serving summary explanations to many users means answering many
:class:`SummaryTask`s over the *same* knowledge graph. Running the
facade :class:`~repro.core.summarizer.Summarizer` in a loop repeats work
that is identical across tasks:

- the CSR compilation of the graph (``graph.freeze()`` — shared here,
  computed once up front and version-checked);
- the terminal-to-terminal Dijkstra runs of the ST metric closure —
  popular items appear as terminals in many users' tasks, and every
  λ=0 task shares one uniform cost surface, so
  :class:`TerminalClosureCache` memoizes ``(source, cost-signature) ->
  (dist, prev)`` in an LRU and reuses a run whenever its settled set
  covers the targets a new task needs.

Cache reuse is exact, not approximate: a Dijkstra's settle sequence does
not depend on its early-exit target set (targets only decide when the
loop *stops*), so a longer run's ``(dist, prev)`` agrees with a fresh
shorter run on every entry the Steiner construction reads. Predecessor
chains are safe because Eq. (1) costs are bounded below by ``1 - ρ > 0``
— every node on a shortest path settles strictly before its target.

An opt-in second tier (``partial_reuse=True``) extends reuse to λ>0
workloads whose tasks boost *different* edges: base-cost (unit) Dijkstra
runs are memoized once per node and recombined with each task's boosted
edges through a small overlay graph (see
:meth:`TerminalClosureCache._patched_closure`). Distances remain exact;
only the tie-breaking among equal-cost shortest paths can differ from a
cold run, which is why the default stays off.

:class:`BatchSummarizer` wraps all of it: accepts many tasks, dispatches
them across an optional thread pool (pure-Python summarization is
GIL-bound, so ``workers`` mainly helps when tasks block elsewhere;
results are deterministic and ordered either way), and returns per-task
timings plus cache statistics in a :class:`BatchReport`.

JSONL (de)serialization for task files lives here too — the CLI
``batch`` subcommand reads one task per line.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import METHODS, Summarizer
from repro.graph.heap import AddressableHeap
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import dijkstra_frozen, dijkstra_indexed

#: Cache-key marker for base-cost (all-unit) full-settle Dijkstra runs —
#: a sentinel no real cost signature can equal, so base entries and
#: per-signature closure entries share one LRU without colliding.
_BASE_COSTS = ("__base-unit__",)


class TerminalClosureCache:
    """LRU memo of single-source Dijkstra runs over a frozen view.

    Keyed by ``(source id, cost signature)``. An entry is reusable for a
    request whenever every requested target is in its settled set; on a
    miss the fresh run replaces the entry if it settled more nodes.
    Thread-safe (the batch engine shares one cache across workers); the
    Dijkstra itself runs outside the lock, so concurrent misses on the
    same key merely duplicate work, never corrupt results.

    λ-aware partial reuse (``partial_reuse=True``) adds a second tier
    for boosted cost surfaces — Eq. (1) surfaces that are the unit base
    patched on a handful of boosted slots (declared via
    ``FrozenCosts.overrides``). On an exact-signature miss the closure
    is *derived* instead of recomputed from scratch: full-settle
    base-cost runs from the source and from every boosted-edge endpoint
    (memoized under a shared base key, so they cut across tasks with
    **disjoint** boost sets) are recombined through a tiny overlay graph
    whose nodes are the boosted endpoints and whose edges are base
    distances plus the boosted edges themselves. Distances are exact
    (boosts only ever lower costs, so every shortest path decomposes
    into base segments joined at boosted edges); the returned paths are
    exact shortest paths too, but where *several* shortest paths tie the
    derivation may pick a different one than a cold heap would — which
    is why the mode is opt-in and the default keeps the bit-identical
    fresh-run behaviour.
    """

    #: Partial-reuse bail-out: with more boosted-edge endpoints than
    #: this, the per-hub base runs + O(hubs^2) overlay cost more than
    #: the single early-exit fresh run they replace.
    MAX_OVERLAY_HUBS = 48

    def __init__(
        self, maxsize: int = 4096, partial_reuse: bool = False
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.partial_reuse = partial_reuse
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self.base_hits = 0
        self.base_misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._frozen = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters kept)."""
        with self._lock:
            self._entries.clear()
            self._frozen = None

    def pair_fn(self, frozen, costs):
        """``(source, rest) -> (dist, prev)`` hook bound to one frozen view.

        Entries from an older frozen view (a re-freeze after graph
        mutation) are discarded wholesale — version-keyed staleness is
        handled here so callers never see distances from a dead graph.
        """
        with self._lock:
            if frozen is not self._frozen:
                self._entries.clear()
                self._frozen = frozen
        signature = costs.signature

        def pairs(source: str, rest: set[str]):
            key = (source, signature)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and rest <= entry[0].keys():
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry
            result = None
            if self.partial_reuse and getattr(costs, "overrides", None):
                result = self._patched_closure(frozen, costs, source, rest)
            if result is not None:
                with self._lock:
                    self.patched += 1
            else:
                result = dijkstra_frozen(
                    frozen, source, costs=costs, targets=rest
                )
                with self._lock:
                    self.misses += 1
            dist, prev = result
            with self._lock:
                # The cache may have been rebound to a newer frozen view
                # while this Dijkstra ran; our result is still valid for
                # our caller, but must not repopulate the new view's
                # cache with pre-mutation distances.
                if frozen is self._frozen:
                    current = self._entries.get(key)
                    if current is None or len(current[0]) < len(dist):
                        self._entries[key] = (dist, prev)
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.maxsize:
                            self._entries.popitem(last=False)
            return dist, prev

        return pairs

    # ------------------------------------------------------------------
    # λ-aware partial reuse: base runs + boosted-edge overlay
    # ------------------------------------------------------------------
    def _base_run(self, frozen, index: int):
        """Full-settle unit-cost Dijkstra from a node, memoized.

        These runs are λ-independent — every boosted surface shares
        them — so entries keyed ``(index, _BASE_COSTS)`` are the tier
        that cuts across tasks with disjoint boost sets. Returns the
        index-keyed ``(dist, prev)`` of ``dijkstra_indexed``. Lookups
        count into ``base_hits``/``base_misses``, not ``hits``/``misses``
        — the report's closure hit rate stays about closure requests.
        """
        key = (index, _BASE_COSTS)
        with self._lock:
            # Base keys are index-keyed, and a dense index means a
            # different node on a different frozen view — so reads (like
            # every write path) are only valid against the view this
            # cache is currently bound to. A stale caller computes fresh.
            entry = (
                self._entries.get(key)
                if frozen is self._frozen
                else None
            )
            if entry is not None:
                self._entries.move_to_end(key)
                self.base_hits += 1
                return entry
        run = dijkstra_indexed(
            frozen, index, costs=frozen.shared_unit_costs()
        )
        with self._lock:
            self.base_misses += 1
            if frozen is self._frozen and key not in self._entries:
                self._entries[key] = run
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
        return run

    def _patched_closure(self, frozen, costs, source: str, rest: set[str]):
        """Derive a boosted closure from base runs + an overlay graph.

        Exact by decomposition: boosts only lower slot costs, so any
        shortest path under the boosted surface splits into base-cost
        segments joined at boosted edges. The overlay graph has the
        source, the boosted-edge endpoints and the targets as nodes;
        base distances (from memoized full-settle unit runs) and the
        boosted edges as weighted edges. A Dijkstra over that handful
        of nodes yields the exact boosted distances, and expanding its
        hops through the base predecessor chains yields exact shortest
        paths. Returns id-keyed ``(dist, prev)`` covering the reachable
        targets, or None when the override structure is not the
        symmetric-decrease shape the decomposition needs (the caller
        then falls back to a fresh run).
        """
        edges: dict[tuple[int, int], float] = {}
        slot_count: dict[tuple[int, int], int] = {}
        for slot, value in costs.overrides:
            if value > 1.0:
                return None
            u, v = frozen.slot_endpoints(slot)
            key = (u, v) if u < v else (v, u)
            if key in edges and edges[key] != value:
                return None
            edges[key] = value
            slot_count[key] = slot_count.get(key, 0) + 1
        if any(count != 2 for count in slot_count.values()):
            return None

        ids = frozen.ids
        source_idx = frozen.index_of(source)
        target_of = {}
        for target in sorted(rest):
            if target in frozen:
                target_of[frozen.index_of(target)] = target
        hubs = [source_idx] + sorted(
            {i for pair in edges for i in pair} - {source_idx}
        )
        if len(hubs) > self.MAX_OVERLAY_HUBS:
            # One full-settle base run per hub plus an O(hubs^2) overlay
            # only beats a single early-exit fresh run while the boost
            # set is small; past this point fall back to the fresh run.
            return None
        base = {hub: self._base_run(frozen, hub) for hub in hubs}
        h_nodes = sorted(set(hubs) | set(target_of))

        boosted_adj: dict[int, list[tuple[int, float]]] = {}
        for (u, v), value in edges.items():
            boosted_adj.setdefault(u, []).append((v, value))
            boosted_adj.setdefault(v, []).append((u, value))

        heap: AddressableHeap[int] = AddressableHeap()
        heap.push(source_idx, 0.0)
        h_dist: dict[int, float] = {}
        h_prev: dict[int, tuple[int, bool]] = {}
        tentative: dict[int, tuple[int, bool]] = {}
        while heap:
            node, d = heap.pop_min()
            h_dist[node] = d
            if node in tentative:
                h_prev[node] = tentative[node]
            base_run = base.get(node)
            if base_run is None:
                continue  # plain targets are sinks in the overlay
            base_dist = base_run[0]
            for other in h_nodes:
                if other in h_dist or other == node:
                    continue
                base_d = base_dist.get(other)
                if base_d is not None and heap.decrease_if_lower(
                    other, d + base_d
                ):
                    tentative[other] = (node, False)
            for other, value in boosted_adj.get(node, ()):
                if other in h_dist:
                    continue
                if heap.decrease_if_lower(other, d + value):
                    tentative[other] = (node, True)

        dist: dict[str, float] = {}
        prev: dict[str, str] = {}
        for t_idx in sorted(target_of):
            if t_idx not in h_dist:
                continue  # disconnected, exactly like the fresh run
            dist[target_of[t_idx]] = h_dist[t_idx]
            path = self._expand_overlay_path(base, h_prev, source_idx, t_idx)
            # First-writer-wins keeps every recorded chain a shortest
            # path: each written node carries its exact boosted distance,
            # so splicing a later path onto an earlier one at a shared
            # node preserves both length and termination at the source.
            for above, node in zip(path, path[1:]):
                prev.setdefault(ids[node], ids[above])
        return dist, prev

    @staticmethod
    def _expand_overlay_path(base, h_prev, source_idx: int, t_idx: int):
        """Expand an overlay hop sequence into a full index path."""
        hops = []
        node = t_idx
        while node != source_idx:
            above, boosted = h_prev[node]
            hops.append((above, node, boosted))
            node = above
        hops.reverse()
        path = [source_idx]
        for above, node, boosted in hops:
            if boosted:
                path.append(node)
                continue
            chain = [node]
            base_prev = base[above][1]
            while chain[-1] != above:
                chain.append(base_prev[chain[-1]])
            chain.reverse()
            path.extend(chain[1:])
        return path


@dataclass(frozen=True)
class BatchResult:
    """One task's outcome inside a batch."""

    index: int
    task: SummaryTask
    explanation: SubgraphExplanation
    seconds: float


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run measured."""

    method: str
    results: tuple[BatchResult, ...]
    freeze_seconds: float
    total_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_patched: int = 0
    cache_base_hits: int = 0
    cache_base_misses: int = 0
    workers: int = 0

    @property
    def explanations(self) -> list[SubgraphExplanation]:
        """Per-task explanations, in input order."""
        return [r.explanation for r in self.results]

    @property
    def task_seconds(self) -> list[float]:
        """Per-task wall-clock seconds, in input order."""
        return [r.seconds for r in self.results]

    @property
    def throughput(self) -> float:
        """Tasks per second over the whole run (freeze included)."""
        if self.total_seconds <= 0:
            return 0.0
        return len(self.results) / self.total_seconds

    def summary(self) -> str:
        """Human-readable one-screen report."""
        seconds = self.task_seconds
        lines = [
            f"batch method={self.method} tasks={len(self.results)} "
            f"workers={self.workers}",
            f"  total      {self.total_seconds * 1000.0:10.1f} ms",
            f"  freeze     {self.freeze_seconds * 1000.0:10.1f} ms",
            f"  throughput {self.throughput:10.1f} tasks/s",
        ]
        if seconds:
            ordered = sorted(seconds)
            p50 = ordered[len(ordered) // 2]
            p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
            lines.append(
                f"  per-task   mean {sum(seconds) / len(seconds) * 1000.0:.2f} ms"
                f" | p50 {p50 * 1000.0:.2f} ms | p95 {p95 * 1000.0:.2f} ms"
                f" | max {max(seconds) * 1000.0:.2f} ms"
            )
        if self.cache_hits or self.cache_misses:
            total = self.cache_hits + self.cache_misses
            lines.append(
                f"  closures   {self.cache_hits}/{total} cache hits "
                f"({self.cache_hits / total:.0%})"
            )
        if self.cache_patched:
            base_total = self.cache_base_hits + self.cache_base_misses
            lines.append(
                f"  patched    {self.cache_patched} closures derived "
                f"from base runs (λ-aware reuse; "
                f"{self.cache_base_hits}/{base_total} base-run hits)"
            )
        return "\n".join(lines)


class BatchSummarizer:
    """Many-task summarization over one knowledge graph.

    Parameters
    ----------
    graph:
        The shared knowledge graph. Frozen once per run (re-frozen
        automatically if mutated between runs).
    method:
        Any of the facade's methods ("ST", "ST-fast", "PCST", "Union").
        ST, ST-fast and PCST all run on the shared frozen CSR view
        (frozen once per run, up front); ST additionally shares the
        terminal-closure cache across tasks. Union builds straight from
        the task's paths (no traversal, ``freeze_seconds`` is 0.0).
        Output is identical to a per-task :class:`Summarizer` for every
        method.
    workers:
        Thread-pool size; 0 or 1 runs tasks sequentially. Results are
        identical and ordered regardless.
    closure_cache_size:
        LRU capacity of the shared :class:`TerminalClosureCache`.
    partial_reuse:
        Enable the cache's λ-aware partial reuse (ST only): boosted
        (λ>0) closures are derived from memoized base-cost runs patched
        with each task's boosted edges, so reuse cuts across tasks with
        disjoint boost sets. Distances stay exact; ties between
        equal-cost shortest paths may resolve differently than a cold
        run, so this is opt-in (default off = bit-identical outputs).
    **params:
        Forwarded to :class:`Summarizer` (lam, weight_influence,
        prize_policy, engine, ...).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        method: str = "ST",
        workers: int = 0,
        closure_cache_size: int = 4096,
        partial_reuse: bool = False,
        **params,
    ) -> None:
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.graph = graph
        self.method = method
        self.workers = workers
        engine = params.get("engine", "frozen")
        self._uses_frozen = method != "Union" and engine != "dict"
        self.closure_cache = (
            TerminalClosureCache(closure_cache_size, partial_reuse=partial_reuse)
            if method == "ST"
            else None
        )
        self._summarizer = Summarizer(
            graph, method=method, closure_cache=self.closure_cache, **params
        )

    def run(self, tasks: Iterable[SummaryTask]) -> BatchReport:
        """Summarize every task; per-task timings in the report."""
        task_list = list(tasks)
        start = time.perf_counter()
        freeze_seconds = 0.0
        if self._uses_frozen:
            freeze_start = time.perf_counter()
            self.graph.freeze()
            freeze_seconds = time.perf_counter() - freeze_start
        cache = self.closure_cache
        hits0 = cache.hits if cache else 0
        misses0 = cache.misses if cache else 0
        patched0 = cache.patched if cache else 0
        base_hits0 = cache.base_hits if cache else 0
        base_misses0 = cache.base_misses if cache else 0

        def one(indexed: tuple[int, SummaryTask]) -> BatchResult:
            index, task = indexed
            task_start = time.perf_counter()
            explanation = self._summarizer.summarize(task)
            return BatchResult(
                index=index,
                task=task,
                explanation=explanation,
                seconds=time.perf_counter() - task_start,
            )

        if self.workers > 1 and len(task_list) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(one, enumerate(task_list)))
        else:
            results = [one(pair) for pair in enumerate(task_list)]

        return BatchReport(
            method=self.method,
            results=tuple(results),
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=(self.closure_cache.hits - hits0)
            if self.closure_cache
            else 0,
            cache_misses=(self.closure_cache.misses - misses0)
            if self.closure_cache
            else 0,
            cache_patched=(self.closure_cache.patched - patched0)
            if self.closure_cache
            else 0,
            cache_base_hits=(self.closure_cache.base_hits - base_hits0)
            if self.closure_cache
            else 0,
            cache_base_misses=(self.closure_cache.base_misses - base_misses0)
            if self.closure_cache
            else 0,
            workers=self.workers,
        )


# ----------------------------------------------------------------------
# JSONL task files (one task per line) for the CLI `batch` subcommand
# ----------------------------------------------------------------------
def task_to_json(task: SummaryTask) -> dict:
    """Plain-JSON form of a task (inverse of :func:`task_from_json`)."""
    return {
        "scenario": task.scenario.value,
        "terminals": list(task.terminals),
        "paths": [list(p.nodes) for p in task.paths],
        "anchors": list(task.anchors),
        "focus": list(task.focus),
        "k": task.k,
    }


def task_from_json(data: dict) -> SummaryTask:
    """Build a task from its JSON form; raises on malformed input."""
    return SummaryTask(
        scenario=Scenario(data["scenario"]),
        terminals=tuple(data["terminals"]),
        paths=tuple(
            Path(nodes=tuple(nodes)) for nodes in data.get("paths", [])
        ),
        anchors=tuple(data.get("anchors", [])),
        focus=tuple(data.get("focus", [])),
        k=int(data.get("k", 0)),
    )


def load_tasks_jsonl(path: str | FilePath) -> list[SummaryTask]:
    """Read tasks from a JSONL file, skipping blank lines."""
    tasks = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                tasks.append(task_from_json(json.loads(line)))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad task line ({error})"
                ) from error
    return tasks


def dump_tasks_jsonl(
    tasks: Sequence[SummaryTask], path: str | FilePath
) -> None:
    """Write tasks to a JSONL file (one task per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for task in tasks:
            handle.write(json.dumps(task_to_json(task)) + "\n")
