"""Batch summarization engine: freeze once, memoize closures, time everything.

Serving summary explanations to many users means answering many
:class:`SummaryTask`s over the *same* knowledge graph. Running the
facade :class:`~repro.core.summarizer.Summarizer` in a loop repeats work
that is identical across tasks:

- the CSR compilation of the graph (``graph.freeze()`` — shared here,
  computed once up front and version-checked);
- the terminal-to-terminal Dijkstra runs of the ST metric closure —
  popular items appear as terminals in many users' tasks, and every
  λ=0 task shares one uniform cost surface, so
  :class:`TerminalClosureCache` memoizes ``(source, cost-signature) ->
  (dist, prev)`` in an LRU and reuses a run whenever its settled set
  covers the targets a new task needs.

Cache reuse is exact, not approximate: a Dijkstra's settle sequence does
not depend on its early-exit target set (targets only decide when the
loop *stops*), so a longer run's ``(dist, prev)`` agrees with a fresh
shorter run on every entry the Steiner construction reads. Predecessor
chains are safe because Eq. (1) costs are bounded below by ``1 - ρ > 0``
— every node on a shortest path settles strictly before its target.

:class:`BatchSummarizer` wraps all of it: accepts many tasks, dispatches
them across an optional thread pool (pure-Python summarization is
GIL-bound, so ``workers`` mainly helps when tasks block elsewhere;
results are deterministic and ordered either way), and returns per-task
timings plus cache statistics in a :class:`BatchReport`.

JSONL (de)serialization for task files lives here too — the CLI
``batch`` subcommand reads one task per line.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import METHODS, Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import dijkstra_frozen


class TerminalClosureCache:
    """LRU memo of single-source Dijkstra runs over a frozen view.

    Keyed by ``(source id, cost signature)``. An entry is reusable for a
    request whenever every requested target is in its settled set; on a
    miss the fresh run replaces the entry if it settled more nodes.
    Thread-safe (the batch engine shares one cache across workers); the
    Dijkstra itself runs outside the lock, so concurrent misses on the
    same key merely duplicate work, never corrupt results.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._frozen = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters kept)."""
        with self._lock:
            self._entries.clear()
            self._frozen = None

    def pair_fn(self, frozen, costs):
        """``(source, rest) -> (dist, prev)`` hook bound to one frozen view.

        Entries from an older frozen view (a re-freeze after graph
        mutation) are discarded wholesale — version-keyed staleness is
        handled here so callers never see distances from a dead graph.
        """
        with self._lock:
            if frozen is not self._frozen:
                self._entries.clear()
                self._frozen = frozen
        signature = costs.signature

        def pairs(source: str, rest: set[str]):
            key = (source, signature)
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and rest <= entry[0].keys():
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry
            dist, prev = dijkstra_frozen(
                frozen, source, costs=costs, targets=rest
            )
            with self._lock:
                self.misses += 1
                # The cache may have been rebound to a newer frozen view
                # while this Dijkstra ran; our result is still valid for
                # our caller, but must not repopulate the new view's
                # cache with pre-mutation distances.
                if frozen is self._frozen:
                    current = self._entries.get(key)
                    if current is None or len(current[0]) < len(dist):
                        self._entries[key] = (dist, prev)
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.maxsize:
                            self._entries.popitem(last=False)
            return dist, prev

        return pairs


@dataclass(frozen=True)
class BatchResult:
    """One task's outcome inside a batch."""

    index: int
    task: SummaryTask
    explanation: SubgraphExplanation
    seconds: float


@dataclass(frozen=True)
class BatchReport:
    """Everything a batch run measured."""

    method: str
    results: tuple[BatchResult, ...]
    freeze_seconds: float
    total_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0

    @property
    def explanations(self) -> list[SubgraphExplanation]:
        """Per-task explanations, in input order."""
        return [r.explanation for r in self.results]

    @property
    def task_seconds(self) -> list[float]:
        """Per-task wall-clock seconds, in input order."""
        return [r.seconds for r in self.results]

    @property
    def throughput(self) -> float:
        """Tasks per second over the whole run (freeze included)."""
        if self.total_seconds <= 0:
            return 0.0
        return len(self.results) / self.total_seconds

    def summary(self) -> str:
        """Human-readable one-screen report."""
        seconds = self.task_seconds
        lines = [
            f"batch method={self.method} tasks={len(self.results)} "
            f"workers={self.workers}",
            f"  total      {self.total_seconds * 1000.0:10.1f} ms",
            f"  freeze     {self.freeze_seconds * 1000.0:10.1f} ms",
            f"  throughput {self.throughput:10.1f} tasks/s",
        ]
        if seconds:
            ordered = sorted(seconds)
            p50 = ordered[len(ordered) // 2]
            p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
            lines.append(
                f"  per-task   mean {sum(seconds) / len(seconds) * 1000.0:.2f} ms"
                f" | p50 {p50 * 1000.0:.2f} ms | p95 {p95 * 1000.0:.2f} ms"
                f" | max {max(seconds) * 1000.0:.2f} ms"
            )
        if self.cache_hits or self.cache_misses:
            total = self.cache_hits + self.cache_misses
            lines.append(
                f"  closures   {self.cache_hits}/{total} cache hits "
                f"({self.cache_hits / total:.0%})"
            )
        return "\n".join(lines)


class BatchSummarizer:
    """Many-task summarization over one knowledge graph.

    Parameters
    ----------
    graph:
        The shared knowledge graph. Frozen once per run (re-frozen
        automatically if mutated between runs).
    method:
        Any of the facade's methods ("ST", "ST-fast", "PCST", "Union").
        Only "ST" uses the frozen view and the closure cache; the other
        methods run their per-task algorithms unchanged (``freeze_seconds``
        is 0.0 for them) and get the dispatch/timing plumbing, with
        output identical to a per-task :class:`Summarizer` either way.
    workers:
        Thread-pool size; 0 or 1 runs tasks sequentially. Results are
        identical and ordered regardless.
    closure_cache_size:
        LRU capacity of the shared :class:`TerminalClosureCache`.
    **params:
        Forwarded to :class:`Summarizer` (lam, weight_influence,
        prize_policy, ...).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        method: str = "ST",
        workers: int = 0,
        closure_cache_size: int = 4096,
        **params,
    ) -> None:
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.graph = graph
        self.method = method
        self.workers = workers
        self.closure_cache = (
            TerminalClosureCache(closure_cache_size) if method == "ST" else None
        )
        self._summarizer = Summarizer(
            graph, method=method, closure_cache=self.closure_cache, **params
        )

    def run(self, tasks: Iterable[SummaryTask]) -> BatchReport:
        """Summarize every task; per-task timings in the report."""
        task_list = list(tasks)
        start = time.perf_counter()
        freeze_seconds = 0.0
        if self.method == "ST":
            freeze_start = time.perf_counter()
            self.graph.freeze()
            freeze_seconds = time.perf_counter() - freeze_start
        hits0 = self.closure_cache.hits if self.closure_cache else 0
        misses0 = self.closure_cache.misses if self.closure_cache else 0

        def one(indexed: tuple[int, SummaryTask]) -> BatchResult:
            index, task = indexed
            task_start = time.perf_counter()
            explanation = self._summarizer.summarize(task)
            return BatchResult(
                index=index,
                task=task,
                explanation=explanation,
                seconds=time.perf_counter() - task_start,
            )

        if self.workers > 1 and len(task_list) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(one, enumerate(task_list)))
        else:
            results = [one(pair) for pair in enumerate(task_list)]

        return BatchReport(
            method=self.method,
            results=tuple(results),
            freeze_seconds=freeze_seconds,
            total_seconds=time.perf_counter() - start,
            cache_hits=(self.closure_cache.hits - hits0)
            if self.closure_cache
            else 0,
            cache_misses=(self.closure_cache.misses - misses0)
            if self.closure_cache
            else 0,
            workers=self.workers,
        )


# ----------------------------------------------------------------------
# JSONL task files (one task per line) for the CLI `batch` subcommand
# ----------------------------------------------------------------------
def task_to_json(task: SummaryTask) -> dict:
    """Plain-JSON form of a task (inverse of :func:`task_from_json`)."""
    return {
        "scenario": task.scenario.value,
        "terminals": list(task.terminals),
        "paths": [list(p.nodes) for p in task.paths],
        "anchors": list(task.anchors),
        "focus": list(task.focus),
        "k": task.k,
    }


def task_from_json(data: dict) -> SummaryTask:
    """Build a task from its JSON form; raises on malformed input."""
    return SummaryTask(
        scenario=Scenario(data["scenario"]),
        terminals=tuple(data["terminals"]),
        paths=tuple(
            Path(nodes=tuple(nodes)) for nodes in data.get("paths", [])
        ),
        anchors=tuple(data.get("anchors", [])),
        focus=tuple(data.get("focus", [])),
        k=int(data.get("k", 0)),
    )


def load_tasks_jsonl(path: str | FilePath) -> list[SummaryTask]:
    """Read tasks from a JSONL file, skipping blank lines."""
    tasks = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                tasks.append(task_from_json(json.loads(line)))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad task line ({error})"
                ) from error
    return tasks


def dump_tasks_jsonl(
    tasks: Sequence[SummaryTask], path: str | FilePath
) -> None:
    """Write tasks to a JSONL file (one task per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for task in tasks:
            handle.write(json.dumps(task_to_json(task)) + "\n")
