"""Core library: summary explanations for graph recommenders.

This package implements the paper's contribution — aggregating sets of
path-based explanations into small connected subgraphs — for the four
scenarios (user-centric, item-centric, user-group, item-group) with the
Steiner-Tree and Prize-Collecting-Steiner-Tree methods.
"""

from repro.core.scenarios import (
    Scenario,
    SummaryTask,
    item_centric_task,
    item_group_task,
    user_centric_task,
    user_group_task,
)
from repro.core.explanation import (
    Explanation,
    PathSetExplanation,
    SubgraphExplanation,
)
from repro.core.weighting import ExplanationWeighting
from repro.core.batch import (
    BatchReport,
    BatchResult,
    BatchSummarizer,
    TerminalClosureCache,
    dump_tasks_jsonl,
    load_tasks_jsonl,
)
from repro.core.incremental import IncrementalSteinerSummarizer
from repro.core.steiner_summary import SteinerSummarizer
from repro.core.pcst_summary import PCSTSummarizer, PrizePolicy
from repro.core.union_summary import UnionSummarizer
from repro.core.summarizer import Summarizer, summarize
from repro.core.verbalize import verbalize_path, verbalize_summary

__all__ = [
    "BatchReport",
    "BatchResult",
    "BatchSummarizer",
    "Explanation",
    "ExplanationWeighting",
    "IncrementalSteinerSummarizer",
    "PCSTSummarizer",
    "PathSetExplanation",
    "PrizePolicy",
    "Scenario",
    "SteinerSummarizer",
    "SubgraphExplanation",
    "Summarizer",
    "SummaryTask",
    "TerminalClosureCache",
    "UnionSummarizer",
    "dump_tasks_jsonl",
    "item_centric_task",
    "item_group_task",
    "load_tasks_jsonl",
    "summarize",
    "user_centric_task",
    "user_group_task",
    "verbalize_path",
    "verbalize_summary",
]
