"""Eq. (1) explanation-aware edge weighting and cost conversion.

The paper boosts each edge's weight by how often the individual
explanation paths use it::

    w(e) = w_M(e) * (1 + λ * Σ_{x∈S} 1_{e∈P} / |S|)

then feeds the Steiner machinery "multiplying all edge weights by -1" so
the minimizing tree maximizes weight while minimizing edge count. A
literal ``-w`` breaks Dijkstra, so :class:`ExplanationWeighting` performs
a positive-cost transform with the same preference structure::

    boost(e) = λ * (w_M(e) / w_max) * freq(e) / |S|     (the Eq. 1 term)
    cost(e)  = 1 - ρ * boost(e) / (1 + boost(e))        ∈ (1 - ρ, 1]

Every edge pays a base cost of 1 (the |E_S|-minimization term),
discounted by up to ``ρ`` as its explanation-path boost grows (the
Σw-maximization term). The saturating ``x/(1+x)`` keeps costs positive
for Dijkstra while reproducing the paper's reported λ behaviour:

- λ = 0 → uniform costs → the summarizer "creates a new explanation"
  (pure fewest-edges Steiner tree), exactly as §IV-A states;
- λ large → edges on the input explanation paths become far cheaper than
  anything else, so the summary stitches the given paths together and —
  because only rating-weighted interaction edges receive a boost
  (``w_A = 0`` kills it for knowledge edges) — pulls in "more user-item
  interactions which have larger weights", the paper's Fig 7 trend.

Stored weights therefore influence the summary *through* the boost term
(a 5-star path edge is cheaper than a 2-star one, and the β1/β2 recency
mix of Fig 16 propagates), not as a standalone discount.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import paths_edge_frequency
from repro.graph.types import undirected_key

# Per-graph stored-weight maxima; summaries over the same graph are created
# thousands of times per experiment, so the O(|E|) scan runs once per graph
# *version* — mutating the graph (e.g. reweighting an edge) invalidates the
# cached maximum along with every other frozen view.
_STORED_MAX_CACHE: (
    "weakref.WeakKeyDictionary[KnowledgeGraph, tuple[int, float]]"
) = weakref.WeakKeyDictionary()


def _stored_weight_max(graph: KnowledgeGraph) -> float:
    version = graph.version
    cached = _STORED_MAX_CACHE.get(graph)
    if cached is None or cached[0] != version:
        value = max((edge.weight for edge in graph.edges()), default=0.0)
        _STORED_MAX_CACHE[graph] = (version, value)
        return value
    return cached[1]


@dataclass(frozen=True)
class ExplanationWeighting:
    """Eq. (1) weighting bound to one summary task.

    Parameters
    ----------
    lam:
        λ — explanation-path influence. 0 ignores the input paths
        entirely ("the algorithm creates a new explanation"); the paper
        sweeps {0.01, 1, 100}.
    weight_influence:
        ρ — how much of an edge's cost the (boosted, normalized) weight
        can discount. Must lie in [0, 1); at 0 costs are uniform and the
        Steiner objective degenerates to pure edge-count minimization.
    """

    graph: KnowledgeGraph
    task: SummaryTask
    lam: float = 1.0
    weight_influence: float = 0.7

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("λ must be non-negative")
        if not 0.0 <= self.weight_influence < 1.0:
            raise ValueError("weight_influence must be in [0, 1)")
        frequency = paths_edge_frequency(list(self.task.paths))
        anchor_count = max(1, len(self.task.anchors))
        object.__setattr__(self, "_frequency", frequency)
        object.__setattr__(self, "_anchor_count", anchor_count)
        object.__setattr__(self, "_max_weight", self._compute_max_weight())

    # ------------------------------------------------------------------
    def boosted_weight(self, u: str, v: str, stored: float) -> float:
        """``w(e)`` of Eq. (1) for one edge (reported for inspection)."""
        frequency = self._frequency.get(undirected_key(u, v), 0)
        if frequency == 0 or self.lam == 0:
            return stored
        return stored * (1.0 + self.lam * frequency / self._anchor_count)

    def boost(self, u: str, v: str, stored: float) -> float:
        """The normalized Eq. (1) boost term λ·(w_M/w_max)·freq/|S|."""
        frequency = self._frequency.get(undirected_key(u, v), 0)
        if frequency == 0 or self.lam == 0 or self._max_weight <= 0:
            return 0.0
        return (
            self.lam
            * (stored / self._max_weight)
            * (frequency / self._anchor_count)
        )

    def cost(self, u: str, v: str, stored: float) -> float:
        """Positive Steiner cost implementing the paper's ``-w`` trick."""
        boost = self.boost(u, v, stored)
        if boost <= 0.0:
            return 1.0
        return 1.0 - self.weight_influence * boost / (1.0 + boost)

    def cost_fn(self):
        """The ``(u, v, stored) -> cost`` callable the algorithms expect."""
        return self.cost

    def slot_costs(self, frozen):
        """Per-slot costs over a frozen CSR view of the graph.

        Exploits the cost structure: every edge off the explanation
        paths costs exactly 1.0, so the array is the unit base with a
        handful of patched entries (both directed slots per boosted
        edge). The returned :class:`~repro.graph.csr.FrozenCosts`
        signature is the sorted override list — tasks with identical
        boosts (notably every λ=0 task) share a signature, which is what
        lets the batch engine's closure cache cut across tasks. The same
        list is declared as ``overrides`` so the cache's λ-aware partial
        reuse can recombine base-cost runs with just the boosted edges
        for tasks whose boost sets differ.
        """
        from repro.graph.csr import FrozenCosts

        costs = frozen.unit_costs()
        overrides: list[tuple[int, float]] = []
        if self.lam > 0 and self._max_weight > 0:
            for u, v in self._frequency:
                for a, b in ((u, v), (v, u)):
                    slot = frozen.edge_slot(a, b)
                    if slot is None:
                        continue
                    value = self.cost(a, b, frozen.weights[slot])
                    if value < 0.0:
                        raise ValueError(
                            f"negative cost {value} on edge ({a!r}, {b!r});"
                            " cost() must stay non-negative"
                        )
                    if value != 1.0:  # zero-weight edges boost to no-op
                        costs[slot] = value
                        overrides.append((slot, value))
        overrides.sort()
        return FrozenCosts(
            costs,
            signature=tuple(overrides),
            overrides=tuple(overrides),
        )

    # ------------------------------------------------------------------
    def _compute_max_weight(self) -> float:
        """Max stored weight (cached per graph; normalizes the boost)."""
        return _stored_weight_max(self.graph)
