"""Union-graph summary: the "straightforward definition" baseline (§III).

The naive summary is just the union of the individual explanation paths
as a subgraph. The paper argues this overloads users; it is implemented
here as the reference point the ST/PCST summaries are compared against in
ablations (the per-path baselines in the figures keep their multiset form
via :class:`repro.core.explanation.PathSetExplanation`).
"""

from __future__ import annotations

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph


class UnionSummarizer:
    """Union-of-paths summarizer bound to one knowledge graph."""

    method = "Union"

    def __init__(self, graph: KnowledgeGraph) -> None:
        self.graph = graph

    def summarize(self, task: SummaryTask) -> SubgraphExplanation:
        """Union every input path into one subgraph.

        Hallucinated hops (PLM paths) that do not exist in the graph are
        still included — the union summarizes what the recommender
        *said*, not what the graph contains — with weight 0.
        """
        union = KnowledgeGraph()
        for path in task.paths:
            for u, v in path.edges():
                if self.graph.has_edge(u, v):
                    union.add_edge(
                        u, v, self.graph.weight(u, v), self.graph.relation(u, v)
                    )
                else:
                    union.add_edge(u, v, 0.0)
        for terminal in task.terminals:
            if terminal in self.graph and terminal not in union:
                union.add_node(terminal)
        return SubgraphExplanation(
            subgraph=union, task=task, method=self.method
        )
