"""ST summary explanations (§IV-A).

Applies the Eq. (1) explanation-aware weighting and extracts the Steiner
tree over the scenario's terminal set. The λ knob interpolates between
"invent a fresh connecting explanation" (λ=0) and "stitch together the
given explanation paths" (λ→∞).
"""

from __future__ import annotations

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.core.weighting import ExplanationWeighting
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mehlhorn import mehlhorn_steiner_tree
from repro.graph.steiner import steiner_tree

ALGORITHMS = ("kmb", "mehlhorn")


class SteinerSummarizer:
    """Steiner-Tree summarizer bound to one knowledge graph.

    Parameters
    ----------
    graph:
        The knowledge-based graph recommendations were drawn from.
    lam:
        λ of Eq. (1); the paper sweeps {0.01, 1, 100}.
    weight_influence:
        ρ of the cost transform (see :mod:`repro.core.weighting`).
    algorithm:
        "kmb" — the paper's Algorithm 1 (Kou-Markowsky-Berman,
        O(|T|·(|E| + |V| log |V|))) — or "mehlhorn", the single-sweep
        2-approximation offered as the §VII "refinement" ablation.
    engine:
        "frozen" (default; "csr" is an alias) runs the traversal hot
        loops on the graph's cached CSR view (see
        :meth:`KnowledgeGraph.freeze`), re-freezing automatically when
        the graph has been mutated — the KMB metric closure for "kmb",
        the single multi-source Voronoi sweep for "mehlhorn". "dict"
        forces the original dict-of-dicts traversal. Both engines
        produce identical trees (tie-breaking included); "dict" exists
        as the parity oracle and escape hatch.
    closure_cache:
        Optional terminal-closure memoizer (duck-typed; see
        :class:`repro.core.batch.TerminalClosureCache`). Shared across
        tasks by the batch engine; None (default) computes every
        closure fresh.
    canonical:
        Canonical-SPT tie-breaking for the "kmb" closure paths (see
        :func:`repro.graph.steiner.canonical_shortest_path`): among
        equal-cost shortest paths, pick predecessors by smallest node
        id from the final distances instead of by heap pop order.
        Default on — Eq. (1) costs are strictly positive, which the
        canonical walk requires, and the deterministic choice makes the
        summary independent of adjacency insertion order *and*
        bit-identical whether a closure was computed fresh or derived
        from the batch engine's memoized base runs ("mehlhorn" runs
        ignore the flag; its unfold follows the Voronoi tree, which has
        no per-pair reconstruction step).
    """

    method = "ST"

    ENGINES = ("frozen", "csr", "dict")

    def __init__(
        self,
        graph: KnowledgeGraph,
        lam: float = 1.0,
        weight_influence: float = 0.7,
        algorithm: str = "kmb",
        engine: str = "frozen",
        closure_cache=None,
        canonical: bool = True,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected {ALGORITHMS}"
            )
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected {self.ENGINES}"
            )
        self.graph = graph
        self.lam = lam
        self.weight_influence = weight_influence
        self.algorithm = algorithm
        self.engine = "frozen" if engine == "csr" else engine
        self.closure_cache = closure_cache
        self.canonical = canonical

    def summarize(self, task: SummaryTask) -> SubgraphExplanation:
        """Compute the ST summary for one task.

        Terminals missing from the graph (e.g. synthetic users filtered
        out upstream) raise ``KeyError``; disconnected terminals raise
        ``ValueError`` — the user-facing :class:`repro.core.summarizer.
        Summarizer` narrows to the largest connected terminal subset
        first.
        """
        weighting = ExplanationWeighting(
            graph=self.graph,
            task=task,
            lam=self.lam,
            weight_influence=self.weight_influence,
        )
        if self.algorithm == "mehlhorn":
            if self.engine == "frozen":
                frozen = self.graph.freeze()
                tree = mehlhorn_steiner_tree(
                    self.graph,
                    list(task.terminals),
                    cost_fn=weighting.cost_fn(),
                    frozen=frozen,
                    slot_costs=weighting.slot_costs(frozen),
                )
            else:
                tree = mehlhorn_steiner_tree(
                    self.graph,
                    list(task.terminals),
                    cost_fn=weighting.cost_fn(),
                )
        elif self.engine == "frozen":
            frozen = self.graph.freeze()
            slot_costs = weighting.slot_costs(frozen)
            pair_fn = None
            if self.closure_cache is not None:
                pair_fn = self.closure_cache.pair_fn(frozen, slot_costs)
            tree = steiner_tree(
                self.graph,
                list(task.terminals),
                cost_fn=weighting.cost_fn(),
                frozen=frozen,
                slot_costs=slot_costs,
                pair_fn=pair_fn,
                canonical=self.canonical,
            )
        else:
            tree = steiner_tree(
                self.graph,
                list(task.terminals),
                cost_fn=weighting.cost_fn(),
                canonical=self.canonical,
            )
        return SubgraphExplanation(
            subgraph=tree,
            task=task,
            method=self.method,
            params={
                "lam": self.lam,
                "weight_influence": self.weight_influence,
                "algorithm": self.algorithm,
            },
        )
