"""Natural-language rendering of paths and summaries (Table I style).

``verbalize_path`` renders an individual explanation ("User 1 is connected
to Eternity and a Day through Landscape in the Mist, ...");
``verbalize_summary`` renders a summary subgraph ("User 1 is connected to
A, B and C through X, Y and Z" plus per-anchor routes), matching the
phrasing the paper's user study showed to participants.
"""

from __future__ import annotations

from repro.core.explanation import SubgraphExplanation
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.types import NodeType


def _display(graph: KnowledgeGraph | None, node: str) -> str:
    if graph is not None and node in graph:
        return graph.name(node)
    return node


def _join(names: list[str]) -> str:
    if not names:
        return ""
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + f", and {names[-1]}"


def verbalize_path(path: Path, graph: KnowledgeGraph | None = None) -> str:
    """One sentence for one explanation path."""
    start = _display(graph, path.nodes[0])
    end = _display(graph, path.nodes[-1])
    middle = [_display(graph, n) for n in path.intermediate_nodes()]
    if not middle:
        return f"{start} is directly connected to {end}."
    return (
        f"{start} is connected to {end} through {_join(middle)}."
    )


def verbalize_summary(
    explanation: SubgraphExplanation,
    graph: KnowledgeGraph | None = None,
    include_routes: bool = False,
) -> str:
    """Headline sentence (optionally plus per-anchor routes) for a summary.

    The headline names the focus node(s), the anchors reached, and the
    connector nodes the summary routes through. With ``include_routes``
    each anchor's route inside the summary is spelled out as well
    (the format of the user-study summary texts).
    """
    subgraph = explanation.subgraph
    lookup = graph or subgraph
    focus = [
        _display(lookup, f)
        for f in explanation.task.focus
        if f in subgraph
    ]
    anchors = [
        _display(lookup, a)
        for a in explanation.task.anchors
        if a in subgraph
    ]
    terminal_set = set(explanation.task.terminals)
    connectors = sorted(
        _display(lookup, n)
        for n in subgraph.nodes()
        if n not in terminal_set
    )
    if not focus:
        return "The summary is empty."
    headline = f"{_join(focus)} is connected to {_join(anchors)}"
    if connectors:
        headline += f" through {_join(connectors)}"
    headline += "."

    if not include_routes:
        return headline

    routes = []
    for route in explanation.connection_paths:
        if route.num_hops == 1:
            routes.append(
                f"{_display(lookup, route.nodes[0])} is directly connected "
                f"to {_display(lookup, route.nodes[-1])}"
            )
        else:
            via = _join(
                [_display(lookup, n) for n in route.intermediate_nodes()]
            )
            routes.append(
                f"connects to {_display(lookup, route.nodes[-1])} via {via}"
            )
    if routes:
        headline += " " + "; ".join(routes) + "."
    return headline


def node_type_label(node: str) -> str:
    """'user' / 'item' / 'external' label for prose and reports."""
    return NodeType.of(node).value
