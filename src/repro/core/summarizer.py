"""High-level summarization facade.

:class:`Summarizer` is the public entry point: construct it over a
knowledge graph, then call :meth:`summarize` with a
:class:`~repro.core.scenarios.SummaryTask` (or use the scenario helpers
via :func:`summarize`). It handles terminal-connectivity fallback — if
some terminals are unreachable, the ST method summarizes the largest
connected terminal subset instead of failing, mirroring PCST's built-in
prize-forfeiting relaxation.
"""

from __future__ import annotations

from repro.core.explanation import SubgraphExplanation
from repro.core.pcst_summary import PCSTSummarizer, PrizePolicy
from repro.core.scenarios import SummaryTask
from repro.core.steiner_summary import SteinerSummarizer
from repro.core.union_summary import UnionSummarizer
from repro.graph.knowledge_graph import KnowledgeGraph

METHODS = ("ST", "ST-fast", "PCST", "Union")

ENGINES = ("frozen", "csr", "dict")


class Summarizer:
    """Method-dispatching summarizer over one knowledge graph.

    Parameters
    ----------
    graph:
        The knowledge-based graph.
    method:
        "ST", "PCST" or "Union".
    lam, weight_influence:
        ST parameters (Eq. 1 λ and cost transform ρ).
    prize_policy, use_edge_weights, strong_pruning:
        PCST parameters.
    engine:
        Traversal backend for the graph-algorithm methods (ST, ST-fast,
        PCST): "frozen" (CSR fast path, default; "csr" is an alias) or
        "dict" (the original adjacency walk). Identical outputs; see
        :class:`~repro.core.steiner_summary.SteinerSummarizer` and
        :class:`~repro.core.pcst_summary.PCSTSummarizer`. Union builds
        straight from the task's paths and has no traversal to switch.
    closure_cache:
        Optional shared terminal-closure memoizer for ST (used by
        :class:`~repro.core.batch.BatchSummarizer`).
    canonical:
        ST only: canonical-SPT tie-breaking (deterministic min-id
        predecessor choice from final distances; default on). See
        :class:`~repro.core.steiner_summary.SteinerSummarizer`.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        method: str = "ST",
        lam: float = 1.0,
        weight_influence: float = 0.7,
        prize_policy: PrizePolicy = PrizePolicy.BINARY,
        use_edge_weights: bool = False,
        strong_pruning: bool = False,
        engine: str = "frozen",
        closure_cache=None,
        canonical: bool = True,
    ) -> None:
        if engine not in ENGINES:
            # Validated here, not only in the impls, so a typo fails the
            # same way for every method — Union never sees the kwarg.
            raise ValueError(
                f"unknown engine {engine!r}; expected {ENGINES}"
            )
        self.graph = graph
        self.method = method
        if method == "ST":
            self._impl = SteinerSummarizer(
                graph,
                lam=lam,
                weight_influence=weight_influence,
                engine=engine,
                closure_cache=closure_cache,
                canonical=canonical,
            )
        elif method == "ST-fast":
            self._impl = SteinerSummarizer(
                graph,
                lam=lam,
                weight_influence=weight_influence,
                algorithm="mehlhorn",
                engine=engine,
            )
        elif method == "PCST":
            self._impl = PCSTSummarizer(
                graph,
                prize_policy=prize_policy,
                use_edge_weights=use_edge_weights,
                strong_pruning=strong_pruning,
                engine=engine,
            )
        elif method == "Union":
            self._impl = UnionSummarizer(graph)
        else:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )

    def summarize(self, task: SummaryTask) -> SubgraphExplanation:
        """Summarize one task, narrowing to connected terminals if needed."""
        try:
            return self._impl.summarize(task)
        except ValueError:
            narrowed = self._narrow_to_connected(task)
            if narrowed is task:
                raise
            return self._impl.summarize(narrowed)

    # ------------------------------------------------------------------
    def _narrow_to_connected(self, task: SummaryTask) -> SummaryTask:
        """Restrict a task to its largest mutually-connected terminal set.

        Keeps the component containing the focus node(s) when possible so
        the summary still answers "why did *this* user/item ...".
        """
        present = [t for t in task.terminals if t in self.graph]
        if len(present) < 2:
            return task
        components = self._terminal_components(present)
        focus_set = set(task.focus)
        components.sort(
            key=lambda c: (len(c & focus_set), len(c)), reverse=True
        )
        keep = components[0]
        if len(keep) == len(present) == len(task.terminals):
            return task
        terminals = tuple(t for t in task.terminals if t in keep)
        anchors = tuple(a for a in task.anchors if a in keep)
        focus = tuple(f for f in task.focus if f in keep)
        if not terminals or not focus:
            return task
        paths = tuple(
            p
            for p in task.paths
            if p.nodes[0] in keep or p.nodes[-1] in keep
        )
        return SummaryTask(
            scenario=task.scenario,
            terminals=terminals,
            paths=paths,
            anchors=anchors,
            focus=focus,
            k=task.k,
        )

    def _terminal_components(self, terminals: list[str]) -> list[set[str]]:
        """Group terminals by graph connected component (BFS per group)."""
        remaining = set(terminals)
        groups: list[set[str]] = []
        while remaining:
            # Deterministic start: input order, not set (hash) order, so
            # the group list — and stable-sort tie-breaks over it — are
            # identical across processes.
            start = next(t for t in terminals if t in remaining)
            component = {start}
            frontier = [start]
            seen = {start}
            while frontier:
                node = frontier.pop()
                for neighbor in self.graph.neighbors(node):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    frontier.append(neighbor)
                    if neighbor in remaining:
                        component.add(neighbor)
            groups.append(component)
            remaining -= component
        return groups


def summarize(
    graph: KnowledgeGraph,
    task: SummaryTask,
    method: str = "ST",
    **kwargs,
) -> SubgraphExplanation:
    """One-shot convenience wrapper around :class:`Summarizer`."""
    return Summarizer(graph, method=method, **kwargs).summarize(task)
