"""repro: reproduction of "Path-based summary explanations for graph
recommenders" (Pla Karidi & Pitoura, ICDE 2025).

Public API tour
---------------
- :mod:`repro.api` — the service layer: :class:`ExplanationSession`
  (typed configs, method registry, warm pooled execution, streaming
  results) — the preferred entry point for serving explanations.
- :mod:`repro.graph` — knowledge-graph substrate and the Steiner / PCST
  algorithms.
- :mod:`repro.data` — ML1M/LFM1M-shaped synthetic datasets and DBpedia-
  style external knowledge.
- :mod:`repro.recommenders` — PGPR / CAFE / PLM / PEARLM structural
  simulators emitting path explanations.
- :mod:`repro.core` — the paper's contribution: ST and PCST summary
  explanations for the four scenarios.
- :mod:`repro.metrics` — the eight evaluation metric families.
- :mod:`repro.experiments` — workbench + builders for every table/figure.

Quickstart::

    from repro import quick_demo
    print(quick_demo())
"""

from repro.api import (
    CacheConfig,
    EngineConfig,
    ExplanationSession,
    ParallelConfig,
    SummaryRequest,
)
from repro.core.scenarios import (
    Scenario,
    item_centric_task,
    item_group_task,
    user_centric_task,
    user_group_task,
)
from repro.core.summarizer import Summarizer, summarize

__version__ = "1.1.0"

__all__ = [
    "CacheConfig",
    "EngineConfig",
    "ExplanationSession",
    "ParallelConfig",
    "Scenario",
    "Summarizer",
    "SummaryRequest",
    "__version__",
    "item_centric_task",
    "item_group_task",
    "quick_demo",
    "summarize",
    "user_centric_task",
    "user_group_task",
]


def quick_demo() -> str:
    """Tiny self-contained demo: the paper's Table I example, verbalized."""
    from repro.experiments.tables import table1_example

    result = table1_example()
    lines = [*result.path_sentences, "", f"Summary: {result.summary_sentence}"]
    lines.append(
        f"(total path edges {result.total_path_edges} -> "
        f"summary edges {result.summary_edges})"
    )
    return "\n".join(lines)
