"""Data substrate: rating matrices, synthetic dataset generators shaped
like MovieLens-1M and LastFM-1M, DBpedia-style external knowledge, and the
user/item sampling schemes used by the paper's experiments.
"""

from repro.data.ratings import Rating, RatingMatrix
from repro.data.movielens import MovieLensSpec, generate_ml1m_like
from repro.data.lastfm import LastFMSpec, generate_lfm1m_like
from repro.data.dbpedia import ExternalSchema, attach_external_knowledge
from repro.data.sampling import (
    sample_items_by_popularity,
    sample_users_balanced,
)

__all__ = [
    "ExternalSchema",
    "LastFMSpec",
    "MovieLensSpec",
    "Rating",
    "RatingMatrix",
    "attach_external_knowledge",
    "generate_lfm1m_like",
    "generate_ml1m_like",
    "sample_items_by_popularity",
    "sample_users_balanced",
]
