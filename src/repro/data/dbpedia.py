"""DBpedia-style external knowledge attachment.

The paper enriches ML1M with DBpedia properties (director, actors, genre,
composer, ...) and LFM1M with song properties (artist, genre, album). We
cannot query DBpedia offline, so :func:`attach_external_knowledge`
synthesizes an equivalent layer: for each relation a Zipf-popular entity
pool, and for each item a small set of entity links. Entity sharing across
items (two movies by the same director) is what gives explanation paths
their connective tissue, and the Zipf pool sizes reproduce that sharing.

Table II at full scale has 10,820 external nodes and 178,461 item->external
edges (~46 per item); the default schemas reproduce those densities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.namegen import entity_name
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import NodeType, external_id, item_id


@dataclass(frozen=True, slots=True)
class RelationSpec:
    """One external relation: pool size and links per item.

    ``entities_per_item`` is the expected number of links from each item
    through this relation (e.g. a movie has one director, a handful of
    actors). ``pool_scale`` scales the entity pool with the item count —
    small pools (genres) create hub entities, large pools (actors) create
    sparse sharing.
    """

    name: str
    pool_scale: float
    entities_per_item: float
    popularity_exponent: float = 1.05


# Movie-domain schema, modelled on the DBpedia properties the paper lists
# ("director, actors, genre, composers, and other relevant properties").
MOVIE_RELATIONS = (
    RelationSpec("genre", pool_scale=0.006, entities_per_item=2.2),
    RelationSpec("director", pool_scale=0.45, entities_per_item=1.0),
    RelationSpec("actor", pool_scale=1.60, entities_per_item=4.0),
    RelationSpec("composer", pool_scale=0.25, entities_per_item=0.8),
    RelationSpec("writer", pool_scale=0.50, entities_per_item=1.2),
    RelationSpec("country", pool_scale=0.012, entities_per_item=1.0),
    RelationSpec("studio", pool_scale=0.10, entities_per_item=1.0),
)

# Music-domain schema for the LFM1M experiments.
MUSIC_RELATIONS = (
    RelationSpec("artist", pool_scale=0.30, entities_per_item=1.0),
    RelationSpec("genre", pool_scale=0.004, entities_per_item=2.0),
    RelationSpec("album", pool_scale=0.55, entities_per_item=1.0),
    RelationSpec("label", pool_scale=0.05, entities_per_item=1.0),
    RelationSpec("decade", pool_scale=0.002, entities_per_item=1.0),
)


@dataclass(frozen=True, slots=True)
class ExternalSchema:
    """A bundle of relations forming one knowledge domain."""

    relations: tuple[RelationSpec, ...]

    @classmethod
    def movies(cls) -> "ExternalSchema":
        """The ML1M movie-domain relation bundle."""
        return cls(relations=MOVIE_RELATIONS)

    @classmethod
    def music(cls) -> "ExternalSchema":
        """The LFM1M music-domain relation bundle."""
        return cls(relations=MUSIC_RELATIONS)


def attach_external_knowledge(
    graph: KnowledgeGraph,
    schema: ExternalSchema,
    rng: np.random.Generator,
    external_weight: float = 0.0,
) -> KnowledgeGraph:
    """Attach synthetic external entities to every item node of ``graph``.

    Mutates and returns ``graph``. Edge weights default to 0 following the
    paper's ``w_A = 0`` setting.
    """
    items = sorted(graph.nodes_of_type(NodeType.ITEM))
    if not items:
        raise ValueError("graph has no item nodes to enrich")

    for relation in schema.relations:
        pool_size = max(2, round(len(items) * relation.pool_scale))
        ranks = np.arange(1, pool_size + 1, dtype=float)
        popularity = ranks ** (-relation.popularity_exponent)
        popularity /= popularity.sum()

        link_counts = rng.poisson(relation.entities_per_item, size=len(items))
        for item_index, item in enumerate(items):
            count = int(link_counts[item_index])
            if relation.entities_per_item >= 1.0:
                count = max(1, count)
            if count == 0:
                continue
            count = min(count, pool_size)
            chosen = rng.choice(
                pool_size, size=count, replace=False, p=popularity
            )
            for entity_index in chosen:
                entity = external_id(relation.name, int(entity_index))
                graph.add_edge(
                    item, entity, external_weight, relation.name
                )
                graph.set_name(
                    entity, entity_name(relation.name, int(entity_index))
                )
    return graph


def attach_to_items(
    num_items: int,
    schema: ExternalSchema,
    rng: np.random.Generator,
) -> list[tuple[str, str, str]]:
    """Link-triples variant (for :func:`repro.graph.build.extend_with_external`).

    Returns ``(item_id, external_id, relation)`` triples without needing a
    graph; used where the caller wants to inspect or filter links first.
    """
    scratch = KnowledgeGraph()
    for index in range(num_items):
        scratch.add_node(item_id(index))
    # Reuse the main generator, then export its knowledge edges oriented
    # item -> external (Edge iteration orders endpoints lexicographically).
    attach_external_knowledge(scratch, schema, rng)
    triples = []
    for edge in scratch.edges():
        if NodeType.of(edge.source) is NodeType.EXTERNAL:
            triples.append((edge.target, edge.source, edge.relation))
        else:
            triples.append((edge.source, edge.target, edge.relation))
    return triples
