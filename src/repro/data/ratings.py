"""The rating matrix ``M`` (§III): sparse (rating, timestamp) records.

``M[u, i] = (r, t)`` with positive rating ``r`` and timestamp ``t``; the
absence of a record means "no rating". Stored in coordinate form with
numpy column arrays plus per-user/per-item indices for the queries the
recommenders and samplers need.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Rating:
    """One interaction record."""

    user: int
    item: int
    rating: float
    timestamp: float


class RatingMatrix:
    """Sparse user-item rating matrix with timestamps.

    Parameters
    ----------
    num_users, num_items:
        Matrix dimensions (index universes; rows/columns may be empty).
    users, items, ratings, timestamps:
        Parallel coordinate arrays. Duplicate (user, item) pairs are
        rejected — the paper's model keeps a single (r, t) per pair.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        users: np.ndarray,
        items: np.ndarray,
        ratings: np.ndarray,
        timestamps: np.ndarray,
    ) -> None:
        if not (len(users) == len(items) == len(ratings) == len(timestamps)):
            raise ValueError("coordinate arrays must be the same length")
        if len(users) and (users.min() < 0 or users.max() >= num_users):
            raise ValueError("user index out of range")
        if len(items) and (items.min() < 0 or items.max() >= num_items):
            raise ValueError("item index out of range")
        if len(ratings) and ratings.min() <= 0:
            raise ValueError("ratings must be positive (M stores positive ratings)")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self._users = users.astype(np.int64)
        self._items = items.astype(np.int64)
        self._ratings = ratings.astype(np.float64)
        self._timestamps = timestamps.astype(np.float64)

        pairs = set(zip(self._users.tolist(), self._items.tolist()))
        if len(pairs) != len(self._users):
            raise ValueError("duplicate (user, item) rating pairs")

        self._by_user: dict[int, list[int]] = {}
        self._by_item: dict[int, list[int]] = {}
        for row, (u, i) in enumerate(zip(self._users, self._items)):
            self._by_user.setdefault(int(u), []).append(row)
            self._by_item.setdefault(int(i), []).append(row)
        self._lookup = {
            (int(u), int(i)): row
            for row, (u, i) in enumerate(zip(self._users, self._items))
        }

    # ------------------------------------------------------------------
    @property
    def num_ratings(self) -> int:
        """Number of stored ratings."""
        return len(self._users)

    @property
    def max_timestamp(self) -> float:
        """The reference time ``t0`` used by the recency function."""
        return float(self._timestamps.max()) if len(self._timestamps) else 0.0

    def get(self, user: int, item: int) -> tuple[float, float]:
        """``M[u, i]`` — (rating, timestamp), or (0, 0) if unrated."""
        row = self._lookup.get((user, item))
        if row is None:
            return (0.0, 0.0)
        return (float(self._ratings[row]), float(self._timestamps[row]))

    def has_rating(self, user: int, item: int) -> bool:
        """True iff the (user, item) pair has a rating."""
        return (user, item) in self._lookup

    def iter_ratings(self) -> Iterator[tuple[int, int, float, float]]:
        """Yield (user, item, rating, timestamp) tuples."""
        for row in range(len(self._users)):
            yield (
                int(self._users[row]),
                int(self._items[row]),
                float(self._ratings[row]),
                float(self._timestamps[row]),
            )

    def user_items(self, user: int) -> list[int]:
        """Items rated by ``user`` (ordering follows insertion)."""
        return [int(self._items[r]) for r in self._by_user.get(user, [])]

    def item_users(self, item: int) -> list[int]:
        """Users who rated ``item``."""
        return [int(self._users[r]) for r in self._by_item.get(item, [])]

    def user_ratings(self, user: int) -> list[Rating]:
        """Full Rating records for one user."""
        return [
            Rating(
                user,
                int(self._items[r]),
                float(self._ratings[r]),
                float(self._timestamps[r]),
            )
            for r in self._by_user.get(user, [])
        ]

    def item_popularity(self) -> np.ndarray:
        """Rating count per item (the popularity signal used by Fig 17)."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        np.add.at(counts, self._items, 1)
        return counts

    def user_activity(self) -> np.ndarray:
        """Rating count per user."""
        counts = np.zeros(self.num_users, dtype=np.int64)
        np.add.at(counts, self._users, 1)
        return counts

    def to_dense(self) -> np.ndarray:
        """Dense (num_users, num_items) rating array — small matrices only."""
        dense = np.zeros((self.num_users, self.num_items))
        dense[self._users, self._items] = self._ratings
        return dense

    @classmethod
    def from_records(
        cls,
        num_users: int,
        num_items: int,
        records: list[tuple[int, int, float, float]],
    ) -> "RatingMatrix":
        """Build from (user, item, rating, timestamp) tuples."""
        if records:
            users, items, ratings, timestamps = map(np.array, zip(*records))
        else:
            users = items = np.array([], dtype=np.int64)
            ratings = timestamps = np.array([], dtype=np.float64)
        return cls(num_users, num_items, users, items, ratings, timestamps)
