"""Synthetic LastFM-1M-like dataset generator.

LFM1M (the LastFM-1B subset used by the paper) has 4,817 users, 12,492
tracks and 1,091,274 interactions — denser per user and with a much
steeper track-popularity tail than ML1M. Interactions are play counts;
we map them to implicit "ratings" in (0, 5] via a log transform, which is
the standard preprocessing for PGPR/CAFE-style pipelines on LFM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.movielens import SECONDS_PER_YEAR, _sample_rating_matrix
from repro.data.ratings import RatingMatrix

LFM1M_USERS = 4_817
LFM1M_TRACKS = 12_492
LFM1M_INTERACTIONS = 1_091_274


@dataclass(frozen=True, slots=True)
class LastFMSpec:
    """Scale recipe for the LFM1M-like generator."""

    scale: float = 1.0
    popularity_exponent: float = 1.15  # steeper tail than movies
    mean_rating: float = 3.2
    rating_window_years: float = 2.0
    seed: int = 11

    @property
    def num_users(self) -> int:
        """Number of users at this scale."""
        return max(8, round(LFM1M_USERS * self.scale))

    @property
    def num_items(self) -> int:
        """Number of items at this scale."""
        return max(8, round(LFM1M_TRACKS * self.scale))

    @property
    def num_ratings(self) -> int:
        """Scaled interaction count, capped below a quarter of the pair
        universe (see :class:`repro.data.movielens.MovieLensSpec`)."""
        target = max(
            4 * self.num_users, round(LFM1M_INTERACTIONS * self.scale)
        )
        return min(target, self.num_users * self.num_items // 4)


@dataclass(slots=True)
class LastFMDataset:
    """Generated dataset bundle."""

    ratings: RatingMatrix
    user_gender: np.ndarray = field(repr=False)
    spec: LastFMSpec = field(default_factory=LastFMSpec)

    @property
    def num_users(self) -> int:
        """Number of users at this scale."""
        return self.ratings.num_users

    @property
    def num_items(self) -> int:
        """Number of items at this scale."""
        return self.ratings.num_items


def generate_lfm1m_like(spec: LastFMSpec | None = None) -> LastFMDataset:
    """Sample an LFM1M-shaped dataset (deterministic for a given spec)."""
    spec = spec or LastFMSpec()
    rng = np.random.default_rng(spec.seed)
    matrix = _sample_rating_matrix(
        num_users=spec.num_users,
        num_items=spec.num_items,
        num_ratings=spec.num_ratings,
        popularity_exponent=spec.popularity_exponent,
        mean_rating=spec.mean_rating,
        window_seconds=spec.rating_window_years * SECONDS_PER_YEAR,
        rng=rng,
    )
    # LastFM-1B exposes gender for a subset of users; we sample a roughly
    # two-thirds male share as in the published dataset statistics.
    gender = np.where(rng.random(spec.num_users) < 0.66, "M", "F")
    return LastFMDataset(ratings=matrix, user_gender=gender, spec=spec)
