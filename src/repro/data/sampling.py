"""Experiment sampling schemes (§V-A, "User and Item Sampling").

- user-centric: 100 male + 100 female users, preserving the rating-count
  distribution within each gender bucket (stratified by activity decile);
- item-centric: 100 items, split between the 50 most and 50 least popular.

Both are parameterized by count so CI-scale configs can shrink them.
"""

from __future__ import annotations

import numpy as np


def sample_users_balanced(
    user_gender: np.ndarray,
    user_activity: np.ndarray,
    per_gender: int,
    rng: np.random.Generator,
) -> list[int]:
    """Sample ``per_gender`` male and female users, activity-stratified.

    Within each gender the user pool is split into activity deciles and
    sampled proportionally, which "preserv[es] the original rating
    distribution to reduce bias" as the paper describes.
    """
    if len(user_gender) != len(user_activity):
        raise ValueError("gender and activity arrays must align")
    selected: list[int] = []
    for gender in ("M", "F"):
        pool = np.flatnonzero(user_gender == gender)
        if len(pool) == 0:
            continue
        take = min(per_gender, len(pool))
        selected.extend(
            _stratified_by_activity(pool, user_activity[pool], take, rng)
        )
    return sorted(selected)


def _stratified_by_activity(
    pool: np.ndarray,
    activity: np.ndarray,
    take: int,
    rng: np.random.Generator,
) -> list[int]:
    """Proportional sampling from activity deciles of ``pool``."""
    if take >= len(pool):
        return [int(u) for u in pool]
    order = np.argsort(activity, kind="stable")
    sorted_pool = pool[order]
    num_strata = min(10, len(pool))
    strata = np.array_split(sorted_pool, num_strata)
    quotas = _proportional_quotas(
        [len(s) for s in strata], take
    )
    chosen: list[int] = []
    for stratum, quota in zip(strata, quotas):
        if quota == 0:
            continue
        picks = rng.choice(len(stratum), size=quota, replace=False)
        chosen.extend(int(stratum[p]) for p in picks)
    return chosen


def _proportional_quotas(sizes: list[int], total: int) -> list[int]:
    """Largest-remainder apportionment of ``total`` across strata."""
    weight_sum = sum(sizes)
    raw = [total * size / weight_sum for size in sizes]
    quotas = [min(int(r), size) for r, size in zip(raw, sizes)]
    remainders = sorted(
        range(len(sizes)),
        key=lambda i: raw[i] - int(raw[i]),
        reverse=True,
    )
    shortfall = total - sum(quotas)
    for index in remainders:
        if shortfall == 0:
            break
        if quotas[index] < sizes[index]:
            quotas[index] += 1
            shortfall -= 1
    return quotas


def sample_items_by_popularity(
    item_popularity: np.ndarray,
    per_bucket: int,
    min_ratings: int = 1,
) -> tuple[list[int], list[int]]:
    """The paper's item sample: top-N most and bottom-N least popular items.

    Items with fewer than ``min_ratings`` ratings are excluded from the
    "least popular" bucket (a never-rated item can't be recommended, let
    alone explained). Returns ``(popular, unpopular)`` index lists.
    """
    eligible = np.flatnonzero(item_popularity >= min_ratings)
    if len(eligible) == 0:
        raise ValueError("no items meet the min_ratings threshold")
    order = eligible[np.argsort(item_popularity[eligible], kind="stable")]
    take = min(per_bucket, len(order) // 2 or 1)
    unpopular = [int(i) for i in order[:take]]
    popular = [int(i) for i in order[-take:]]
    return popular, unpopular
