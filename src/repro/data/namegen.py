"""Deterministic human-readable names for synthetic entities.

Verbalized explanations (Table I style) read much better with names like
"Genre: Drama" or "Director: D. Vassiliou" than with raw ids. Names are a
pure function of (kind, index) so runs stay reproducible.
"""

from __future__ import annotations

_GENRES = (
    "Drama", "Comedy", "Thriller", "Documentary", "Romance", "Sci-Fi",
    "Horror", "Animation", "Crime", "Adventure", "Fantasy", "Mystery",
    "Western", "Musical", "War", "Film-Noir", "Jazz", "Folk", "Electronic",
    "Classical", "Rock", "Hip-Hop", "Ambient", "Blues",
)

_SURNAMES = (
    "Angelou", "Vassiliou", "Karras", "Makris", "Economou", "Pappas",
    "Nikolaou", "Dimas", "Floros", "Galanis", "Hatzis", "Ioannou",
    "Katsaros", "Lambros", "Manos", "Nikas", "Orfanos", "Petridis",
    "Rallis", "Samaras", "Tsaldaris", "Vlahos", "Xydis", "Zervas",
)

_COUNTRIES = (
    "Greece", "France", "Italy", "Japan", "USA", "Germany", "Spain",
    "Sweden", "Brazil", "India", "Canada", "Mexico", "Poland", "Korea",
)

_DECADES = ("1950s", "1960s", "1970s", "1980s", "1990s", "2000s", "2010s")


def entity_name(kind: str, index: int) -> str:
    """Readable display name for the ``index``-th entity of ``kind``."""
    if kind in ("genre",):
        base = _GENRES[index % len(_GENRES)]
        suffix = "" if index < len(_GENRES) else f" {index // len(_GENRES) + 1}"
        return f"Genre: {base}{suffix}"
    if kind in ("country",):
        base = _COUNTRIES[index % len(_COUNTRIES)]
        suffix = "" if index < len(_COUNTRIES) else f" {index // len(_COUNTRIES) + 1}"
        return f"Country: {base}{suffix}"
    if kind in ("decade",):
        base = _DECADES[index % len(_DECADES)]
        return f"Decade: {base}"
    if kind in ("director", "actor", "composer", "writer", "artist"):
        surname = _SURNAMES[index % len(_SURNAMES)]
        initial = chr(ord("A") + (index // len(_SURNAMES)) % 26)
        return f"{kind.capitalize()}: {initial}. {surname}"
    return f"{kind.capitalize()} #{index}"


def movie_name(index: int) -> str:
    """Readable movie title."""
    return f"Movie #{index}"


def track_name(index: int) -> str:
    """Readable track title."""
    return f"Track #{index}"


def user_name(index: int) -> str:
    """Readable user label."""
    return f"User {index}"
