"""Synthetic MovieLens-1M-like dataset generator.

The real ML1M dump is not available offline, so this generator samples a
rating matrix with the statistical signature the summarization algorithms
actually consume (see DESIGN.md §2):

- 6,040 users / 3,883 movies / ~1M ratings at full scale (Table II),
  proportionally scaled down by ``scale``;
- long-tailed item popularity (Zipf exponent ≈ 0.85, the well-known ML1M
  shape) and log-normal user activity;
- ratings in {1..5} with the ML1M mean (~3.58) and popular-item bias;
- timestamps spread over a ~3-year window, with the real-data
  correlation the recency experiments (Fig 16) rest on: head items are
  rated throughout the window (catalog classics, skewing old) while
  tail items are rated mostly near the end of the window (recent
  releases) — so "recent" correlates with "less common";
- user gender attributes (ML1M metadata) for the balanced user sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.ratings import RatingMatrix

# Full-scale constants from the paper's Table II / the ML1M metadata.
ML1M_USERS = 6_040
ML1M_ITEMS = 3_883
ML1M_RATINGS = 932_293  # user->item edges in Table II
ML1M_MALE_SHARE = 0.717  # ML1M metadata: 71.7% male users
SECONDS_PER_YEAR = 365 * 24 * 3600


@dataclass(frozen=True, slots=True)
class MovieLensSpec:
    """Scale recipe for the generator.

    ``scale = 1.0`` reproduces full Table II sizes; smaller values shrink
    every population proportionally while keeping distributional shape.
    """

    scale: float = 1.0
    popularity_exponent: float = 0.85
    mean_rating: float = 3.58
    rating_window_years: float = 3.0
    seed: int = 7

    @property
    def num_users(self) -> int:
        """Number of users at this scale."""
        return max(8, round(ML1M_USERS * self.scale))

    @property
    def num_items(self) -> int:
        """Number of items at this scale."""
        return max(8, round(ML1M_ITEMS * self.scale))

    @property
    def num_ratings(self) -> int:
        """Scaled rating count, capped below a quarter of the pair universe.

        The cap matters at small scales: the number of possible (user,
        item) pairs shrinks quadratically with ``scale`` while the naive
        rating count shrinks only linearly, and unique-pair sampling
        saturates long before full density.
        """
        target = max(4 * self.num_users, round(ML1M_RATINGS * self.scale))
        return min(target, self.num_users * self.num_items // 4)


@dataclass(slots=True)
class MovieLensDataset:
    """Generated dataset bundle: matrix plus user metadata."""

    ratings: RatingMatrix
    user_gender: np.ndarray = field(repr=False)  # 'M' / 'F' per user
    spec: MovieLensSpec = field(default_factory=MovieLensSpec)

    @property
    def num_users(self) -> int:
        """Number of users at this scale."""
        return self.ratings.num_users

    @property
    def num_items(self) -> int:
        """Number of items at this scale."""
        return self.ratings.num_items


def generate_ml1m_like(spec: MovieLensSpec | None = None) -> MovieLensDataset:
    """Sample an ML1M-shaped dataset (deterministic for a given spec)."""
    spec = spec or MovieLensSpec()
    rng = np.random.default_rng(spec.seed)

    matrix = _sample_rating_matrix(
        num_users=spec.num_users,
        num_items=spec.num_items,
        num_ratings=spec.num_ratings,
        popularity_exponent=spec.popularity_exponent,
        mean_rating=spec.mean_rating,
        window_seconds=spec.rating_window_years * SECONDS_PER_YEAR,
        rng=rng,
    )
    gender = np.where(
        rng.random(spec.num_users) < ML1M_MALE_SHARE, "M", "F"
    )
    return MovieLensDataset(ratings=matrix, user_gender=gender, spec=spec)


def _sample_rating_matrix(
    num_users: int,
    num_items: int,
    num_ratings: int,
    popularity_exponent: float,
    mean_rating: float,
    window_seconds: float,
    rng: np.random.Generator,
) -> RatingMatrix:
    """Shared sampler used by the ML1M and LFM1M generators.

    Popularity-weighted item choice + activity-weighted user choice,
    with rejection of duplicate pairs. Each user gets at least one rating
    (isolated user nodes would make the summarization problems vacuous).
    """
    item_ranks = np.arange(1, num_items + 1, dtype=float)
    item_popularity = item_ranks ** (-popularity_exponent)
    rng.shuffle(item_popularity)
    item_popularity /= item_popularity.sum()

    activity = rng.lognormal(mean=0.0, sigma=0.9, size=num_users)
    activity /= activity.sum()

    seen: set[tuple[int, int]] = set()
    records: list[tuple[int, int, float, float]] = []

    popularity_scale = item_popularity / item_popularity.max()

    def add_record(user: int, item: int) -> bool:
        """Try to add one unique rating record."""
        if (user, item) in seen:
            return False
        seen.add((user, item))
        # Popular items skew positive (popularity bias baked into ML1M).
        pop = float(popularity_scale[item])
        raw = rng.normal(mean_rating + 0.8 * pop - 0.4, 1.0)
        rating = float(np.clip(np.rint(raw), 1, 5))
        # Recency/popularity correlation: head items are rated across the
        # whole window (Beta skewed old), tail items mostly recently
        # (Beta skewed to the window's end).
        timestamp = float(
            window_seconds * rng.beta(1.0 + 3.0 * (1.0 - pop), 1.0 + 3.0 * pop)
        )
        records.append((user, item, rating, timestamp))
        return True

    # Guarantee coverage: every user rates >= 1 item, then fill to target.
    for user in range(num_users):
        item = int(rng.choice(num_items, p=item_popularity))
        add_record(user, item)

    batch = max(1024, num_ratings // 8)
    attempts = 0
    max_attempts = 60 * num_ratings
    while len(records) < num_ratings and attempts < max_attempts:
        users = rng.choice(num_users, size=batch, p=activity)
        items = rng.choice(num_items, size=batch, p=item_popularity)
        attempts += batch
        for user, item in zip(users, items):
            if len(records) >= num_ratings:
                break
            add_record(int(user), int(item))
    # If popularity-weighted rejection sampling saturates (tiny scales),
    # accept the records gathered so far instead of spinning forever.

    return RatingMatrix.from_records(num_users, num_items, records)
