"""Command-line entry point: regenerate any experiment by id.

Usage::

    repro-xsum table1
    repro-xsum table2
    repro-xsum fig2 --scale ci
    repro-xsum userstudy
    repro-xsum batch --tasks tasks.jsonl --method ST
    repro-xsum batch --demo 100 --method ST --parallel processes --workers 4
    repro-xsum batch --demo 100 --no-partial-reuse
    repro-xsum batch --demo 100 --stream
    repro-xsum batch --demo 100 --parallel processes --scheduler chunked
    repro-xsum batch --demo 100 --parallel processes --min-workers 1 --max-workers 8
    repro-xsum batch --demo 100 --parallel processes --closure-store --store-mb 128
    repro-xsum batch --demo 100 --trace --slow-ms 50
    repro-xsum serve --port 7737 --max-pending 64 --idle-ttl 30
    repro-xsum serve --state-dir ./state --drain-timeout 15
    repro-xsum serve --trace --log-json
    repro-xsum metrics --port 7737
    repro-xsum list

The ``batch`` subcommand serves a batch through the service API
(:class:`repro.api.ExplanationSession`: freeze/export once, warm worker
pool, typed configs) over a JSONL task file (one :class:`SummaryTask`
per line, see ``repro.api.protocol.task_to_json`` for the schema) — or
over ``--demo N`` user-centric tasks drawn from the workbench
recommender when no file is given — and prints per-batch timing and
closure-cache statistics. ``--stream`` prints each result the moment
its worker finishes it (per task under the default work-stealing
scheduler; per chunk with ``--scheduler chunked``). ``--min-workers``
/ ``--max-workers`` bound the elastic pool.

The ``serve`` subcommand starts the network front door
(:class:`repro.serving.ExplanationServer`): the workbench graph hosted
as session ``"default"``, spoken to over the length-prefixed
:mod:`repro.api.protocol` envelopes by
:class:`repro.serving.ExplanationClient` (or anything that implements
the framing spec in the README). ``--max-pending`` bounds admission
per graph; ``--idle-ttl`` releases pooled resources of idle sessions;
``--state-dir`` makes mutations crash-safe (journaled before acked,
replayed on restart); SIGTERM/ctrl-c drains gracefully under
``--drain-timeout``.

Observability (batch and serve): ``--trace`` records a span tree per
request (printed after a traced batch; served via the ``trace`` op),
``--slow-ms`` logs any slower request with its span breakdown,
``--no-metrics`` disables the default-on Prometheus registry, and
``--log-json`` switches structured logs to JSON lines. The
``metrics`` subcommand probes a running server and prints its
Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_series_table, format_table
from repro.experiments.tables import table1_example, table2, table3
from repro.experiments.user_study import simulate_user_study
from repro.experiments.workbench import Workbench

_FIGURES = {
    f"fig{n}": getattr(figures, f"figure{n}") for n in range(2, 18)
}


def _config(args) -> ExperimentConfig:
    if args.scale == "paper":
        config = ExperimentConfig.paper_scale()
    elif args.scale == "test":
        config = ExperimentConfig.test_scale()
    else:
        config = ExperimentConfig.ci_scale()
    if args.dataset:
        config = config.with_dataset(args.dataset)
    return config


def _print_panels(name: str, panels) -> None:
    for panel, series in panels.items():
        print(format_series_table(f"{name} [{panel}]", series))
        print()


def _run_batch(parser: argparse.ArgumentParser, args) -> int:
    """The ``batch`` subcommand: one session, freeze once, serve tasks."""
    from repro.api import (
        CacheConfig,
        ClosureStoreConfig,
        EngineConfig,
        ExplanationSession,
        ParallelConfig,
        SchedulerConfig,
    )
    from repro.core.batch import load_tasks_jsonl
    from repro.obs import ObservabilityConfig, format_trace
    from repro.serving.config import ResilienceConfig
    from repro.core.scenarios import Scenario

    bench = Workbench.get(_config(args))
    if args.tasks:
        try:
            tasks = load_tasks_jsonl(args.tasks)
        except OSError as error:
            parser.error(f"cannot read task file: {error}")
        except ValueError as error:
            parser.error(str(error))
    elif args.demo > 0:
        pool = list(
            bench.tasks(Scenario.USER_CENTRIC, "PGPR", args.k).values()
        )
        if not pool:
            parser.error("workbench produced no demo tasks")
        tasks = [pool[i % len(pool)] for i in range(args.demo)]
    else:
        parser.error("batch needs --tasks FILE or --demo N")
    session = ExplanationSession(
        bench.graph,
        engine=EngineConfig(engine=args.engine),
        cache=CacheConfig(partial_reuse=args.partial_reuse),
        parallel=ParallelConfig(
            backend=None if args.parallel == "auto" else args.parallel,
            workers=args.workers,
        ),
        scheduler=SchedulerConfig(
            mode=args.scheduler,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
        ),
        default_method=args.method,
        resilience=ResilienceConfig(
            max_task_retries=args.max_task_retries,
            task_timeout_seconds=args.task_timeout,
        ),
        store=ClosureStoreConfig(
            enabled=args.closure_store,
            capacity_bytes=max(4096, int(args.store_mb * 2**20)),
        ),
        obs=ObservabilityConfig(
            metrics=args.metrics,
            trace=args.trace,
            slow_ms=args.slow_ms,
            log_json=args.log_json,
        ),
    )
    with session:
        if args.stream:
            done = 0
            for result in session.stream(tasks):
                done += 1
                if result.failure is not None:
                    print(
                        f"[{done}/{len(tasks)}] task #{result.index} "
                        f"FAILED: {result.failure}"
                    )
                    continue
                print(
                    f"[{done}/{len(tasks)}] task #{result.index} "
                    f"({result.latency_ms:.2f} ms, "
                    f"{result.explanation.subgraph.num_edges} edges)"
                )
        else:
            report = session.run(tasks)
            print(report.summary())
        for line in (
            session.stats.scheduler_line(),
            session.stats.resilience_line(),
            session.stats.cache_line(),
        ):
            if line:
                print(line)
        if args.trace:
            print(format_trace(session.last_trace()))
    return 0


def _run_serve(parser: argparse.ArgumentParser, args) -> int:
    """The ``serve`` subcommand: asyncio front door over the workbench.

    SIGTERM and SIGINT both trigger a graceful drain: the server stops
    admitting (typed ``shutting-down`` frames), in-flight dispatches
    finish and write their responses under ``--drain-timeout``, the
    mutation journal (with ``--state-dir``) is flushed, then the
    process exits.
    """
    import asyncio
    import signal

    from repro.api import ClosureStoreConfig, ParallelConfig, SchedulerConfig
    from repro.obs import ObservabilityConfig
    from repro.serving.config import ResilienceConfig
    from repro.serving.server import ExplanationServer, ServerConfig

    bench = Workbench.get(_config(args))
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            pool_idle_ttl_seconds=args.idle_ttl,
            drain_timeout_seconds=args.drain_timeout,
        )
    except ValueError as error:
        parser.error(str(error))
    server = ExplanationServer(
        bench.graph,
        config,
        parallel=ParallelConfig(
            backend=None if args.parallel == "auto" else args.parallel,
            workers=args.workers,
        ),
        scheduler=SchedulerConfig(
            mode=args.scheduler,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
        ),
        default_method=args.method,
        resilience=ResilienceConfig(
            max_task_retries=args.max_task_retries,
            task_timeout_seconds=args.task_timeout,
        ),
        state_dir=args.state_dir or None,
        store=ClosureStoreConfig(
            enabled=args.closure_store,
            capacity_bytes=max(4096, int(args.store_mb * 2**20)),
        ),
        obs=ObservabilityConfig(
            metrics=args.metrics,
            trace=args.trace,
            slow_ms=args.slow_ms,
            log_json=args.log_json,
        ),
    )

    async def serve() -> int:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_stop)
        durable = " (durable)" if args.state_dir else ""
        print(
            f"serving graph 'default'{durable} "
            f"({bench.graph.num_nodes} nodes, {bench.graph.num_edges} "
            f"edges) on {config.host}:{server.port} — SIGTERM/ctrl-c "
            "drains and stops"
        )
        await server.wait_stop_requested()
        print("drain requested; refusing new work, finishing in-flight")
        drained = await server.stop(drain=True)
        print("server stopped" if drained else "drain deadline hit")
        return 0 if drained else 1

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        # Second ctrl-c during the drain: abandon it.
        print("\nserver stopped (drain interrupted)")
        return 1


def _run_metrics(parser: argparse.ArgumentParser, args) -> int:
    """The ``metrics`` subcommand: scrape a running server's exposition.

    Connects to ``--host``/``--port``, fetches the Prometheus text via
    the ``metrics`` op, validates it parses, and prints it — the same
    text a scrape endpoint would serve, usable with
    ``curl``-less monitoring and the CI liveness check.
    """
    from repro.obs import parse_prometheus
    from repro.serving.client import ExplanationClient

    try:
        with ExplanationClient(args.host, args.port) as client:
            text = client.metrics()
    except OSError as error:
        parser.error(
            f"cannot reach server at {args.host}:{args.port} ({error})"
        )
    try:
        parse_prometheus(text)
    except ValueError as error:
        print(f"warning: exposition failed to parse: {error}", file=sys.stderr)
        print(text, end="")
        return 1
    print(text, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and regenerate the requested experiment."""
    parser = argparse.ArgumentParser(
        prog="repro-xsum",
        description="Reproduce tables/figures from 'Path-based summary "
        "explanations for graph recommenders' (ICDE 2025).",
    )
    parser.add_argument(
        "experiment",
        help="table1|table2|table3|fig2..fig17|userstudy|batch|serve|"
        "metrics|list",
    )
    parser.add_argument(
        "--scale", choices=("test", "ci", "paper"), default="ci"
    )
    parser.add_argument("--dataset", choices=("ml1m", "lfm1m"), default="")
    batch_group = parser.add_argument_group("batch")
    batch_group.add_argument(
        "--tasks", default="", help="JSONL task file (one task per line)"
    )
    batch_group.add_argument(
        "--demo",
        type=int,
        default=0,
        help="generate N user-centric demo tasks from the workbench",
    )
    batch_group.add_argument(
        "--method",
        choices=("ST", "ST-fast", "PCST", "Union"),
        default="ST",
    )
    batch_group.add_argument("--workers", type=int, default=0)
    batch_group.add_argument(
        "--k", type=int, default=5, help="top-k for --demo tasks"
    )
    batch_group.add_argument(
        "--engine",
        choices=("frozen", "csr", "dict"),
        default="frozen",
        help="traversal backend: CSR fast path (frozen/csr) or the "
        "dict-of-dicts oracle (applies to ST/ST-fast/PCST; Union has "
        "no traversal)",
    )
    batch_group.add_argument(
        "--parallel",
        choices=("auto", "serial", "threads", "processes"),
        default="auto",
        help="dispatch backend: processes = shared-memory multi-core "
        "pool (threads are GIL-bound for these pure-Python "
        "traversals); auto picks processes on multi-core machines for "
        "big enough graphs/batches",
    )
    batch_group.add_argument(
        "--stream",
        action="store_true",
        help="stream each result as its worker finishes it (service "
        "API ExplanationSession.stream; per task under work-stealing, "
        "per chunk under --scheduler chunked) instead of printing one "
        "report at the end",
    )
    batch_group.add_argument(
        "--scheduler",
        choices=("work-stealing", "chunked"),
        default="work-stealing",
        help="batch dispatch discipline: work-stealing (shared task "
        "queue, elastic worker pool, per-task streaming — default) or "
        "chunked (legacy static ceil(n/4w) chunk dispatch)",
    )
    batch_group.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="elastic pool floor: idle shrink never goes below this",
    )
    batch_group.add_argument(
        "--max-workers",
        type=int,
        default=0,
        help="elastic pool ceiling; 0 = max(initial workers, cpu count)",
    )
    batch_group.add_argument(
        "--max-task-retries",
        type=int,
        default=2,
        help="process backend: times a crashed/timed-out task is "
        "re-queued onto a replacement worker before it fails "
        "individually as a typed TaskFailure (batch and serve)",
    )
    batch_group.add_argument(
        "--task-timeout",
        type=float,
        default=0.0,
        help="process backend: per-task deadline in seconds; a worker "
        "holding one task longer is terminated and replaced, the task "
        "retried or failed individually (0 = no deadline; batch and "
        "serve)",
    )
    batch_group.add_argument(
        "--closure-store",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="cross-worker shared closure store: workers publish "
        "computed terminal closures to a shared-memory slab and reuse "
        "each other's work (TinyLFU admission, segmented-LRU "
        "eviction); results stay bit-identical (batch and serve)",
    )
    batch_group.add_argument(
        "--store-mb",
        type=float,
        default=64.0,
        help="closure store slab capacity in MiB (with --closure-store)",
    )
    batch_group.add_argument(
        "--partial-reuse",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="ST only: λ-aware closure reuse — recombine memoized "
        "base-cost Dijkstra runs with each task's boosted edges. "
        "Default on: canonical-SPT reconstruction makes derived "
        "closures bit-identical to cold runs; --no-partial-reuse "
        "restores always-fresh boosted closures",
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="record a span tree per request (batch: printed after the "
        "run; serve: retrievable via the 'trace' op / "
        "client.trace()); default off — the disabled cost is one "
        "attribute check per request",
    )
    obs_group.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        help="log any request slower than this many milliseconds as "
        "one structured slow_request line with its span breakdown "
        "(0 = off)",
    )
    obs_group.add_argument(
        "--metrics",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="process-wide Prometheus metrics registry (task/batch "
        "latency histograms, journal + queue-wait counters); default "
        "on — --no-metrics turns every observe into a no-op",
    )
    obs_group.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured log events (worker_respawn, task_timeout, "
        "local_fallback, slow_request, ...) as JSON lines on stderr "
        "instead of key=value text",
    )
    serve_group = parser.add_argument_group("serve")
    serve_group.add_argument(
        "--host", default="127.0.0.1", help="serve: bind address"
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=7737,
        help="serve: TCP port (0 = ephemeral, printed at startup)",
    )
    serve_group.add_argument(
        "--max-pending",
        type=int,
        default=32,
        help="serve: per-graph admission bound; past it requests get "
        "an immediate typed 'overloaded' error frame",
    )
    serve_group.add_argument(
        "--idle-ttl",
        type=float,
        default=0.0,
        help="serve: release a session's worker pool and shared-memory "
        "export after this many idle seconds (0 = never)",
    )
    serve_group.add_argument(
        "--state-dir",
        default="",
        help="serve: directory for crash-safe graph state — every "
        "mutation RPC is journaled (CRC write-ahead log) before it is "
        "acknowledged and replayed bit-identically on restart; empty "
        "(default) = in-memory only",
    )
    serve_group.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="serve: seconds SIGTERM/ctrl-c waits for in-flight "
        "requests to finish (and their responses to flush) before "
        "giving up on the drain",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        names = [
            "table1",
            "table2",
            "table3",
            *_FIGURES,
            "userstudy",
            "batch",
            "serve",
            "metrics",
        ]
        print("\n".join(names))
        return 0

    if args.experiment == "batch":
        return _run_batch(parser, args)

    if args.experiment == "serve":
        return _run_serve(parser, args)

    if args.experiment == "metrics":
        return _run_metrics(parser, args)

    if args.experiment == "table1":
        result = table1_example()
        for index, sentence in enumerate(result.path_sentences, start=1):
            print(f"P{index}: {sentence}")
        print(f"Summary: {result.summary_sentence}")
        print(
            f"Total path edges: {result.total_path_edges} -> "
            f"summary edges: {result.summary_edges}"
        )
        return 0

    if args.experiment == "table2":
        stats = table2(_config(args))
        print(
            format_table(
                "Table II: knowledge-graph statistics",
                ["property", "value"],
                [
                    ["users", stats.num_users],
                    ["items", stats.num_items],
                    ["external", stats.num_external],
                    ["nodes", stats.num_nodes],
                    ["interaction edges", stats.num_interaction_edges],
                    ["knowledge edges", stats.num_knowledge_edges],
                    ["edges", stats.num_edges],
                    ["average degree", stats.average_degree],
                    ["density", stats.density],
                    ["average path length", stats.average_path_length],
                    ["diameter", stats.diameter],
                ],
            )
        )
        return 0

    if args.experiment == "table3":
        rows = [
            [
                f"G{i}",
                spec.num_users,
                spec.num_items,
                spec.num_external,
                stats.num_nodes,
                stats.num_edges,
            ]
            for i, (spec, stats) in enumerate(table3(), start=1)
        ]
        print(
            format_table(
                "Table III: synthetic graph statistics",
                ["graph", "users", "items", "external", "nodes", "edges"],
                rows,
            )
        )
        return 0

    if args.experiment == "userstudy":
        bench = Workbench.get(_config(args))
        result = simulate_user_study(bench)
        print(
            f"{result.preference_share:.2%} of {result.num_participants} "
            f"simulated participants preferred the summary "
            f"({result.num_pairs} pairs)"
        )
        for metric, rating in result.metric_ratings.items():
            print(f"  {metric}: {rating:.2f}/5")
        return 0

    builder = _FIGURES.get(args.experiment)
    if builder is None:
        parser.error(f"unknown experiment {args.experiment!r}")

    if args.experiment == "fig11":
        _print_panels("Fig 11", builder())
    elif args.experiment == "fig16":
        _print_panels("Fig 16", builder(_config(args)))
    elif args.experiment in ("fig14", "fig15"):
        config = _config(args).with_dataset("lfm1m")
        _print_panels(args.experiment, builder(Workbench.get(config)))
    else:
        _print_panels(args.experiment, builder(Workbench.get(_config(args))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
