"""CAFE simulator: coarse-to-fine neural-symbolic reasoning (CIKM'20).

The original CAFE first builds a per-user *profile* of meta-path patterns
from historical behaviour (the coarse stage), then instantiates concrete
paths constrained to the selected patterns (the fine stage). Its output
signature — which the paper's experiments rely on — is pattern-regular
3-hop paths: every explanation follows one of a handful of typed templates
such as ``user -> item -> entity -> item``.

The simulator implements both stages symbolically:

- coarse: count which meta-path patterns connect the user's historical
  items to other items they also rated, producing a pattern prior;
- fine: for each pattern in prior order, enumerate its best concrete
  instantiations (greedy, weight-ordered) toward unrated items scored by
  the shared matrix-factorization model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.types import NodeType
from repro.recommenders.base import (
    PathExplainableRecommender,
    Recommendation,
    RecommendationList,
)
from repro.recommenders.mf import MatrixFactorizationModel


@dataclass(frozen=True, slots=True)
class MetaPath:
    """A typed path template, e.g. (USER, ITEM, EXTERNAL, ITEM)."""

    node_types: tuple[NodeType, ...]

    def __str__(self) -> str:
        return "-".join(t.value for t in self.node_types)


# The canonical 3-hop CAFE patterns over the paper's graph schema.
USER_ITEM_USER_ITEM = MetaPath(
    (NodeType.USER, NodeType.ITEM, NodeType.USER, NodeType.ITEM)
)
USER_ITEM_ENTITY_ITEM = MetaPath(
    (NodeType.USER, NodeType.ITEM, NodeType.EXTERNAL, NodeType.ITEM)
)
DEFAULT_PATTERNS = (USER_ITEM_ENTITY_ITEM, USER_ITEM_USER_ITEM)


class CAFERecommender(PathExplainableRecommender):
    """Coarse-to-fine meta-path instantiation."""

    name = "CAFE"

    def __init__(
        self,
        patterns: tuple[MetaPath, ...] = DEFAULT_PATTERNS,
        branch_factor: int = 24,
        mf: MatrixFactorizationModel | None = None,
        seed: int = 29,
    ) -> None:
        super().__init__()
        if not patterns:
            raise ValueError("need at least one meta-path pattern")
        for pattern in patterns:
            if pattern.node_types[0] is not NodeType.USER:
                raise ValueError(f"pattern {pattern} must start at a user")
            if pattern.node_types[-1] is not NodeType.ITEM:
                raise ValueError(f"pattern {pattern} must end at an item")
        self.patterns = patterns
        self.branch_factor = branch_factor
        self.mf = mf or MatrixFactorizationModel(seed=seed)
        self.seed = seed
        self._graph: KnowledgeGraph | None = None
        self._ratings: RatingMatrix | None = None

    def fit(
        self, graph: KnowledgeGraph, ratings: RatingMatrix
    ) -> "CAFERecommender":
        """Train on the knowledge graph and interaction history."""
        self._graph = graph
        self._ratings = ratings
        if self.mf.user_factors is None:
            self.mf.fit(ratings)
        self._fitted = True
        return self

    def recommend(self, user: str, k: int) -> RecommendationList:
        """Top-k items for one user, each with one path."""
        self._check_fitted()
        graph, ratings = self._graph, self._ratings
        if user not in graph:
            raise KeyError(f"unknown user {user!r}")
        user_index = int(user.split(":")[1])
        rated = set(ratings.user_items(user_index))
        scores = self.mf.score_items(user_index)

        pattern_priors = self._coarse_pattern_profile(user)
        best_per_item: dict[str, tuple[float, tuple[str, ...]]] = {}
        for pattern in sorted(
            self.patterns, key=lambda p: -pattern_priors.get(p, 0.0)
        ):
            prior = pattern_priors.get(pattern, 0.0)
            for walk in self._instantiate(user, pattern):
                end = walk[-1]
                item_index = int(end.split(":")[1])
                if item_index in rated:
                    continue
                value = float(scores[item_index]) + 0.1 * prior
                current = best_per_item.get(end)
                if current is None or value > current[0]:
                    best_per_item[end] = (value, walk)

        ranked = sorted(best_per_item.items(), key=lambda kv: -kv[1][0])[:k]
        recommendations = [
            Recommendation(
                user=user,
                item=item,
                score=value,
                path=Path(nodes=walk, user=user, item=item, score=value),
            )
            for item, (value, walk) in ranked
        ]
        return RecommendationList(user=user, recommendations=recommendations)

    # ------------------------------------------------------------------
    def _coarse_pattern_profile(self, user: str) -> dict[MetaPath, float]:
        """Coarse stage: estimate how well each pattern explains history.

        For each pattern, count concrete instantiations that land on items
        the user *did* rate — a symbolic stand-in for CAFE's learned
        profile likelihoods — and normalize to a prior.
        """
        counts = {pattern: 0 for pattern in self.patterns}
        ratings = self._ratings
        user_index = int(user.split(":")[1])
        rated_ids = {f"i:{i}" for i in ratings.user_items(user_index)}
        for pattern in self.patterns:
            hits = 0
            for walk in self._instantiate(user, pattern, limit=80):
                if walk[-1] in rated_ids:
                    hits += 1
            counts[pattern] = hits
        total = sum(counts.values())
        if total == 0:
            return {pattern: 1.0 / len(self.patterns) for pattern in counts}
        return {pattern: hits / total for pattern, hits in counts.items()}

    def _instantiate(
        self, user: str, pattern: MetaPath, limit: int | None = None
    ):
        """Fine stage: yield concrete walks matching ``pattern``.

        Expansion is greedy by edge weight with a per-node branch cap, so
        the strongest historical interactions anchor the paths.
        """
        graph = self._graph
        cap = limit or self.branch_factor**2
        emitted = 0
        stack: list[tuple[str, ...]] = [(user,)]
        while stack and emitted < cap:
            walk = stack.pop()
            depth = len(walk) - 1
            if depth == len(pattern.node_types) - 1:
                emitted += 1
                yield walk
                continue
            wanted = pattern.node_types[depth + 1]
            tail = walk[-1]
            visited = set(walk)
            nexts = [
                (weight, neighbor)
                for neighbor, weight in graph.neighbors(tail).items()
                if neighbor not in visited
                and NodeType.of(neighbor) is wanted
            ]
            nexts.sort(reverse=True)
            for _, neighbor in nexts[: self.branch_factor]:
                stack.append(walk + (neighbor,))
