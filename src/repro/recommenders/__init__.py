"""Recommender substrates.

The paper consumes explanation paths from four published systems — PGPR,
CAFE, PLM-Rec and PEARLM. Trained checkpoints are unavailable offline, so
each is re-implemented here as a faithful structural simulator: the same
path grammar, scoring signals and failure modes (see DESIGN.md §2), built
on a shared matrix-factorization relevance model.
"""

from repro.recommenders.base import (
    PathExplainableRecommender,
    Recommendation,
    RecommendationList,
)
from repro.recommenders.mf import MatrixFactorizationModel
from repro.recommenders.pgpr import PGPRRecommender
from repro.recommenders.cafe import CAFERecommender
from repro.recommenders.plm import PLMRecommender
from repro.recommenders.pearlm import PEARLMRecommender
from repro.recommenders.posthoc import PostHocPathRecommender
from repro.recommenders.registry import available_recommenders, make_recommender

__all__ = [
    "CAFERecommender",
    "MatrixFactorizationModel",
    "PGPRRecommender",
    "PLMRecommender",
    "PEARLMRecommender",
    "PathExplainableRecommender",
    "PostHocPathRecommender",
    "Recommendation",
    "RecommendationList",
    "available_recommenders",
    "make_recommender",
]
