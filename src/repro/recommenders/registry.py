"""Name -> recommender factory, used by the CLI and the experiment config."""

from __future__ import annotations

from collections.abc import Callable

from repro.recommenders.base import PathExplainableRecommender
from repro.recommenders.cafe import CAFERecommender
from repro.recommenders.pearlm import PEARLMRecommender
from repro.recommenders.pgpr import PGPRRecommender
from repro.recommenders.plm import PLMRecommender
from repro.recommenders.posthoc import PostHocPathRecommender

_FACTORIES: dict[str, Callable[..., PathExplainableRecommender]] = {
    "PGPR": PGPRRecommender,
    "CAFE": CAFERecommender,
    "PLM": PLMRecommender,
    "PEARLM": PEARLMRecommender,
    "MF+posthoc": PostHocPathRecommender,
}


def available_recommenders() -> list[str]:
    """Names accepted by :func:`make_recommender`."""
    return sorted(_FACTORIES)


def make_recommender(name: str, **kwargs) -> PathExplainableRecommender:
    """Instantiate a recommender by its paper name (case-insensitive)."""
    for key, factory in _FACTORIES.items():
        if key.lower() == name.lower():
            return factory(**kwargs)
    raise KeyError(
        f"unknown recommender {name!r}; available: {available_recommenders()}"
    )
