"""Matrix-factorization relevance model (shared recommender substrate).

All four baseline simulators need a user-item relevance signal playing the
role of the trained neural scorers in the originals. This is a standard
alternating-least-squares factorization with bias terms, implemented on
numpy normal equations so it stays fast and dependency-free at the scales
the experiments use.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix


class MatrixFactorizationModel:
    """Biased ALS matrix factorization.

    Minimizes ``Σ (r_ui - μ - b_u - b_i - p_u·q_i)² + λ(‖p‖² + ‖q‖² )``
    over observed ratings, alternating exact per-row solves.

    Parameters
    ----------
    num_factors:
        Latent dimensionality.
    num_iterations:
        ALS sweeps (each sweep solves all users then all items).
    regularization:
        L2 penalty λ on factors and biases.
    seed:
        Factor initialization seed.
    """

    def __init__(
        self,
        num_factors: int = 16,
        num_iterations: int = 8,
        regularization: float = 0.08,
        seed: int = 13,
    ) -> None:
        if num_factors < 1:
            raise ValueError("need at least one latent factor")
        self.num_factors = num_factors
        self.num_iterations = num_iterations
        self.regularization = regularization
        self.seed = seed
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.user_bias: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None
        self.global_mean: float = 0.0
        self._ratings: RatingMatrix | None = None

    def fit(self, ratings: RatingMatrix) -> "MatrixFactorizationModel":
        """Run ALS on the observed ratings."""
        rng = np.random.default_rng(self.seed)
        n_users, n_items = ratings.num_users, ratings.num_items
        scale = 1.0 / np.sqrt(self.num_factors)
        self.user_factors = rng.normal(0, scale, (n_users, self.num_factors))
        self.item_factors = rng.normal(0, scale, (n_items, self.num_factors))
        self.user_bias = np.zeros(n_users)
        self.item_bias = np.zeros(n_items)
        self._ratings = ratings

        records = list(ratings.iter_ratings())
        if not records:
            self.global_mean = 0.0
            return self
        values = np.array([r for _, _, r, _ in records])
        self.global_mean = float(values.mean())

        by_user: dict[int, list[tuple[int, float]]] = {}
        by_item: dict[int, list[tuple[int, float]]] = {}
        for user, item, rating, _ in records:
            by_user.setdefault(user, []).append((item, rating))
            by_item.setdefault(item, []).append((user, rating))

        for _ in range(self.num_iterations):
            self._solve_side(by_user, self.user_factors, self.user_bias,
                             self.item_factors, self.item_bias)
            self._solve_side(by_item, self.item_factors, self.item_bias,
                             self.user_factors, self.user_bias)
        return self

    def _solve_side(self, groups, own_factors, own_bias,
                    other_factors, other_bias) -> None:
        """One ALS half-sweep: exact solve per row with fixed other side."""
        lam = self.regularization
        eye = lam * np.eye(self.num_factors)
        for index, entries in groups.items():
            other_idx = np.array([i for i, _ in entries])
            targets = np.array([r for _, r in entries])
            basis = other_factors[other_idx]
            residual = (
                targets - self.global_mean - other_bias[other_idx]
            )
            own_bias[index] = residual.mean() / (1.0 + lam)
            residual = residual - own_bias[index]
            gram = basis.T @ basis + eye * max(1, len(entries))
            rhs = basis.T @ residual
            own_factors[index] = np.linalg.solve(gram, rhs)

    def predict(self, user: int, item: int) -> float:
        """Predicted rating for one pair."""
        self._check_fitted()
        return float(
            self.global_mean
            + self.user_bias[user]
            + self.item_bias[item]
            + self.user_factors[user] @ self.item_factors[item]
        )

    def score_items(self, user: int) -> np.ndarray:
        """Predicted rating for every item (vectorized)."""
        self._check_fitted()
        return (
            self.global_mean
            + self.user_bias[user]
            + self.item_bias
            + self.item_factors @ self.user_factors[user]
        )

    def top_unrated_items(self, user: int, k: int) -> list[tuple[int, float]]:
        """Top-``k`` items the user has not rated, by predicted score."""
        self._check_fitted()
        scores = self.score_items(user)
        rated = set(self._ratings.user_items(user))
        order = np.argsort(-scores, kind="stable")
        picks: list[tuple[int, float]] = []
        for item in order:
            if int(item) in rated:
                continue
            picks.append((int(item), float(scores[item])))
            if len(picks) == k:
                break
        return picks

    def rmse(self) -> float:
        """Training RMSE (sanity metric used in tests)."""
        self._check_fitted()
        errors = [
            (self.predict(u, i) - r) ** 2
            for u, i, r, _ in self._ratings.iter_ratings()
        ]
        return float(np.sqrt(np.mean(errors))) if errors else 0.0

    def _check_fitted(self) -> None:
        if self.user_factors is None:
            raise RuntimeError("call fit() before predicting")
