"""PLM-Rec simulator: path language modeling (Geng et al., WWW'22).

PLM-Rec trains a language model on path corpora sampled from the KG and
*decodes* recommendation paths token by token. Its defining property — the
one the paper's Figs 12-13 exercise — is that decoding is **not**
constrained to the KG: the model can emit fluent but *hallucinated* hops
that do not exist as edges, producing more diverse paths than graph-bound
reasoners (and occasionally unfaithful ones).

The simulator trains a smoothed bigram model over node tokens from random
walks and decodes stochastically:

- transitions seen in the walk corpus get probability mass from counts;
- with probability ``hallucination_rate`` a step is sampled from the
  *global type-compatible vocabulary* instead of the neighbor set — the
  structural analogue of an LM generalizing beyond observed edges.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.types import NodeType
from repro.recommenders.base import (
    MAX_HOPS,
    PathExplainableRecommender,
    Recommendation,
    RecommendationList,
)
from repro.recommenders.mf import MatrixFactorizationModel


class PLMRecommender(PathExplainableRecommender):
    """Bigram path language model with unconstrained decoding."""

    name = "PLM"

    def __init__(
        self,
        walks_per_node: int = 6,
        walk_length: int = 4,
        hallucination_rate: float = 0.25,
        decode_attempts: int = 400,
        mf: MatrixFactorizationModel | None = None,
        seed: int = 31,
    ) -> None:
        super().__init__()
        if not 0.0 <= hallucination_rate <= 1.0:
            raise ValueError("hallucination_rate must be in [0, 1]")
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.hallucination_rate = hallucination_rate
        self.decode_attempts = decode_attempts
        self.mf = mf or MatrixFactorizationModel(seed=seed)
        self.seed = seed
        self._graph: KnowledgeGraph | None = None
        self._ratings: RatingMatrix | None = None
        self._bigram: dict[str, tuple[list[str], np.ndarray]] = {}
        self._vocab_by_type: dict[NodeType, list[str]] = {}
        self._rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def fit(self, graph: KnowledgeGraph, ratings: RatingMatrix) -> "PLMRecommender":
        """Train on the knowledge graph and interaction history."""
        self._graph = graph
        self._ratings = ratings
        self._rng = np.random.default_rng(self.seed)
        if self.mf.user_factors is None:
            self.mf.fit(ratings)
        self._train_language_model()
        self._fitted = True
        return self

    def _train_language_model(self) -> None:
        """Count bigrams over a random-walk corpus (the 'pre-training')."""
        graph, rng = self._graph, self._rng
        counts: dict[str, dict[str, int]] = {}
        nodes = list(graph.nodes())
        for node in nodes:
            for _ in range(self.walks_per_node):
                walk = [node]
                for _ in range(self.walk_length):
                    neighbors = list(graph.neighbors(walk[-1]))
                    if not neighbors:
                        break
                    walk.append(
                        neighbors[int(rng.integers(0, len(neighbors)))]
                    )
                for a, b in zip(walk, walk[1:]):
                    counts.setdefault(a, {}).setdefault(b, 0)
                    counts[a][b] += 1
        self._bigram = {}
        for token, nexts in counts.items():
            options = list(nexts)
            probs = np.array([nexts[o] for o in options], dtype=float)
            probs /= probs.sum()
            self._bigram[token] = (options, probs)
        self._vocab_by_type = {
            node_type: sorted(graph.nodes_of_type(node_type))
            for node_type in NodeType
        }

    # ------------------------------------------------------------------
    def recommend(self, user: str, k: int) -> RecommendationList:
        """Top-k items for one user, each with one path."""
        self._check_fitted()
        graph, ratings, rng = self._graph, self._ratings, self._rng
        if user not in graph:
            raise KeyError(f"unknown user {user!r}")
        user_index = int(user.split(":")[1])
        rated = set(ratings.user_items(user_index))
        scores = self.mf.score_items(user_index)

        best_per_item: dict[str, tuple[float, tuple[str, ...]]] = {}
        for _ in range(self.decode_attempts):
            walk = self._decode_path(user)
            if walk is None:
                continue
            end = walk[-1]
            item_index = int(end.split(":")[1])
            if item_index in rated:
                continue
            value = float(scores[item_index])
            current = best_per_item.get(end)
            if current is None or value > current[0]:
                best_per_item[end] = (value, walk)
            if len(best_per_item) >= 4 * k:
                break

        ranked = sorted(best_per_item.items(), key=lambda kv: -kv[1][0])[:k]
        recommendations = [
            Recommendation(
                user=user,
                item=item,
                score=value,
                path=Path(nodes=walk, user=user, item=item, score=value),
            )
            for item, (value, walk) in ranked
        ]
        return RecommendationList(user=user, recommendations=recommendations)

    def _decode_path(self, user: str) -> tuple[str, ...] | None:
        """Sample one ≤3-hop walk from the LM, ending at an item token."""
        rng = self._rng
        walk = [user]
        for hop in range(MAX_HOPS):
            token = self._sample_next(walk)
            if token is None:
                return None
            walk.append(token)
            if NodeType.of(token) is NodeType.ITEM and hop >= 1:
                break
        if NodeType.of(walk[-1]) is not NodeType.ITEM or len(walk) < 3:
            return None
        return tuple(walk)

    def _sample_next(self, walk: list[str]) -> str | None:
        """One decoding step: corpus bigram or hallucinated token."""
        rng = self._rng
        tail = walk[-1]
        visited = set(walk)
        if rng.random() < self.hallucination_rate:
            # LM generalization: jump to any type-plausible token.
            target_type = self._plausible_next_type(tail, rng)
            vocab = self._vocab_by_type.get(target_type, [])
            candidates = [t for t in vocab if t not in visited]
            if candidates:
                return candidates[int(rng.integers(0, len(candidates)))]
        entry = self._bigram.get(tail)
        if entry is None:
            return None
        options, probs = entry
        for _ in range(6):
            token = options[int(rng.choice(len(options), p=probs))]
            if token not in visited:
                return token
        return None

    @staticmethod
    def _plausible_next_type(
        token: str, rng: np.random.Generator
    ) -> NodeType:
        """Schema-compatible next-token type (users never follow users)."""
        current = NodeType.of(token)
        if current is NodeType.USER:
            return NodeType.ITEM
        if current is NodeType.ITEM:
            return (
                NodeType.EXTERNAL
                if rng.random() < 0.6
                else NodeType.USER
            )
        return NodeType.ITEM
