"""Common recommender interface and result records.

Every recommender in this package implements
:class:`PathExplainableRecommender`: fit on (knowledge graph, rating
matrix), then produce per-user top-k recommendations where each
recommended item carries one explanation :class:`~repro.graph.paths.Path`
of at most ``max_hops`` edges — the contract the paper's summarizers and
baselines are built on.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path

MAX_HOPS = 3  # "each reaching the recommended item within a maximum of three edges"


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One (user, item) recommendation with its explanation path."""

    user: str
    item: str
    score: float
    path: Path

    def __post_init__(self) -> None:
        if self.path.nodes[0] != self.user:
            raise ValueError("explanation path must start at the user")
        if self.path.nodes[-1] != self.item:
            raise ValueError("explanation path must end at the item")


@dataclass(slots=True)
class RecommendationList:
    """Ordered top-k list for one user.

    Slicing with :meth:`top` yields the paper's "incremental set of top-k
    recommendation paths for k = 1 to 10".
    """

    user: str
    recommendations: list[Recommendation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.recommendations)

    def __iter__(self):
        return iter(self.recommendations)

    def top(self, k: int) -> list[Recommendation]:
        """First ``k`` recommendations (highest scores first)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self.recommendations[:k]

    def items(self, k: int | None = None) -> list[str]:
        """Recommended item ids (``R_u``), optionally truncated at ``k``."""
        recs = self.recommendations if k is None else self.top(k)
        return [r.item for r in recs]

    def paths(self, k: int | None = None) -> list[Path]:
        """Explanation paths (``E_u``), optionally truncated at ``k``."""
        recs = self.recommendations if k is None else self.top(k)
        return [r.path for r in recs]


class PathExplainableRecommender(abc.ABC):
    """Interface shared by PGPR / CAFE / PLM / PEARLM simulators."""

    #: Human-readable method name ("PGPR", "CAFE", ...).
    name: str = "base"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(
        self, graph: KnowledgeGraph, ratings: RatingMatrix
    ) -> "PathExplainableRecommender":
        """Train on the knowledge graph and interaction history."""

    @abc.abstractmethod
    def recommend(self, user: str, k: int) -> RecommendationList:
        """Top-``k`` items for ``user``, each with one explanation path."""

    def recommend_many(
        self, users: Sequence[str], k: int
    ) -> dict[str, RecommendationList]:
        """Batch helper: user id -> top-k list."""
        return {user: self.recommend(user, k) for user in users}

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name}: call fit() before recommend()")


def invert_recommendations(
    per_user: dict[str, RecommendationList], k: int
) -> dict[str, list[Recommendation]]:
    """Group top-k recommendations by item: ``C_i`` and its paths ``E_i``.

    The item-centric and item-group scenarios need, for each item, the
    users it was recommended to and the corresponding paths.
    """
    by_item: dict[str, list[Recommendation]] = {}
    for rec_list in per_user.values():
        for rec in rec_list.top(k):
            by_item.setdefault(rec.item, []).append(rec)
    return by_item
