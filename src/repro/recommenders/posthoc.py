"""Post-hoc path explanations for recommenders without native paths.

The paper notes its approach also covers "methods that do not output paths
but provide recommended items and access to underlying graph data": the
summarizer can generate new path explanations from the graph structure.
This adapter demonstrates exactly that — it wraps the bare matrix-
factorization scorer and attaches, to each recommended item, the fewest-
hops KG path from the user (capped at ``MAX_HOPS``).
"""

from __future__ import annotations

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import bfs_shortest_path
from repro.recommenders.base import (
    MAX_HOPS,
    PathExplainableRecommender,
    Recommendation,
    RecommendationList,
)
from repro.recommenders.mf import MatrixFactorizationModel


class PostHocPathRecommender(PathExplainableRecommender):
    """MF recommender + post-hoc BFS path explanations."""

    name = "MF+posthoc"

    def __init__(
        self,
        mf: MatrixFactorizationModel | None = None,
        max_hops: int = MAX_HOPS,
        seed: int = 41,
    ) -> None:
        super().__init__()
        self.mf = mf or MatrixFactorizationModel(seed=seed)
        self.max_hops = max_hops
        self._graph: KnowledgeGraph | None = None
        self._ratings: RatingMatrix | None = None

    def fit(
        self, graph: KnowledgeGraph, ratings: RatingMatrix
    ) -> "PostHocPathRecommender":
        """Train on the knowledge graph and interaction history."""
        self._graph = graph
        self._ratings = ratings
        if self.mf.user_factors is None:
            self.mf.fit(ratings)
        self._fitted = True
        return self

    def recommend(self, user: str, k: int) -> RecommendationList:
        """Top-k items for one user, each with one path."""
        self._check_fitted()
        graph = self._graph
        if user not in graph:
            raise KeyError(f"unknown user {user!r}")
        user_index = int(user.split(":")[1])

        recommendations: list[Recommendation] = []
        # Over-fetch because some top items may be unreachable within the
        # hop budget; keep the first k that admit a path explanation.
        for item_index, score in self.mf.top_unrated_items(
            user_index, 4 * k
        ):
            item = f"i:{item_index}"
            if item not in graph:
                continue
            nodes = bfs_shortest_path(graph, user, item)
            if nodes is None or len(nodes) - 1 > self.max_hops:
                continue
            path = Path(
                nodes=tuple(nodes), user=user, item=item, score=score
            )
            recommendations.append(
                Recommendation(user=user, item=item, score=score, path=path)
            )
            if len(recommendations) == k:
                break
        return RecommendationList(user=user, recommendations=recommendations)
