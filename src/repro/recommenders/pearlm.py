"""PEARLM simulator: faithful path language modeling (Balloccu et al.).

PEARLM is PLM-Rec plus a decoding-time constraint: every generated hop
must be a real KG edge ("ensuring that generated paths faithfully adhere
to valid KG connections"). We implement it exactly that way — the PLM
decoder with the hallucination channel removed and every bigram proposal
filtered against the graph's adjacency.
"""

from __future__ import annotations

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.recommenders.plm import PLMRecommender


class PEARLMRecommender(PLMRecommender):
    """KG-faithful constrained decoder on top of the PLM bigram model."""

    name = "PEARLM"

    def __init__(
        self,
        walks_per_node: int = 6,
        walk_length: int = 4,
        decode_attempts: int = 400,
        mf=None,
        seed: int = 37,
    ) -> None:
        super().__init__(
            walks_per_node=walks_per_node,
            walk_length=walk_length,
            hallucination_rate=0.0,  # the faithfulness constraint
            decode_attempts=decode_attempts,
            mf=mf,
            seed=seed,
        )

    def fit(self, graph: KnowledgeGraph, ratings: RatingMatrix) -> "PEARLMRecommender":
        """Train on the knowledge graph and interaction history."""
        super().fit(graph, ratings)
        return self

    def _sample_next(self, walk: list[str]) -> str | None:
        """Constrained decoding: reject any proposal that is not a KG edge."""
        graph = self._graph
        tail = walk[-1]
        token = super()._sample_next(walk)
        attempts = 0
        while token is not None and not graph.has_edge(tail, token):
            attempts += 1
            if attempts >= 8:
                return None
            token = super()._sample_next(walk)
        return token
