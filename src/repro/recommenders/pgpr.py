"""PGPR simulator: policy-guided path reasoning (Xian et al., SIGIR'19).

The original PGPR trains an RL agent whose policy walks the knowledge
graph from a user node and whose terminal reward is the relevance of the
reached item. Structurally its output is: for each user, top-k items
*reachable within 3 hops*, each justified by the highest-value walk.

This simulator reproduces that contract with an explicit value function
instead of a learned one: a beam search over ≤3-hop walks scored by

``value(path) = relevance(user, end_item) + η · Σ log P(step)
                + r · mean(w_M over path edges)``

where ``P(step)`` is a weight-proportional transition probability with a
degree penalty (hub avoidance, as PGPR's action-pruning does),
``relevance`` comes from the shared matrix-factorization model, and the
mean-edge-weight term plays the role of PGPR's path-quality reward — it
is what propagates the β1/β2 rating/recency mix of Fig 16 into the
chosen paths. The result has PGPR's signature properties the paper's
experiments depend on: fixed 3-hop paths, popularity-correlated
endpoints, one standalone path per recommended item.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.types import NodeType
from repro.recommenders.base import (
    MAX_HOPS,
    PathExplainableRecommender,
    Recommendation,
    RecommendationList,
)
from repro.recommenders.mf import MatrixFactorizationModel


class PGPRRecommender(PathExplainableRecommender):
    """Beam-search path reasoner with an RL-style value function."""

    name = "PGPR"

    def __init__(
        self,
        beam_width: int = 48,
        path_weight: float = 0.35,
        degree_penalty: float = 0.25,
        knowledge_affinity: float = 3.0,
        reward_weight: float = 0.4,
        item_weight_affinity: float = 2.5,
        mf: MatrixFactorizationModel | None = None,
        seed: int = 23,
    ) -> None:
        super().__init__()
        self.beam_width = beam_width
        self.path_weight = path_weight
        self.degree_penalty = degree_penalty
        self.knowledge_affinity = knowledge_affinity
        self.reward_weight = reward_weight
        self.item_weight_affinity = item_weight_affinity
        self._item_weight_bonus: np.ndarray | None = None
        self.mf = mf or MatrixFactorizationModel(seed=seed)
        self.seed = seed
        self._graph: KnowledgeGraph | None = None
        self._ratings: RatingMatrix | None = None

    def fit(
        self, graph: KnowledgeGraph, ratings: RatingMatrix
    ) -> "PGPRRecommender":
        """Train on the knowledge graph and interaction history."""
        self._graph = graph
        self._ratings = ratings
        if self.mf.user_factors is None:
            self.mf.fit(ratings)
        self._max_weight = max(
            (edge.weight for edge in graph.edges()), default=1.0
        ) or 1.0
        self._item_weight_bonus = (
            self._compute_item_weight_bonus() / self._max_weight
        )
        self._fitted = True
        return self

    def _compute_item_weight_bonus(self) -> np.ndarray:
        """Mean w_M over each item's interaction edges.

        This is how the graph's rating/recency weighting (β1/β2) reaches
        the item *ranking*: under rating-dominant weights head items get
        the bonus, under recency-dominant weights the recently-rated tail
        does — the mechanism behind the paper's Fig 16.
        """
        bonus = np.zeros(self._ratings.num_items)
        for item_index in range(self._ratings.num_items):
            item = f"i:{item_index}"
            if item not in self._graph:
                continue
            weights = [
                w
                for neighbor, w in self._graph.neighbors(item).items()
                if NodeType.of(neighbor) is NodeType.USER
            ]
            if weights:
                bonus[item_index] = sum(weights) / len(weights)
        return bonus

    def recommend(self, user: str, k: int) -> RecommendationList:
        """Top-k items for one user, each with one path."""
        self._check_fitted()
        graph, ratings = self._graph, self._ratings
        if user not in graph:
            raise KeyError(f"unknown user {user!r}")
        user_index = int(user.split(":")[1])
        rated = set(ratings.user_items(user_index))
        # The (normalized) item weight bonus spans [0, 1]; scaled by 2 it
        # can shift rankings by up to two MF-score standard deviations.
        scores = (
            self.mf.score_items(user_index)
            + 2.0 * self.item_weight_affinity * self._item_weight_bonus
        )

        # Beam over walks of exactly <= MAX_HOPS edges. Each beam entry is
        # (log-prob, node tuple); item endpoints yield candidate paths.
        beam: list[tuple[float, tuple[str, ...]]] = [(0.0, (user,))]
        best_per_item: dict[str, tuple[float, tuple[str, ...]]] = {}

        for _hop in range(MAX_HOPS):
            candidates: list[tuple[float, tuple[str, ...]]] = []
            for log_prob, walk in beam:
                tail = walk[-1]
                steps = self._transition_log_probs(tail, walk)
                for neighbor, step_lp in steps:
                    new_walk = walk + (neighbor,)
                    new_lp = log_prob + step_lp
                    candidates.append((new_lp, new_walk))
                    self._offer(
                        best_per_item,
                        new_walk,
                        new_lp,
                        rated,
                        scores,
                    )
            candidates.sort(key=lambda c: -c[0])
            beam = candidates[: self.beam_width]
            if not beam:
                break

        ranked = sorted(
            best_per_item.items(), key=lambda kv: -kv[1][0]
        )[:k]
        recommendations = [
            Recommendation(
                user=user,
                item=item,
                score=value,
                path=Path(nodes=walk, user=user, item=item, score=value),
            )
            for item, (value, walk) in ranked
        ]
        return RecommendationList(user=user, recommendations=recommendations)

    # ------------------------------------------------------------------
    def _transition_log_probs(
        self, node: str, walk: tuple[str, ...]
    ) -> list[tuple[str, float]]:
        """Hub-penalized, weight-proportional step distribution from ``node``.

        Mirrors PGPR's pruned action space: only the top-degree-penalized
        neighbors are considered, and revisits are forbidden.
        """
        graph = self._graph
        visited = set(walk)
        entries: list[tuple[str, float]] = []
        for neighbor, weight in graph.neighbors(node).items():
            if neighbor in visited:
                continue
            # KG reasoners step through entity relations far more often
            # than through co-rating users; knowledge edges carry w_A = 0,
            # so they get a fixed affinity instead of a weight bonus.
            # Interaction attraction is normalized by the graph's max
            # weight so the β1/β2 *scale* cancels and only the weight
            # *distribution* steers the walks.
            if NodeType.of(neighbor) is NodeType.EXTERNAL:
                base = self.knowledge_affinity
            else:
                base = 1.0 + 4.0 * max(weight, 0.0) / self._max_weight
            attraction = base / (
                graph.degree(neighbor) ** self.degree_penalty
            )
            entries.append((neighbor, attraction))
        if not entries:
            return []
        total = sum(a for _, a in entries)
        return [
            (neighbor, math.log(attraction / total))
            for neighbor, attraction in entries
        ]

    def _offer(
        self,
        best_per_item: dict[str, tuple[float, tuple[str, ...]]],
        walk: tuple[str, ...],
        log_prob: float,
        rated: set[int],
        scores: np.ndarray,
    ) -> None:
        """Record ``walk`` as a candidate explanation if it ends at a new
        recommendable item and beats the item's current best value."""
        end = walk[-1]
        if NodeType.of(end) is not NodeType.ITEM:
            return
        item_index = int(end.split(":")[1])
        if item_index in rated:
            return
        value = (
            float(scores[item_index])
            + self.path_weight * log_prob
            + 2.0
            * self.reward_weight
            * self._mean_path_weight(walk)
            / self._max_weight
        )
        current = best_per_item.get(end)
        if current is None or value > current[0]:
            best_per_item[end] = (value, walk)

    def _mean_path_weight(self, walk: tuple[str, ...]) -> float:
        """Mean w_M over the walk's edges (the path-quality reward)."""
        graph = self._graph
        total = 0.0
        for u, v in zip(walk, walk[1:]):
            total += graph.weight(u, v)
        return total / (len(walk) - 1)
