"""Lightweight request tracing for the serving stack.

Answers the question the flat end-of-batch counters cannot: *where did
this one slow request spend its time?* A :class:`Tracer` opens one
:class:`TraceBuilder` per request; every layer the request crosses —
server admission, session freeze/export/pool spin-up, scheduler
dispatch, per-task queue wait, worker compute/encode, closure-store
fetch/publish — records a span under the same ``trace_id``. Completed
traces land in a bounded in-process :class:`TraceCollector` ring
buffer, retrievable via ``session.last_trace()`` or the server
``trace`` op, and any request slower than a configured threshold is
emitted as one structured log line with its span breakdown.

Design constraints, in priority order:

- **Disabled cost is one attribute check.** ``Tracer.begin()`` returns
  ``None`` when tracing is off; every call site guards with
  ``if trace is not None``. Worker-side hooks guard on a single module
  flag (:func:`record_event`). Nothing allocates until tracing is on.
- **No new IPC.** Spawned workers never see the trace context. They
  record *ambient events* — ``(task_index, name, seconds, attrs)``
  tuples behind a module flag — which ride back to the parent inside
  the existing result-pipe stat-delta dict (an extra ``"_spans"`` key
  the stat fold ignores). The parent re-parents them under the task's
  span at merge time, so ids are assigned exactly once, in one
  process. Worker span *durations* are exact; their start offsets are
  approximate (stamped at merge), which is fine for attribution.
- **Hash-seed independence.** Trace and span ids come from
  :func:`os.urandom`, never ``hash()``, so ids are well-formed and
  unique regardless of ``PYTHONHASHSEED`` — the same invariant the
  closure-store digests obey.

Span tree shape (what ``last_trace()`` returns)::

    {"trace_id": "9f2c...", "name": "run", "duration_ms": 41.2,
     "span_count": 9,
     "root": {"name": "run", "span_id": "...", "parent_id": None,
              "start_ms": 0.0, "duration_ms": 41.2, "attrs": {...},
              "children": [...]}}
"""

from __future__ import annotations

import os
import threading
import time

__all__ = [
    "Span",
    "TraceBuilder",
    "TraceCollector",
    "Tracer",
    "ambient_enabled",
    "disable_ambient",
    "drain_ambient",
    "enable_ambient",
    "format_trace",
    "new_span_id",
    "new_trace_id",
    "record_event",
    "set_ambient_task",
]


def new_trace_id() -> str:
    """16 hex chars from ``os.urandom`` — PYTHONHASHSEED-independent."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """8 hex chars from ``os.urandom`` — PYTHONHASHSEED-independent."""
    return os.urandom(4).hex()


class Span:
    """One timed operation inside a trace.

    ``start`` is a ``time.perf_counter()`` stamp local to the builder's
    process; exported dicts carry only the offset from the trace origin
    so cross-process clock bases never leak into the output.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        duration: float | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs or {}

    def to_dict(self, origin: float) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.start - origin) * 1000.0, 3),
            "duration_ms": (
                None
                if self.duration is None
                else round(self.duration * 1000.0, 3)
            ),
            "attrs": dict(self.attrs),
        }


class TraceCollector:
    """Bounded ring buffer of completed trace trees (newest wins)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("trace collector capacity must be >= 1")
        self.capacity = capacity
        self._traces: list[dict] = []
        self._lock = threading.Lock()

    def add(self, trace: dict) -> None:
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self.capacity:
                del self._traces[: len(self._traces) - self.capacity]

    def last(self) -> dict | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            for trace in reversed(self._traces):
                if trace.get("trace_id") == trace_id:
                    return trace
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class TraceBuilder:
    """Accumulates the spans of one request and folds them into a tree.

    All spans live in a flat append-only list; parents are always
    appended before their children, so tree assembly is a single pass.
    A small lock guards appends — the idle-shrink ticker thread can
    absorb a stray lease message while the session thread records.
    """

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        collector: TraceCollector | None = None,
        slow_ms: float = 0.0,
        logger=None,
        **attrs,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._collector = collector
        self._slow_ms = slow_ms
        self._logger = logger
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self.root = Span(
            self.trace_id,
            new_span_id(),
            None,
            name,
            self._origin,
            None,
            attrs,
        )
        self._spans: list[Span] = [self.root]
        self._tasks: dict[int, Span] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, *, parent: Span | None = None, **attrs) -> Span:
        """Open a span now; close it later with :meth:`end`."""
        parent = parent or self.root
        span = Span(
            self.trace_id,
            new_span_id(),
            parent.span_id,
            name,
            time.perf_counter(),
            None,
            attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def end(self, span: Span, **attrs) -> None:
        if span.duration is None:
            span.duration = time.perf_counter() - span.start
        if attrs:
            span.attrs.update(attrs)

    def event(
        self,
        name: str,
        seconds: float,
        *,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """Record an already-completed span of known duration."""
        parent = parent or self.root
        now = time.perf_counter()
        span = Span(
            self.trace_id,
            new_span_id(),
            parent.span_id,
            name,
            now - seconds,
            seconds,
            attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def task_span(self, index: int) -> Span:
        """The per-task grouping span (memoized, child of the root)."""
        with self._lock:
            span = self._tasks.get(index)
            if span is None:
                span = Span(
                    self.trace_id,
                    new_span_id(),
                    self.root.span_id,
                    "task",
                    time.perf_counter(),
                    None,
                    {"index": index},
                )
                self._tasks[index] = span
                self._spans.append(span)
            return span

    def end_task(self, index: int) -> None:
        with self._lock:
            span = self._tasks.get(index)
        if span is not None:
            self.end(span)

    def merge_worker(self, entries) -> None:
        """Fold worker-side ambient events shipped via the stat delta.

        ``entries`` is a list of ``(index, name, seconds, attrs)``
        tuples (see :func:`record_event`). Ids are assigned here, in
        the parent, so workers never carry trace context.
        """
        if not entries:
            return
        for index, name, seconds, attrs in entries:
            parent = (
                self.task_span(index) if index is not None else self.root
            )
            self.event(name, seconds, parent=parent, **attrs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def task_payload(self, index: int) -> dict | None:
        """Flat span list for one task — the ``BatchResult.trace`` body."""
        with self._lock:
            task = self._tasks.get(index)
            if task is None:
                return None
            keep = {task.span_id}
            spans = []
            for span in self._spans:
                if span.span_id in keep or span.parent_id in keep:
                    keep.add(span.span_id)
                    spans.append(span.to_dict(self._origin))
        return {"trace_id": self.trace_id, "spans": spans}

    def tree(self) -> dict:
        with self._lock:
            spans = [span.to_dict(self._origin) for span in self._spans]
        by_id: dict[str, dict] = {}
        for span in spans:
            span["children"] = []
            by_id[span["span_id"]] = span
        root = spans[0]
        for span in spans[1:]:
            parent = by_id.get(span["parent_id"])
            (parent["children"] if parent else root["children"]).append(
                span
            )
        return {
            "trace_id": self.trace_id,
            "name": root["name"],
            "duration_ms": root["duration_ms"],
            "span_count": len(spans),
            "root": root,
        }

    def finish(self, **attrs) -> dict:
        """Close every open span, publish the tree, slow-log if due."""
        now = time.perf_counter()
        with self._lock:
            open_spans = [s for s in self._spans if s.duration is None]
        for span in open_spans:
            span.duration = now - span.start
        if attrs:
            self.root.attrs.update(attrs)
        trace = self.tree()
        if self._collector is not None:
            self._collector.add(trace)
        if (
            self._slow_ms > 0
            and self._logger is not None
            and trace["duration_ms"] is not None
            and trace["duration_ms"] >= self._slow_ms
        ):
            breakdown: dict[str, dict] = {}
            with self._lock:
                recorded = list(self._spans[1:])
            for span in recorded:
                slot = breakdown.setdefault(
                    span.name, {"count": 0, "total_ms": 0.0}
                )
                slot["count"] += 1
                slot["total_ms"] = round(
                    slot["total_ms"] + (span.duration or 0.0) * 1000.0, 3
                )
            self._logger.emit(
                "slow_request",
                trace_id=self.trace_id,
                name=trace["name"],
                duration_ms=trace["duration_ms"],
                slow_ms=self._slow_ms,
                spans=breakdown,
            )
        return trace


class Tracer:
    """Per-session trace entry point with a no-op fast path.

    ``begin()`` is the only hook hot paths touch: one attribute check
    when disabled, a :class:`TraceBuilder` when enabled.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        collector: TraceCollector | None = None,
        slow_ms: float = 0.0,
        logger=None,
    ) -> None:
        self.enabled = enabled
        self.collector = collector or TraceCollector()
        self.slow_ms = slow_ms
        self.logger = logger

    def begin(
        self, name: str, *, trace_id: str | None = None, **attrs
    ) -> TraceBuilder | None:
        if not self.enabled:
            return None
        return TraceBuilder(
            name,
            trace_id=trace_id,
            collector=self.collector,
            slow_ms=self.slow_ms,
            logger=self.logger,
            **attrs,
        )


def format_trace(trace: dict | None) -> str:
    """Indented one-span-per-line rendering for the CLI and demos."""
    if not trace:
        return "(no trace recorded)"

    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span["attrs"].items())
        )
        duration = span["duration_ms"]
        shown = "?" if duration is None else f"{duration:.2f}ms"
        lines.append(
            "  " * depth
            + f"{span['name']:<18} {shown:>10}"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in span["children"]:
            walk(child, depth + 1)

    lines.append(
        f"trace {trace['trace_id']} "
        f"({trace['span_count']} spans, {trace['duration_ms']}ms)"
    )
    walk(trace["root"], 1)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Ambient worker-side recording
# ----------------------------------------------------------------------
# Spawned workers have no TraceBuilder (and must not — shipping trace
# context would mean new IPC). Instead the pool flips this module flag
# at worker init when the session traces; compute/encode/store hooks
# then append (task_index, name, seconds, attrs) tuples here, and the
# worker flushes them into the result message's stat-delta dict under
# the "_spans" key. Single-threaded within a worker, so a plain list
# suffices.

_AMBIENT_ON = False
_AMBIENT: list[tuple] = []
_AMBIENT_TASK: int | None = None


def enable_ambient() -> None:
    global _AMBIENT_ON
    _AMBIENT_ON = True


def disable_ambient() -> None:
    global _AMBIENT_ON, _AMBIENT_TASK
    _AMBIENT_ON = False
    _AMBIENT_TASK = None
    _AMBIENT.clear()


def ambient_enabled() -> bool:
    return _AMBIENT_ON


def set_ambient_task(index: int | None) -> None:
    """Attribute subsequent :func:`record_event` calls to one task."""
    global _AMBIENT_TASK
    _AMBIENT_TASK = index


def record_event(name: str, seconds: float, **attrs) -> None:
    """Record one completed worker-side span. No-op when ambient is off."""
    if not _AMBIENT_ON:
        return
    _AMBIENT.append((_AMBIENT_TASK, name, float(seconds), attrs))


def drain_ambient() -> list[tuple]:
    """Return and clear the pending ambient events."""
    if not _AMBIENT:
        return []
    events = list(_AMBIENT)
    _AMBIENT.clear()
    return events
