"""Structured event logging for operational telemetry.

The resilience layer reports through two channels today: counters
(``SessionStats.worker_deaths`` et al.) and free-text
``RuntimeWarning``s (the ``_demote_to_local`` funnel). Neither is
machine-parseable in a chaos job's output. :class:`StructuredLogger`
adds the missing channel: one line per event, either ``key=value``
text or JSON-lines (``--log-json``), written to stderr so it never
interleaves with result output on stdout.

The module-level logger starts **disabled** — emitting costs one
attribute check — and is switched on by
``ObservabilityConfig(log_json=...)`` / the CLI flags. Warnings keep
flowing regardless; the logger is an additional funnel, not a
replacement, so ``-W error::RuntimeWarning`` jobs still catch demotion
regressions.
"""

from __future__ import annotations

import json
import sys
import time

__all__ = ["StructuredLogger", "configure_logging", "get_logger"]


class StructuredLogger:
    """One-line-per-event emitter with a no-op fast path."""

    def __init__(
        self,
        stream=None,
        *,
        json_lines: bool = False,
        enabled: bool = False,
    ) -> None:
        self.stream = stream
        self.json_lines = json_lines
        self.enabled = enabled

    def emit(self, event: str, **fields) -> None:
        if not self.enabled:
            return
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        if self.json_lines:
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            line = " ".join(
                f"{key}={value}" for key, value in record.items()
            )
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream, flush=True)


_LOGGER = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The process-wide event logger (disabled until configured)."""
    return _LOGGER


def configure_logging(
    *,
    enabled: bool = True,
    json_lines: bool = False,
    stream=None,
) -> StructuredLogger:
    """Reconfigure the process-wide logger in place and return it."""
    _LOGGER.enabled = enabled
    _LOGGER.json_lines = json_lines
    _LOGGER.stream = stream
    return _LOGGER
