"""Process-wide metrics registry with Prometheus text exposition.

Three instrument kinds, the minimum a serving deployment needs:

- **Counter** — monotone totals (requests, journal appends). ``inc()``
  rejects negative amounts.
- **Gauge** — point-in-time values (queue depth, uptime). Either set
  directly or backed by a zero-argument callback sampled at render
  time, so liveness probes never hold application locks.
- **Histogram** — fixed exponential buckets (latency, batch size,
  fsync time). Cumulative ``_bucket{le=...}`` samples plus ``_sum`` /
  ``_count``, exactly the Prometheus classic-histogram contract.

"Atomic enough": every instrument serializes mutation under one
``threading.Lock``. Spawned workers never touch the parent registry —
their deltas ride the existing result-pipe stat dicts and are folded
in by the parent (see ``SessionStats``), which is what keeps the
registry's counts and the session's counts the *same numbers* instead
of two drifting copies. Per-session counters (``SessionStats``, store
and resilience totals) are therefore exposed as render-time **views**
(:func:`render_simple` blocks built from ``SessionStats.to_dict()``)
rather than registered twice.

The default registry is a module global (:func:`get_registry`);
``histogram()``/``counter()``/``gauge()`` are get-or-create and
validate that a name keeps one kind and one label set for the life of
the process.

:func:`parse_prometheus` is the inverse used by tests and the CI
scrape gate: it either parses the exposition or raises ``ValueError``
naming the offending line.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "exponential_buckets",
    "get_registry",
    "parse_prometheus",
    "render_simple",
]

_KINDS = ("counter", "gauge", "histogram")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def exponential_buckets(
    start: float = 0.001, factor: float = 2.0, count: int = 14
) -> tuple[float, ...]:
    """``count`` upper bounds growing by ``factor`` from ``start``.

    The default spans 1ms .. ~8.2s, bracketing everything from a warm
    single-task explain to the p95 the ROADMAP perf check flagged.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


DEFAULT_LATENCY_BUCKETS = exponential_buckets()


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class Metric:
    """One named family of samples (optionally split by labels)."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        if kind == "histogram":
            buckets = tuple(buckets or DEFAULT_LATENCY_BUCKETS)
            if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
                buckets
            ):
                raise ValueError("histogram buckets must strictly increase")
            self.buckets = buckets
        else:
            self.buckets = ()
        self._lock = threading.Lock()
        #: counter/gauge: key -> float; histogram: key -> [counts, sum]
        self._samples: dict[tuple, object] = {}
        self._fn = None

    def _key(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{self.label_names}, got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def inc(self, amount: float = 1.0, **labels) -> None:
        if self.kind != "counter":
            raise ValueError(f"{self.name} is a {self.kind}, not a counter")
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        if self.kind != "gauge":
            raise ValueError(f"{self.name} is a {self.kind}, not a gauge")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def set_fn(self, fn) -> None:
        """Back an unlabelled gauge with a render-time callback."""
        if self.kind != "gauge":
            raise ValueError(f"{self.name} is a {self.kind}, not a gauge")
        if self.label_names:
            raise ValueError("callback gauges cannot take labels")
        self._fn = fn

    def observe(self, value: float, **labels) -> None:
        if self.kind != "histogram":
            raise ValueError(
                f"{self.name} is a {self.kind}, not a histogram"
            )
        key = self._key(labels)
        with self._lock:
            slot = self._samples.get(key)
            if slot is None:
                slot = [[0] * (len(self.buckets) + 1), 0.0]
                self._samples[key] = slot
            counts, _total = slot
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            slot[1] = _total + value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, **labels) -> float:
        """Current counter/gauge value (0 when never touched)."""
        if self.kind == "histogram":
            raise ValueError("use sample_count()/sample_sum() on histograms")
        if self._fn is not None:
            return float(self._fn())
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def sample_count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            slot = self._samples.get(key)
            return sum(slot[0]) if slot else 0

    def sample_sum(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            slot = self._samples.get(key)
            return slot[1] if slot else 0.0

    def render(self) -> str:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            samples = dict(self._samples)
        if self.kind == "gauge" and self._fn is not None:
            samples = {(): float(self._fn())}
        if self.kind != "histogram":
            if not samples and not self.label_names:
                samples = {(): 0.0}
            for key, value in sorted(samples.items()):
                labels = dict(zip(self.label_names, key))
                lines.append(
                    f"{self.name}{_label_str(labels)} "
                    f"{_format_value(value)}"
                )
            return "\n".join(lines)
        if not samples and not self.label_names:
            samples = {(): [[0] * (len(self.buckets) + 1), 0.0]}
        for key, (counts, total) in sorted(samples.items()):
            labels = dict(zip(self.label_names, key))
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                le = dict(labels, le=_format_value(float(bound)))
                lines.append(
                    f"{self.name}_bucket{_label_str(le)} {running}"
                )
            running += counts[-1]
            le = dict(labels, le="+Inf")
            lines.append(f"{self.name}_bucket{_label_str(le)} {running}")
            lines.append(
                f"{self.name}_sum{_label_str(labels)} "
                f"{_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_label_str(labels)} {running}")
        return "\n".join(lines)


class MetricsRegistry:
    """Name -> :class:`Metric`, get-or-create, kind-checked."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, name, kind, help, labels, buckets=None
    ) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind or metric.label_names != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind} with labels {metric.label_names}"
                    )
                return metric
            metric = Metric(name, kind, help, tuple(labels), buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels=()) -> Metric:
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Metric:
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(
        self, name: str, help: str = "", labels=(), buckets=None
    ) -> Metric:
        return self._get_or_create(
            name, "histogram", help, labels, buckets
        )

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> list[Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def family_count(self) -> int:
        with self._lock:
            return len(self._metrics)

    def render(self) -> str:
        blocks = [metric.render() for metric in self.families()]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def reset(self) -> None:
        """Drop every registered family (tests only)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def render_simple(name: str, kind: str, help: str, samples) -> str:
    """Render one exposition block from ``[(labels_dict, value), ...]``.

    The render-time "view" path: per-session counters that already live
    on ``SessionStats`` (and would double-count if also registered)
    are exposed by building their block directly from ``to_dict()``.
    """
    if kind not in ("counter", "gauge"):
        raise ValueError("render_simple handles counters and gauges only")
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    lines = []
    if help:
        lines.append(f"# HELP {name} {help}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        lines.append(
            f"{name}{_label_str(labels)} {_format_value(float(value))}"
        )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition into ``{name: [(labels, value), ...]}``.

    Strict on sample lines: anything that is neither a comment, blank,
    nor a well-formed ``name{labels} value`` line raises ``ValueError``
    — this *is* the CI scrape assertion.
    """
    out: dict[str, list[tuple[dict, float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(
                f"unparseable exposition line {lineno}: {raw!r}"
            )
        name, label_body, value_str = match.groups()
        labels: dict[str, str] = {}
        if label_body:
            consumed = 0
            for pair in _LABEL_RE.finditer(label_body):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed += 1
            if consumed != len(
                [p for p in label_body.split(",") if p.strip()]
            ):
                raise ValueError(
                    f"malformed labels on line {lineno}: {raw!r}"
                )
        if value_str == "+Inf":
            value = math.inf
        elif value_str == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_str)
            except ValueError:
                raise ValueError(
                    f"bad sample value on line {lineno}: {raw!r}"
                ) from None
        out.setdefault(name, []).append((labels, value))
    return out
