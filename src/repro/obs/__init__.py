"""repro.obs — tracing, metrics, and structured telemetry.

Three pillars, one subsystem:

- :mod:`repro.obs.trace` — per-request span trees threaded client →
  server → session → scheduler → worker → closure store, with an
  in-process ring-buffer collector and a slow-request log.
- :mod:`repro.obs.registry` — process-wide counters, gauges, and
  exponential-bucket histograms with Prometheus text exposition
  (server ``metrics`` op / ``repro metrics`` CLI probe).
- :mod:`repro.obs.log` — structured event lines (``key=value`` or
  JSON-lines) for the fault-handling paths whose only voice used to
  be a ``RuntimeWarning``.

:class:`~repro.obs.config.ObservabilityConfig` joins the session
configs (``obs=`` / ``--trace`` / ``--slow-ms`` / ``--metrics`` /
``--log-json``); metrics default on, tracing default off, and every
disabled hook costs a single attribute check.
"""

from repro.obs.config import ObservabilityConfig
from repro.obs.log import StructuredLogger, configure_logging, get_logger
from repro.obs.registry import (
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    parse_prometheus,
    render_simple,
)
from repro.obs.trace import (
    Span,
    TraceBuilder,
    TraceCollector,
    Tracer,
    format_trace,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "MetricsRegistry",
    "ObservabilityConfig",
    "Span",
    "StructuredLogger",
    "TraceBuilder",
    "TraceCollector",
    "Tracer",
    "configure_logging",
    "exponential_buckets",
    "format_trace",
    "get_logger",
    "get_registry",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus",
    "render_simple",
]
