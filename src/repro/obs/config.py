"""Observability configuration — the session's seventh typed config.

Defaults encode the overhead discipline: **metrics on** (counters and
histograms are cheap, and a serving deployment without them is blind),
**tracing off** (span allocation per request is only worth paying when
someone is looking), slow-request logging off until a threshold is
chosen. The disabled cost of every hook is a single attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """How much telemetry a session records.

    Parameters
    ----------
    metrics:
        Record counters/gauges/histograms into the process-wide
        registry (rendered by the server ``metrics`` op and the
        ``repro metrics`` CLI probe). Default on.
    trace:
        Record a span tree per request (``session.last_trace()``,
        ``BatchResult.trace``, server ``trace`` op). Default off;
        workers record compute/encode/store spans only while this is
        on.
    slow_ms:
        When > 0 (and tracing is on), any request slower than this
        many milliseconds is emitted as one structured log line with
        its span breakdown. 0 disables the slow-request log.
    trace_buffer:
        How many completed traces the in-process ring buffer retains.
    log_json:
        Switch the process-wide structured logger to JSON-lines on
        stderr (the ``--log-json`` CLI flag), making chaos-job output
        machine-parseable.
    """

    metrics: bool = True
    trace: bool = False
    slow_ms: float = 0.0
    trace_buffer: int = 64
    log_json: bool = False

    def __post_init__(self) -> None:
        if self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1")
