"""Count-min frequency sketch with periodic aging (TinyLFU estimate).

Admission needs a popularity estimate that is cheap, bounded, and
shared by every process — a count-min sketch over the store's 16-byte
key digests, living in its own shared-memory region:

- 4 rows of ``width`` saturating uint16 counters; each row indexes by a
  different 4-byte slice of the digest, so the rows are independent
  hashes without any in-process hashing (and therefore independent of
  ``PYTHONHASHSEED``);
- an ops counter triggers the classic *reset* every ``16 * width``
  increments: every counter is halved, so estimates track recent
  popularity instead of all-time counts (one-hit wonders from an hour
  ago cannot outvote today's hot terminals).

Callers hold the store's sketch lock around every call.
"""

from __future__ import annotations

import struct

_OPS = struct.Struct("<q")

#: Independent rows; each consumes 4 digest bytes (16-byte digests).
ROWS = 4


def region_size(width: int) -> int:
    """Bytes of shared memory one sketch occupies."""
    return _OPS.size + ROWS * width * 2


class FrequencySketch:
    """Count-min over a shared buffer; see module docstring."""

    def __init__(self, buf, width: int) -> None:
        self.width = width
        self._ops_buf = buf
        self._counters = buf[_OPS.size : region_size(width)].cast("H")
        self._sample = 16 * width

    def release(self) -> None:
        """Drop the memoryview cast (required before block close)."""
        self._counters.release()

    def _rows(self, digest: bytes):
        for row in range(ROWS):
            chunk = digest[4 * row : 4 * row + 4]
            yield row * self.width + int.from_bytes(chunk, "big") % self.width

    def bump(self, digest: bytes) -> None:
        """Count one occurrence; age all counters on sample boundaries."""
        counters = self._counters
        for slot in self._rows(digest):
            value = counters[slot]
            if value < 0xFFFF:
                counters[slot] = value + 1
        ops = _OPS.unpack_from(self._ops_buf, 0)[0] + 1
        if ops >= self._sample:
            for slot in range(ROWS * self.width):
                counters[slot] >>= 1
            ops = 0
        _OPS.pack_into(self._ops_buf, 0, ops)

    def estimate(self, digest: bytes) -> int:
        """Frequency upper bound for one digest (min over rows)."""
        counters = self._counters
        return min(counters[slot] for slot in self._rows(digest))
