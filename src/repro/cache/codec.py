"""Payload codecs for stored closure entries.

A store payload is a flat, self-contained byte string — no pickle, no
object graph — so a worker can decode it without trusting anything but
the frozen view it already attached:

- **Closure entries** (id-keyed ``(dist, prev)`` of a terminal
  Dijkstra): node ids are mapped through the frozen view's dense index
  (8 bytes instead of a variable-length string), distances are raw
  float64, predecessor links are index pairs.
- **Base entries** (index-keyed bounded unit runs for λ-aware partial
  reuse): same layout plus the completeness bound (NaN encodes "whole
  component settled").

Both codecs preserve **dict iteration order** — entries are written in
the source dict's order (the Dijkstra settle order) and decoded by
inserting in that same order, so a decoded dict iterates exactly like
the original. Downstream code derives bounds from ``next(reversed(
dist))`` and replays tie-breaks from iteration order; order-preserving
codecs are what keep store-on runs bit-identical to store-off runs.
"""

from __future__ import annotations

import math
import struct
from array import array

#: Closure header: (n_dist: int64, n_prev: int64).
_CLOSURE_HEADER = struct.Struct("<qq")
#: Base header: (n_dist: int64, n_prev: int64, bound: float64).
_BASE_HEADER = struct.Struct("<qqd")


def encode_closure(frozen, dist, prev) -> bytes | None:
    """Pack an id-keyed closure entry; None when it is not packable.

    Only plain-dict results of a fresh ``dijkstra_frozen`` qualify:
    derived (overlay-patched) closures answer lazy off-target lookups
    through live base-run state that cannot travel, and ids outside the
    frozen view (impossible for a settle set, but checked) would not
    round-trip.
    """
    if type(dist) is not dict or type(prev) is not dict:
        return None
    index_of = frozen.index_of
    try:
        dist_idx = array("q", (index_of(node) for node in dist))
        prev_idx = array("q")
        for node, parent in prev.items():
            prev_idx.append(index_of(node))
            prev_idx.append(index_of(parent))
    except KeyError:  # pragma: no cover - settled set is always known
        return None
    values = array("d", dist.values())
    return b"".join(
        (
            _CLOSURE_HEADER.pack(len(dist), len(prev)),
            dist_idx.tobytes(),
            values.tobytes(),
            prev_idx.tobytes(),
        )
    )


def decode_closure(frozen, payload: bytes):
    """Unpack :func:`encode_closure` against the same frozen view."""
    n_dist, n_prev = _CLOSURE_HEADER.unpack_from(payload, 0)
    offset = _CLOSURE_HEADER.size
    dist_idx = array("q")
    dist_idx.frombytes(payload[offset : offset + n_dist * 8])
    offset += n_dist * 8
    values = array("d")
    values.frombytes(payload[offset : offset + n_dist * 8])
    offset += n_dist * 8
    prev_idx = array("q")
    prev_idx.frombytes(payload[offset : offset + n_prev * 16])
    ids = frozen.ids
    dist = {
        ids[dist_idx[i]]: values[i] for i in range(n_dist)
    }
    prev = {
        ids[prev_idx[2 * i]]: ids[prev_idx[2 * i + 1]]
        for i in range(n_prev)
    }
    return dist, prev


def encode_base(dist, prev, bound) -> bytes | None:
    """Pack an index-keyed base entry ``(dist, prev, bound)``."""
    if type(dist) is not dict or type(prev) is not dict:
        return None
    header = _BASE_HEADER.pack(
        len(dist), len(prev), math.nan if bound is None else float(bound)
    )
    dist_idx = array("q", dist.keys())
    values = array("d", dist.values())
    prev_pairs = array("q")
    for node, parent in prev.items():
        prev_pairs.append(node)
        prev_pairs.append(parent)
    return b"".join(
        (header, dist_idx.tobytes(), values.tobytes(), prev_pairs.tobytes())
    )


def decode_base(payload: bytes):
    """Unpack :func:`encode_base` → ``(dist, prev, bound)``."""
    n_dist, n_prev, bound = _BASE_HEADER.unpack_from(payload, 0)
    offset = _BASE_HEADER.size
    dist_idx = array("q")
    dist_idx.frombytes(payload[offset : offset + n_dist * 8])
    offset += n_dist * 8
    values = array("d")
    values.frombytes(payload[offset : offset + n_dist * 8])
    offset += n_dist * 8
    prev_pairs = array("q")
    prev_pairs.frombytes(payload[offset : offset + n_prev * 16])
    dist = {dist_idx[i]: values[i] for i in range(n_dist)}
    prev = {
        prev_pairs[2 * i]: prev_pairs[2 * i + 1] for i in range(n_prev)
    }
    return dist, prev, (None if math.isnan(bound) else bound)
