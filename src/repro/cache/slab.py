"""In-buffer slab allocator for the shared closure store.

The store's payload heap is one shared-memory block mapped by every
worker; its allocator state therefore has to live *inside* the block —
a free list threaded through the free chunks themselves, exactly like a
classic boundary-tag heap:

- a 16-byte header at offset 0 holds the free-list head offset and the
  live byte count;
- each free chunk starts with ``(next_offset, size)`` — 16 bytes, which
  is also the allocation granularity;
- allocation is first-fit with splitting, freeing re-inserts in address
  order and coalesces with both neighbors, so churn cannot shatter the
  heap permanently.

The allocator itself is lock-free *on purpose*: every caller holds the
store's single allocator lock around each call (allocation is a tiny
fraction of a store operation — the payload memcpy dominates), which
keeps the free-list mutation code trivially correct.
"""

from __future__ import annotations

import struct

#: Header: (free_head: int64, bytes_used: int64). -1 = empty free list.
_HEADER = struct.Struct("<qq")
#: Free-chunk prefix: (next_offset: int64, size: int64). -1 = list end.
_CHUNK = struct.Struct("<qq")

#: Allocation granularity; also the minimum chunk (a free chunk must
#: hold its own prefix).
ALIGN = 16


def aligned(nbytes: int) -> int:
    """Size class of an allocation: rounded up to the granularity.

    Deterministic, so ``free(offset, aligned(payload_len))`` releases
    exactly the chunk ``alloc`` carved — callers only record payload
    lengths.
    """
    return max(ALIGN, (nbytes + ALIGN - 1) // ALIGN * ALIGN)


class SlabAllocator:
    """First-fit allocator over one shared buffer.

    ``buf`` is the writable memoryview of the slab block; the data
    region spans ``[ALIGN, ALIGN + capacity)`` (the first 16 bytes are
    the header). Construct with ``fresh=True`` exactly once (the block
    creator); attachers construct with ``fresh=False`` and inherit the
    live free list.
    """

    def __init__(self, buf, capacity: int, *, fresh: bool) -> None:
        if capacity % ALIGN:
            raise ValueError(f"capacity must be a multiple of {ALIGN}")
        self._buf = buf
        self.capacity = capacity
        if fresh:
            _CHUNK.pack_into(buf, ALIGN, -1, capacity)
            _HEADER.pack_into(buf, 0, ALIGN, 0)

    @property
    def bytes_used(self) -> int:
        """Live payload bytes (size-class granularity), header-tracked."""
        return _HEADER.unpack_from(self._buf, 0)[1]

    def alloc(self, nbytes: int) -> int | None:
        """Carve a chunk for ``nbytes`` payload; None when it won't fit.

        Returns the chunk's buffer offset. Caller holds the allocator
        lock.
        """
        size = aligned(nbytes)
        head, used = _HEADER.unpack_from(self._buf, 0)
        prev = -1
        offset = head
        while offset != -1:
            nxt, chunk = _CHUNK.unpack_from(self._buf, offset)
            if chunk >= size:
                remainder = chunk - size
                if remainder >= ALIGN:
                    tail = offset + size
                    _CHUNK.pack_into(self._buf, tail, nxt, remainder)
                    follow = tail
                else:
                    size = chunk  # absorb a sliver too small to track
                    follow = nxt
                if prev == -1:
                    head = follow
                else:
                    prev_next, prev_size = _CHUNK.unpack_from(
                        self._buf, prev
                    )
                    _CHUNK.pack_into(self._buf, prev, follow, prev_size)
                _HEADER.pack_into(self._buf, 0, head, used + size)
                return offset
            prev = offset
            offset = nxt
        return None

    def free(self, offset: int, nbytes: int) -> None:
        """Return the chunk at ``offset`` (payload length ``nbytes``).

        Re-inserts in address order and coalesces with adjacent free
        chunks. Caller holds the allocator lock.
        """
        size = aligned(nbytes)
        head, used = _HEADER.unpack_from(self._buf, 0)
        prev = -1
        nxt = head
        while nxt != -1 and nxt < offset:
            prev = nxt
            nxt = _CHUNK.unpack_from(self._buf, nxt)[0]
        # Coalesce forward: [offset, offset+size) meets the next chunk.
        if nxt != -1 and offset + size == nxt:
            nxt_next, nxt_size = _CHUNK.unpack_from(self._buf, nxt)
            size += nxt_size
            nxt = nxt_next
        if prev == -1:
            _CHUNK.pack_into(self._buf, offset, nxt, size)
            head = offset
        else:
            prev_next, prev_size = _CHUNK.unpack_from(self._buf, prev)
            if prev + prev_size == offset:
                # Coalesce backward into the predecessor.
                _CHUNK.pack_into(self._buf, prev, nxt, prev_size + size)
            else:
                _CHUNK.pack_into(self._buf, offset, nxt, size)
                _CHUNK.pack_into(self._buf, prev, offset, prev_size)
        _HEADER.pack_into(
            self._buf, 0, head, used - aligned(nbytes)
        )

    def free_chunks(self) -> list[tuple[int, int]]:
        """The free list as ``(offset, size)`` pairs (tests/debugging)."""
        out = []
        offset = _HEADER.unpack_from(self._buf, 0)[0]
        while offset != -1:
            nxt, size = _CHUNK.unpack_from(self._buf, offset)
            out.append((offset, size))
            offset = nxt
        return out
