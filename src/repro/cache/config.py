"""Typed configuration for the cross-worker closure store.

:class:`ClosureStoreConfig` is the session's sixth config (after
Engine / Cache / Parallel / Scheduler / Resilience): *whether and how*
closure results are shared across workers. Like the other session
configs it is a frozen dataclass that validates eagerly, so a typo
fails at session construction rather than mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Admission policies: "tinylfu" gates slab evictions on the count-min
#: popularity estimate (a newcomer must out-poll the victim it would
#: displace); "admit-all" always evicts, approximating plain segmented
#: LRU.
ADMISSION_POLICIES = ("tinylfu", "admit-all")


@dataclass(frozen=True)
class ClosureStoreConfig:
    """Cross-worker closure-store knobs.

    Parameters
    ----------
    enabled:
        Off by default — the store only pays for itself when several
        process workers share popular terminals; serial/thread runs and
        uniform traffic should leave it off.
    capacity_bytes:
        Payload slab capacity. Entries are whole distance/predecessor
        arrays (~40 bytes per settled node), so the default 64 MiB
        holds on the order of a thousand 10k-node closures.
    admission:
        "tinylfu" (default) or "admit-all"; see
        :data:`ADMISSION_POLICIES`.
    directory_slots:
        Index-table capacity (entries), partitioned evenly across the
        lock stripes; bounds how many closures the store can hold
        regardless of slab space.
    stripes:
        Number of directory lock stripes — each guards its own slot
        partition, so readers/writers on different stripes never
        contend.
    probe_limit:
        Bounded linear-probe window inside one stripe's partition; a
        full window evicts in place rather than scanning further.
    sketch_width:
        Counters per count-min row (4 rows); the popularity estimate
        behind TinyLFU admission.
    """

    enabled: bool = False
    capacity_bytes: int = 64 * 1024 * 1024
    admission: str = "tinylfu"
    directory_slots: int = 2048
    stripes: int = 16
    probe_limit: int = 32
    sketch_width: int = 2048

    def __post_init__(self) -> None:
        if self.capacity_bytes < 4096:
            raise ValueError("capacity_bytes must be at least 4096")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if self.stripes < 1:
            raise ValueError("stripes must be positive")
        if self.directory_slots < self.stripes:
            raise ValueError("directory_slots must be >= stripes")
        if self.probe_limit < 1:
            raise ValueError("probe_limit must be positive")
        if self.sketch_width < 16:
            raise ValueError("sketch_width must be at least 16")

    @property
    def slots_per_stripe(self) -> int:
        """Directory slots in each stripe's partition (floor division —
        a remainder is simply unused capacity)."""
        return self.directory_slots // self.stripes
