"""Cross-worker shared closure store (:mod:`repro.cache`).

Per-worker closure caches never share: on power-law traffic — a few
popular terminals appearing in many tasks — every process-pool worker
re-runs the same terminal Dijkstras, so adding workers multiplies
redundant shortest-path work instead of amortizing it. This package
promotes the closure cache to a cross-worker tier:

- :mod:`repro.cache.slab` — a first-fit, coalescing slab allocator
  whose free list lives *inside* the shared-memory buffer it manages,
  so every attached process sees the same heap.
- :mod:`repro.cache.sketch` — a count-min frequency sketch with
  periodic halving, the TinyLFU popularity estimate behind admission.
- :mod:`repro.cache.store` — :class:`SharedClosureStore`: named
  shared-memory blocks (directory + slab + sketch) guarded by a
  ``multiprocessing.Lock``-striped directory, with canonical
  (hash-seed-independent) store keys and the payload codecs for
  distance/predecessor arrays.
- :mod:`repro.cache.readthrough` — :class:`StoreBackedClosureCache`,
  the :class:`~repro.core.batch.TerminalClosureCache` subclass that
  reads through to the store on local misses and publishes fresh
  Dijkstra runs back, preserving bit-identical outputs.

Sessions opt in through :class:`ClosureStoreConfig` (the sixth session
config); the store is created at export time by the parent and attached
zero-copy by workers, exactly like the shared CSR graph plane.
"""

from repro.cache.config import ClosureStoreConfig
from repro.cache.readthrough import StoreBackedClosureCache
from repro.cache.store import (
    SharedClosureStore,
    StoreHandle,
    base_store_key,
    closure_store_key,
    store_digest,
)

__all__ = [
    "ClosureStoreConfig",
    "SharedClosureStore",
    "StoreBackedClosureCache",
    "StoreHandle",
    "base_store_key",
    "closure_store_key",
    "store_digest",
]
