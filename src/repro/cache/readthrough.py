"""Read-through integration: local LRU → shared store → compute.

:class:`StoreBackedClosureCache` is a
:class:`~repro.core.batch.TerminalClosureCache` whose tier hooks are
live: a local miss consults the shared store before computing (miss →
compute locally → publish), for both the per-signature closure entries
and the λ-independent base-cost runs partial reuse is built from. The
local LRU stays in front — a store hit is decoded once and then served
from process memory like any other entry.

Bit-identity is preserved end to end: only fresh, plain-dict Dijkstra
results are published (derived overlay closures answer lazy lookups
through live state and never travel), the codecs preserve settle
order, and a fetched entry passes the *same* covering checks a local
entry must — so the summarizer sees exactly the ``(dist, prev)`` a
cold run would have produced.

Failure posture: the store is an accelerator. Undecodable payloads,
opaque signatures, stranded locks, or a store torn down mid-flight all
degrade to a local compute, never to an error.
"""

from __future__ import annotations

import time

from repro.cache.codec import (
    decode_base,
    decode_closure,
    encode_base,
    encode_closure,
)
from repro.cache.store import (
    SharedClosureStore,
    base_store_key,
    closure_store_key,
    store_digest,
)
from repro.core.batch import TerminalClosureCache
from repro.obs import trace as obs_trace


class StoreBackedClosureCache(TerminalClosureCache):
    """Terminal-closure cache with a shared second tier.

    ``store`` is an attached (or owning) :class:`SharedClosureStore`;
    everything else behaves exactly like the superclass. The
    ``store_hits`` / ``store_misses`` counters ride the same
    ``_STAT_KEYS`` delta plumbing as the local counters, so worker
    deltas surface in :class:`~repro.core.batch.BatchReport`.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        partial_reuse: bool = False,
        *,
        store: SharedClosureStore,
    ) -> None:
        super().__init__(maxsize, partial_reuse=partial_reuse)
        self._store = store

    def _store_get(self, digest):
        """One store lookup; a store closed under us is a miss."""
        if not obs_trace.ambient_enabled():
            try:
                return self._store.get(digest)
            except (ValueError, OSError):
                return None
        start = time.perf_counter()
        try:
            payload = self._store.get(digest)
        except (ValueError, OSError):
            payload = None
        obs_trace.record_event(
            "store.fetch",
            time.perf_counter() - start,
            outcome="hit" if payload is not None else "miss",
        )
        return payload

    def _store_put(self, digest, payload, ndist) -> None:
        if not obs_trace.ambient_enabled():
            try:
                self._store.put(digest, payload, ndist)
            except (ValueError, OSError):
                pass
            return
        start = time.perf_counter()
        try:
            stored = self._store.put(digest, payload, ndist)
        except (ValueError, OSError):
            stored = False
        obs_trace.record_event(
            "store.publish",
            time.perf_counter() - start,
            stored=bool(stored),
            bytes=len(payload),
        )

    # -- closure entries ----------------------------------------------
    def _tier_fetch(self, frozen, source, signature, rest):
        key = closure_store_key(frozen.version, source, signature)
        if key is None:
            return None
        payload = self._store_get(store_digest(key))
        if payload is None:
            with self._lock:
                self.store_misses += 1
            return None
        try:
            dist, prev = decode_closure(frozen, payload)
        except Exception:
            with self._lock:
                self.store_misses += 1
            return None
        if not rest <= dist.keys():
            # A sibling's shallower run: not reusable for these targets.
            with self._lock:
                self.store_misses += 1
            return None
        with self._lock:
            self.store_hits += 1
        return dist, prev

    def _tier_publish(self, frozen, source, signature, dist, prev) -> None:
        key = closure_store_key(frozen.version, source, signature)
        if key is None:
            return
        payload = encode_closure(frozen, dist, prev)
        if payload is None:
            return
        self._store_put(store_digest(key), payload, len(dist))

    # -- base-cost entries --------------------------------------------
    def _tier_fetch_base(self, frozen, index, radius, required):
        digest = store_digest(base_store_key(frozen.version, index))
        payload = self._store_get(digest)
        if payload is None:
            with self._lock:
                self.store_misses += 1
            return None
        try:
            entry = decode_base(payload)
        except Exception:
            with self._lock:
                self.store_misses += 1
            return None
        if not self._base_entry_covers(entry, radius, required):
            with self._lock:
                self.store_misses += 1
            return None
        with self._lock:
            self.store_hits += 1
        return entry

    def _tier_publish_base(self, frozen, index, dist, prev, bound) -> None:
        payload = encode_base(dist, prev, bound)
        if payload is None:
            return
        self._store_put(
            store_digest(base_store_key(frozen.version, index)),
            payload,
            len(dist),
        )
