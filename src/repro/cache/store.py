"""The cross-worker shared closure store.

One :class:`SharedClosureStore` is three named shared-memory blocks —
directory, payload slab, frequency sketch — plus a handful of
``multiprocessing`` locks, created once by the session parent and
attached (zero-copy, the way :func:`repro.graph.shared.attach_frozen`
maps the CSR plane) by every pool worker:

- **Directory**: an open-addressed table of 64-byte entry records,
  partitioned into ``stripes`` contiguous regions, each guarded by its
  own lock — operations on different stripes never contend, and a key's
  stripe is derived from its digest so every probe for it stays inside
  one region. Records carry the key digest, the payload's slab
  location, a recency tick (``time.monotonic_ns`` — system-wide on
  Linux, so cross-process recency needs no shared counter) and an LRU
  segment bit (probation → protected on re-access).
- **Slab**: payload bytes managed by :class:`repro.cache.slab
  .SlabAllocator` under a single allocator lock.
- **Sketch**: the :class:`repro.cache.sketch.FrequencySketch` behind
  TinyLFU admission, under its own lock.

Keys are *canonical*: an explicit byte encoding of ``(kind,
graph_version, terminal, cost-signature)`` hashed with BLAKE2b —
independent of ``PYTHONHASHSEED``, so every spawn worker derives the
same digest for the same closure. Signatures containing opaque
sentinels (anonymous cost surfaces) are unencodable and bypass the
store entirely.

Concurrency rules (the invariants that keep this deadlock-free):

- lock order is strictly *stripe → allocator*; no path ever holds two
  stripe locks, and the sketch lock is only ever held alone;
- readers copy payload bytes out **under the stripe lock** — eviction
  needs that same lock to retire the entry, so a reader can never
  observe a freed (or recycled) chunk: attach-after-eviction is safe by
  construction;
- every acquire uses a timeout: if a lock is stranded (a worker killed
  mid-operation by the resilience layer's deadline enforcement), store
  operations degrade to misses/no-ops instead of deadlocking — the
  cache tier is an accelerator, never a liveness dependency;
- eviction happens *before* the insert takes its stripe lock, one
  victim stripe at a time, so capacity pressure cannot order-invert.

Crash safety: the creating process registers the blocks with the
``multiprocessing`` resource tracker (a plain tracked create), so even
a ``kill -9`` of the owner leaves no ``/dev/shm`` residue — the tracker
unlinks on its behalf, the same guarantee the shared graph plane
relies on. Workers attach without ownership and release at exit.
"""

from __future__ import annotations

import atexit
import hashlib
import struct
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from repro.cache.config import ClosureStoreConfig
from repro.cache.sketch import FrequencySketch, region_size
from repro.cache.slab import ALIGN, SlabAllocator
from repro.obs.trace import record_event

#: Entry record: (state: u8, segment: u8, digest: 16s, offset: i64,
#: length: i64, tick: i64, ndist: i64), padded to 64 bytes.
_ENTRY = struct.Struct("<BB6x16sqqqq8x")
ENTRY_SIZE = _ENTRY.size  # 64

_EMPTY, _READY, _TOMBSTONE = 0, 1, 2
_PROBATION, _PROTECTED = 0, 1

#: Per-stripe counters appended after the entry records:
#: (hits, misses, publishes, evictions, rejections) int64 each.
_COUNTER_FIELDS = ("hits", "misses", "publishes", "evictions", "rejections")
_COUNTERS = struct.Struct("<" + "q" * len(_COUNTER_FIELDS))

#: Block-name suffixes: directory, slab, frequency sketch.
_SUFFIXES = ("d", "s", "f")


# ----------------------------------------------------------------------
# Canonical store keys (hash-seed independent)
# ----------------------------------------------------------------------
def _encode_token(value, out: list) -> bool:
    """Append one signature token's canonical bytes; False = opaque.

    Covers the types real cost signatures are built from (ints, floats,
    strings, nested tuples). Anything else — notably the ``object()``
    sentinels anonymous surfaces embed — is unencodable, and the caller
    bypasses the store for that surface.
    """
    if type(value) is bool or value is None:
        out.append(b"b" + repr(value).encode("ascii"))
        return True
    if type(value) is int:
        out.append(b"i%d" % value)
        return True
    if type(value) is float:
        out.append(b"f" + struct.pack("<d", value))
        return True
    if type(value) is str:
        raw = value.encode("utf-8")
        out.append(b"s%d:" % len(raw) + raw)
        return True
    if type(value) is tuple:
        out.append(b"(")
        for item in value:
            if not _encode_token(item, out):
                return False
        out.append(b")")
        return True
    return False


def closure_store_key(version: int, source: str, signature) -> bytes | None:
    """Canonical key of one ``(graph_version, terminal, weighting)``
    closure entry; None when the signature is opaque."""
    out: list = [b"C", b"v%d" % version]
    if not _encode_token(source, out):
        return None
    if not _encode_token(signature, out):
        return None
    return b"".join(out)


def base_store_key(version: int, index: int) -> bytes:
    """Canonical key of one base-cost (unit) run entry."""
    return b"Bv%d:i%d" % (version, index)


def store_digest(key: bytes) -> bytes:
    """16-byte BLAKE2b digest — the directory's fixed-width key."""
    return hashlib.blake2b(key, digest_size=16).digest()


# ----------------------------------------------------------------------
# Worker-side attachment registry (mirrors repro.graph.shared)
# ----------------------------------------------------------------------
_ATTACHED: list = []


def _release_attachments() -> None:
    while _ATTACHED:
        store = _ATTACHED.pop()
        try:
            store.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


atexit.register(_release_attachments)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach without adopting tracker ownership (see graph.shared)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        return shared_memory.SharedMemory(name=name)


@dataclass
class StoreHandle:
    """Picklable-by-inheritance address of one shared closure store.

    Carries the block token, the geometry needed to map the blocks, and
    the actual ``multiprocessing`` lock objects. Locks only pickle
    through process *inheritance* (``Process`` args / pool initargs at
    spawn time) — never send a handle through a queue.
    """

    token: str
    capacity_bytes: int
    directory_slots: int
    stripes: int
    probe_limit: int
    sketch_width: int
    admission: str
    alloc_lock: object = field(repr=False)
    sketch_lock: object = field(repr=False)
    stripe_locks: tuple = field(repr=False)

    @property
    def slots_per_stripe(self) -> int:
        return self.directory_slots // self.stripes

    def block_name(self, suffix: str) -> str:
        return f"{self.token}{suffix}"

    def block_names(self) -> list[str]:
        return [self.block_name(suffix) for suffix in _SUFFIXES]


class SharedClosureStore:
    """Parent- or worker-side view of one shared closure store.

    Construct via :meth:`create` (the owning parent — creates, zeroes
    and formats the blocks) or :meth:`attach` (workers — maps existing
    blocks). All public operations are safe to call from any attached
    process concurrently.
    """

    #: Stranded-lock patience: a lock held longer than this (a worker
    #: killed mid-operation) turns the operation into a miss/no-op.
    LOCK_TIMEOUT = 2.0

    def __init__(
        self, handle: StoreHandle, blocks: dict, *, owner: bool
    ) -> None:
        self.handle = handle
        self._blocks = blocks
        self._owner = owner
        self._closed = False
        dir_buf = blocks["d"].buf
        self._entries = dir_buf
        self._counter_base = handle.directory_slots * ENTRY_SIZE
        slab_buf = blocks["s"].buf
        self._slab_buf = slab_buf
        self._slab = SlabAllocator(
            slab_buf, handle.capacity_bytes, fresh=owner
        )
        self._sketch = FrequencySketch(
            blocks["f"].buf, handle.sketch_width
        )
        #: Rotating victim-stripe cursor (process-local; fairness only).
        self._evict_cursor = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, config: ClosureStoreConfig, context
    ) -> "SharedClosureStore":
        """Create the blocks and locks; the caller owns the result."""
        capacity = (
            (config.capacity_bytes + ALIGN - 1) // ALIGN * ALIGN
        )
        handle = StoreHandle(
            token=f"rxc{uuid.uuid4().hex[:12]}",
            capacity_bytes=capacity,
            directory_slots=config.directory_slots,
            stripes=config.stripes,
            probe_limit=config.probe_limit,
            sketch_width=config.sketch_width,
            admission=config.admission,
            alloc_lock=context.Lock(),
            sketch_lock=context.Lock(),
            stripe_locks=tuple(
                context.Lock() for _ in range(config.stripes)
            ),
        )
        sizes = {
            "d": handle.directory_slots * ENTRY_SIZE
            + handle.stripes * _COUNTERS.size,
            "s": ALIGN + capacity,
            "f": region_size(handle.sketch_width),
        }
        blocks: dict = {}
        try:
            for suffix in _SUFFIXES:
                block = shared_memory.SharedMemory(
                    name=handle.block_name(suffix),
                    create=True,
                    size=sizes[suffix],
                )
                blocks[suffix] = block
                block.buf[:] = bytes(sizes[suffix])
        except BaseException:
            for block in blocks.values():
                block.close()
                block.unlink()
            raise
        return cls(handle, blocks, owner=True)

    @classmethod
    def attach(cls, handle: StoreHandle) -> "SharedClosureStore":
        """Map an existing store; released automatically at exit."""
        blocks: dict = {}
        try:
            for suffix in _SUFFIXES:
                blocks[suffix] = _attach_block(handle.block_name(suffix))
        except BaseException:
            for block in blocks.values():
                block.close()
            raise
        store = cls(handle, blocks, owner=False)
        _ATTACHED.append(store)
        return store

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._sketch.release()
        for block in self._blocks.values():
            try:
                block.close()
            except BufferError:  # pragma: no cover - live export view
                pass

    def unlink(self) -> None:
        """Remove the blocks from the system (owner; idempotent)."""
        for block in self._blocks.values():
            try:
                block.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedClosureStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        if self._owner:
            self.unlink()

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def _slot_offset(self, slot: int) -> int:
        return slot * ENTRY_SIZE

    def _read(self, slot: int):
        return _ENTRY.unpack_from(self._entries, self._slot_offset(slot))

    def _write(
        self, slot, state, segment, digest, offset, length, tick, ndist
    ) -> None:
        _ENTRY.pack_into(
            self._entries,
            self._slot_offset(slot),
            state,
            segment,
            digest,
            offset,
            length,
            tick,
            ndist,
        )

    def _stripe_of(self, digest: bytes) -> int:
        return digest[0] % self.handle.stripes

    def _probe_slots(self, digest: bytes):
        """Probe sequence for a digest: bounded, inside its stripe."""
        per = self.handle.slots_per_stripe
        stripe = self._stripe_of(digest)
        start = int.from_bytes(digest[1:9], "big") % per
        base = stripe * per
        for step in range(min(per, self.handle.probe_limit)):
            yield base + (start + step) % per

    def _bump_counter(self, stripe: int, name: str, delta: int = 1) -> None:
        base = self._counter_base + stripe * _COUNTERS.size
        values = list(_COUNTERS.unpack_from(self._entries, base))
        values[_COUNTER_FIELDS.index(name)] += delta
        _COUNTERS.pack_into(self._entries, base, *values)

    def _acquire(self, lock) -> bool:
        return lock.acquire(timeout=self.LOCK_TIMEOUT)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, digest: bytes) -> bytes | None:
        """Look one digest up; returns a payload *copy* or None.

        The copy happens under the stripe lock — eviction takes the
        same lock, so the bytes handed back are always the entry's,
        never a recycled chunk's.
        """
        if self._closed:
            return None
        stripe = self._stripe_of(digest)
        lock = self.handle.stripe_locks[stripe]
        if not self._acquire(lock):
            return None
        try:
            payload = None
            for slot in self._probe_slots(digest):
                state, segment, sdigest, offset, length, _t, nd = (
                    self._read(slot)
                )
                if state == _EMPTY:
                    break
                if state == _READY and sdigest == digest:
                    payload = bytes(
                        self._slab_buf[offset : offset + length]
                    )
                    # Re-access promotes probation → protected and
                    # refreshes recency.
                    self._write(
                        slot,
                        _READY,
                        _PROTECTED if segment == _PROBATION else segment,
                        sdigest,
                        offset,
                        length,
                        time.monotonic_ns(),
                        nd,
                    )
                    break
            self._bump_counter(
                stripe, "hits" if payload is not None else "misses"
            )
        finally:
            lock.release()
        if self._acquire(self.handle.sketch_lock):
            try:
                self._sketch.bump(digest)
            finally:
                self.handle.sketch_lock.release()
        return payload

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _pick_victim(self, stripe: int, exclude: bytes):
        """Cheapest READY entry of one stripe (caller holds its lock).

        Probation entries are always cheaper than protected ones;
        within a segment the stalest tick loses — the classic segmented
        LRU order.
        """
        per = self.handle.slots_per_stripe
        best = None
        best_rank = None
        for slot in range(stripe * per, (stripe + 1) * per):
            state, segment, digest, offset, length, tick, _nd = (
                self._read(slot)
            )
            if state != _READY or digest == exclude:
                continue
            rank = (segment, tick)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = (slot, digest, offset, length, segment)
        return best

    def _admit_over(self, candidate: bytes, victim: bytes) -> bool:
        """TinyLFU gate: does the candidate out-poll the victim?

        Ties go to the incumbent — a newcomer must be strictly more
        popular to displace resident data ("one-off terminals don't
        evict hot ones"). ``admit-all`` always admits.
        """
        if self.handle.admission != "tinylfu":
            return True
        if not self._acquire(self.handle.sketch_lock):
            return False
        try:
            return self._sketch.estimate(candidate) > self._sketch.estimate(
                victim
            )
        finally:
            self.handle.sketch_lock.release()

    def _evict_one(self, candidate: bytes) -> bool:
        """Retire one victim to make room for ``candidate``.

        Walks the stripes round-robin; the first stripe that yields a
        victim decides: if the TinyLFU gate sides with the victim the
        candidate is rejected (returns False — the caller gives up), if
        it sides with the candidate the victim is tombstoned and its
        chunk freed. Returns True when space was reclaimed.
        """
        stripes = self.handle.stripes
        for turn in range(stripes):
            stripe = (self._evict_cursor + turn) % stripes
            lock = self.handle.stripe_locks[stripe]
            if not self._acquire(lock):
                continue
            try:
                victim = self._pick_victim(stripe, candidate)
                if victim is None:
                    continue
                slot, digest, offset, length, _segment = victim
                if not self._admit_over(candidate, digest):
                    self._bump_counter(stripe, "rejections")
                    self._evict_cursor = stripe
                    return False
                self._write(
                    slot, _TOMBSTONE, 0, b"\x00" * 16, 0, 0, 0, 0
                )
                self._bump_counter(stripe, "evictions")
                record_event("store.evict", 0.0, bytes=length)
                if self._acquire(self.handle.alloc_lock):
                    try:
                        self._slab.free(offset, length)
                    finally:
                        self.handle.alloc_lock.release()
                self._evict_cursor = (stripe + 1) % stripes
                return True
            finally:
                lock.release()
        return False

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _alloc(self, nbytes: int) -> int | None:
        if not self._acquire(self.handle.alloc_lock):
            return None
        try:
            return self._slab.alloc(nbytes)
        finally:
            self.handle.alloc_lock.release()

    def _free(self, offset: int, nbytes: int) -> None:
        if not self._acquire(self.handle.alloc_lock):
            return
        try:
            self._slab.free(offset, nbytes)
        finally:
            self.handle.alloc_lock.release()

    def put(self, digest: bytes, payload: bytes, ndist: int) -> bool:
        """Publish one payload under ``digest``; True when stored.

        Read-through semantics make publishes racy by design (two
        workers may compute the same closure concurrently); the winner
        is whichever lands last *with the larger settled set* — an
        existing entry is only replaced by a strictly more-settled run,
        mirroring the local cache's replace-if-larger rule.
        """
        size = len(payload)
        if self._closed or size == 0 or size > self.handle.capacity_bytes // 2:
            return False
        stripe = self._stripe_of(digest)
        lock = self.handle.stripe_locks[stripe]
        # Cheap duplicate probe before paying for allocation.
        if not self._acquire(lock):
            return False
        try:
            for slot in self._probe_slots(digest):
                state, _seg, sdigest, _o, _l, _t, nd = self._read(slot)
                if state == _EMPTY:
                    break
                if state == _READY and sdigest == digest and nd >= ndist:
                    return False
        finally:
            lock.release()

        offset = self._alloc(size)
        while offset is None:
            if not self._evict_one(digest):
                return False
            offset = self._alloc(size)
        # The chunk is private until the directory insert below, so the
        # payload copy needs no lock.
        self._slab_buf[offset : offset + size] = payload

        if not self._acquire(lock):
            self._free(offset, size)
            return False
        try:
            target = None
            for slot in self._probe_slots(digest):
                state, segment, sdigest, soff, slen, tick, nd = (
                    self._read(slot)
                )
                if state == _READY and sdigest == digest:
                    if nd >= ndist:  # raced: a better run landed first
                        self._free(offset, size)
                        return False
                    # Replace in place; free the superseded chunk.
                    self._write(
                        slot,
                        _READY,
                        segment,
                        digest,
                        offset,
                        size,
                        time.monotonic_ns(),
                        ndist,
                    )
                    self._free(soff, slen)
                    self._bump_counter(stripe, "publishes")
                    return True
                if state != _READY and target is None:
                    target = slot
                if state == _EMPTY:
                    break
            if target is None:
                # Probe window full of live entries: displace its
                # segmented-LRU victim (TinyLFU-gated) in place.
                best = None
                best_rank = None
                for slot in self._probe_slots(digest):
                    state, segment, sdigest, soff, slen, tick, nd = (
                        self._read(slot)
                    )
                    rank = (segment, tick)
                    if best_rank is None or rank < best_rank:
                        best_rank = rank
                        best = (slot, sdigest, soff, slen)
                if best is None or not self._admit_over(digest, best[1]):
                    self._bump_counter(stripe, "rejections")
                    self._free(offset, size)
                    return False
                target = best[0]
                self._free(best[2], best[3])
                self._bump_counter(stripe, "evictions")
                record_event("store.evict", 0.0, bytes=best[3])
            self._write(
                target,
                _READY,
                _PROBATION,
                digest,
                offset,
                size,
                time.monotonic_ns(),
                ndist,
            )
            self._bump_counter(stripe, "publishes")
            return True
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Global counters (summed over stripes) + occupancy."""
        totals = dict.fromkeys(_COUNTER_FIELDS, 0)
        for stripe in range(self.handle.stripes):
            base = self._counter_base + stripe * _COUNTERS.size
            for name, value in zip(
                _COUNTER_FIELDS,
                _COUNTERS.unpack_from(self._entries, base),
            ):
                totals[name] += value
        entries = 0
        for slot in range(self.handle.directory_slots):
            if self._entries[self._slot_offset(slot)] == _READY:
                entries += 1
        totals["entries"] = entries
        totals["bytes_used"] = self._slab.bytes_used
        totals["capacity_bytes"] = self.handle.capacity_bytes
        return totals
