"""Asyncio network front door over :class:`repro.api.ExplanationSession`.

:class:`ExplanationServer` turns the in-process session facade into a
TCP service: clients speak length-prefixed :mod:`repro.api.protocol`
envelopes (framing in :mod:`repro.serving.frames`) and get back the
same summaries — bit-identical, because the payload codec preserves
node/neighbor/relation iteration order — that a local
``ExplanationSession.run()`` would produce.

Architecture
------------
- **Multi-tenant named sessions.** The server hosts one or more named
  graphs (a bare graph becomes ``"default"``). Each name owns a
  :class:`_SessionHost`: a lazily created warm ``ExplanationSession``
  plus a dedicated single-thread executor. All blocking work for a
  graph — summarization, mutation, pool release — runs on that one
  thread, so concurrent clients are serialized *per graph* (sessions
  are not thread-safe) while distinct graphs proceed in parallel, and
  the asyncio loop never blocks.
- **Admission control.** Each host tracks in-flight + queued requests;
  past ``ServerConfig.max_pending`` the server answers immediately
  with a typed ``overloaded`` error frame instead of letting latency
  grow unbounded (the client raises
  :class:`~repro.serving.client.OverloadedError` and can back off).
  The counter mutates only on the event-loop thread, so no lock.
- **Streaming.** ``stream`` frames each ``BatchResult`` the moment the
  session's scheduler yields it: a pump on the session thread pushes
  results into an asyncio queue via ``call_soon_threadsafe`` and the
  handler writes one ``result`` frame per item, then an ``end`` frame
  with the count. Under work-stealing dispatch the first frame leaves
  the server while later tasks are still computing.
- **Mutation RPCs.** ``mutate`` applies graph edits on the session
  thread (serialized against in-flight runs). Edits bump the graph's
  version counter, which the session's ``_refresh`` notices on the
  next request — derived state (frozen view, shm export, pools,
  closure cache) is invalidated exactly as in-process callers get.
- **Durability.** With ``state_dir=``, each named graph owns a
  :class:`~repro.serving.journal.GraphJournal`: mutations are
  journaled (CRC'd write-ahead log, configurable fsync) before they
  are acknowledged, and startup recovers snapshot + journal tail to a
  bit-identical graph — an acked edit survives ``kill -9``.
- **Lifecycle.** ``request_stop()`` (signal-handler-safe) flips the
  server into draining: new work gets typed ``shutting-down`` frames
  with a ``retry_after_ms`` hint while in-flight dispatches finish and
  write their responses; ``stop(drain=True)`` waits them out under a
  deadline, flushes the journals, then tears down. The ``health`` op
  reports live/ready/draining plus per-graph depth, journal and
  resilience counters — and is never admission-gated.
- **Connection hygiene.** Optional idle-read timeouts, slow-reader
  write timeouts, and a max-connections bound (typed
  ``too-many-connections`` rejection) keep mute or slow peers from
  pinning server resources.
- **Idle reaper.** A background task watches each host's idle clock
  and calls ``release_pool()`` on sessions idle past
  ``pool_idle_ttl_seconds`` — returning worker processes and the
  shared-memory export to the OS while keeping the cheap serial state
  warm. This closes the ROADMAP carry-over that the elastic pool only
  shrank while a dispatch was draining: the TTL now shrinks it to
  zero between bursts.

Error taxonomy: transport violations (oversized frame) get an error
frame before the connection closes; protocol violations (bad JSON,
unknown version, malformed request) get a typed error frame and the
connection stays usable; task failures get ``task-error``. See
:data:`repro.api.protocol.ERROR_CODES`.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.api import protocol
from repro.api.config import CacheConfig, EngineConfig, ParallelConfig
from repro.api.registry import available_methods
from repro.api.session import ExplanationSession
from repro.cache import ClosureStoreConfig
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.obs.config import ObservabilityConfig
from repro.obs.registry import (
    exponential_buckets,
    get_registry,
    render_simple,
)
from repro.serving.config import (
    JournalConfig,
    ResilienceConfig,
    SchedulerConfig,
)
from repro.serving.faults import FaultPlan
from repro.serving.frames import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    TruncatedFrame,
    get_codec,
    read_frame_async,
    write_frame_async,
)

# The mutation-op table lives with the journal (which replays it);
# re-exported here because the wire validates against the same table.
from repro.serving.journal import MUTATION_OPS, GraphJournal  # noqa: F401

#: Admission-queue wait of workload requests (time between admission
#: and the moment the session thread actually starts the work) — the
#: front-door latency component invisible to per-task worker spans.
_QUEUE_WAIT_SECONDS = get_registry().histogram(
    "repro_queue_wait_seconds",
    "Wait between request admission and session-thread start (seconds)",
    buckets=exponential_buckets(start=0.0001, count=14),
)


@dataclass(frozen=True)
class ServerConfig:
    """Network front-door knobs (validated at construction).

    ``port=0`` binds an ephemeral port (read it back from
    ``server.port`` after start — what the tests and the self-hosting
    bench harness do). ``max_pending`` bounds each graph's in-flight +
    queued requests before admission control answers ``overloaded``;
    every ``overloaded`` frame carries ``retry_after_ms`` as a backoff
    floor hint for retry-aware clients.
    ``pool_idle_ttl_seconds=0`` disables the idle reaper.

    Connection hygiene (all default-off, 0 = disabled):
    ``idle_timeout_seconds`` hangs up on a connection that sends no
    frame for that long; ``write_timeout_seconds`` hangs up on a peer
    too slow to drain a response (a slow reader must not pin server
    memory); ``max_connections`` bounds concurrent connections — the
    excess connection gets one typed ``too-many-connections`` frame and
    is closed. ``drain_timeout_seconds`` is the default deadline for
    ``stop(drain=True)`` to wait out in-flight dispatches.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 32
    max_frame_bytes: int = MAX_FRAME_BYTES
    codec: str = "json"
    pool_idle_ttl_seconds: float = 0.0
    reap_interval_seconds: float = 1.0
    retry_after_ms: int = 100
    idle_timeout_seconds: float = 0.0
    write_timeout_seconds: float = 0.0
    max_connections: int = 0
    drain_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.retry_after_ms < 0:
            raise ValueError("retry_after_ms must be >= 0")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be >= 64")
        if self.pool_idle_ttl_seconds < 0:
            raise ValueError("pool_idle_ttl_seconds must be >= 0")
        if self.reap_interval_seconds <= 0:
            raise ValueError("reap_interval_seconds must be > 0")
        if self.idle_timeout_seconds < 0:
            raise ValueError("idle_timeout_seconds must be >= 0 (0 = off)")
        if self.write_timeout_seconds < 0:
            raise ValueError("write_timeout_seconds must be >= 0 (0 = off)")
        if self.max_connections < 0:
            raise ValueError("max_connections must be >= 0 (0 = unbounded)")
        if self.drain_timeout_seconds <= 0:
            raise ValueError("drain_timeout_seconds must be > 0")
        get_codec(self.codec)  # fail fast on unknown/unavailable codec


class _SessionHost:
    """One named graph's session, executor, and admission state."""

    def __init__(self, name: str, graph: KnowledgeGraph, make_session) -> None:
        self.name = name
        self.graph = graph
        self._make_session = make_session
        self._session: ExplanationSession | None = None
        # One thread per graph: serializes all session access without
        # blocking the event loop; distinct graphs run concurrently.
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"session-{name}"
        )
        self.pending = 0  # event-loop-thread only; no lock needed
        self.requests = 0  # admitted workload requests, lifetime
        self.last_active = time.monotonic()

    @property
    def session(self) -> ExplanationSession:
        if self._session is None:
            self._session = self._make_session(self.graph)
        return self._session

    def session_if_created(self) -> ExplanationSession | None:
        return self._session

    def close(self) -> None:
        self.executor.shutdown(wait=True, cancel_futures=True)
        if self._session is not None:
            self._session.close()


class ExplanationServer:
    """TCP front door serving explanation summaries for named graphs.

    ``graphs`` is either a single :class:`KnowledgeGraph` (hosted as
    ``"default"``) or a mapping of name -> graph. The remaining keyword
    configs are forwarded to every lazily created
    :class:`~repro.api.ExplanationSession`.

    Lifecycle: ``await start()`` binds the socket (``server.port`` is
    then live), ``await stop()`` closes connections and sessions.
    Synchronous callers use :class:`ServerThread`.
    """

    def __init__(
        self,
        graphs: KnowledgeGraph | Mapping[str, KnowledgeGraph],
        config: ServerConfig | None = None,
        *,
        engine: EngineConfig | None = None,
        cache: CacheConfig | None = None,
        parallel: ParallelConfig | None = None,
        scheduler: SchedulerConfig | None = None,
        default_method: str = "st",
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan | None = None,
        loop_faults: FaultPlan | None = None,
        state_dir: str | os.PathLike | None = None,
        journal: JournalConfig | None = None,
        journal_faults: FaultPlan | None = None,
        store: ClosureStoreConfig | None = None,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        if isinstance(graphs, KnowledgeGraph):
            graphs = {"default": graphs}
        graphs = dict(graphs)
        if not graphs:
            raise ValueError("server needs at least one graph to host")
        self.config = config if config is not None else ServerConfig()
        self._codec = get_codec(self.config.codec)
        self._obs = obs if obs is not None else ObservabilityConfig()
        # Deterministic chaos: `faults` rides into every hosted
        # session's worker envelopes; `loop_faults` is consulted by the
        # event loop itself, keyed on workload-request arrival ordinal
        # ("delay" stalls handling, "overload" forces a rejection,
        # "kill-server" hard-aborts the whole server mid-request);
        # `journal_faults` injures journal appends (torn-write /
        # truncated-journal), keyed on record ordinal.
        self._loop_faults = loop_faults
        self._workload_ordinal = 0
        # Durability: with a state_dir, each named graph recovers from
        # its snapshot + journal (replacing the passed seed wholesale —
        # the durable state is authoritative across restarts), and
        # every accepted mutation is journaled before it is acked.
        self._journals: dict[str, GraphJournal] = {}
        if state_dir is not None:
            root = Path(state_dir)
            for name in list(graphs):
                graph_journal = GraphJournal(
                    root / name, graphs[name], journal, faults=journal_faults
                )
                self._journals[name] = graph_journal
                graphs[name] = graph_journal.graph

        def make_session(graph: KnowledgeGraph) -> ExplanationSession:
            return ExplanationSession(
                graph,
                engine=engine,
                cache=cache,
                parallel=parallel,
                scheduler=scheduler,
                default_method=default_method,
                resilience=resilience,
                faults=faults,
                store=store,
                obs=obs,
            )

        self._hosts = {
            name: _SessionHost(name, graph, make_session)
            for name, graph in graphs.items()
        }
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._draining = False
        self._stop_requested = threading.Event()
        self._started_at: float | None = None
        self.port: int | None = None
        #: Served-request counters, for the ``stats`` RPC and tests.
        self.frames_in = 0
        self.frames_out = 0
        self.rejected = 0
        self.connections_now = 0
        self.connections_rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the idle reaper."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.pool_idle_ttl_seconds > 0:
            self._reaper = asyncio.create_task(self._reap_idle_pools())

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    def request_stop(self) -> None:
        """Begin draining; safe to call from a signal handler or any
        thread. New work is refused with typed ``shutting-down`` frames
        from this point on; the caller (or whoever awaits
        :meth:`wait_stop_requested`) then runs ``stop(drain=True)``."""
        self._draining = True
        self._stop_requested.set()
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    async def wait_stop_requested(self) -> None:
        """Block until :meth:`request_stop` fires (the CLI's idle wait)."""
        assert self._stop_event is not None, "call start() first"
        await self._stop_event.wait()

    async def stop(
        self, drain: bool = False, timeout: float | None = None
    ) -> bool:
        """Shut down; returns True if nothing in flight was abandoned.

        With ``drain=True``: stop admitting (every new request gets a
        typed ``shutting-down`` frame while the socket stays open),
        wait — up to ``timeout`` (default
        ``ServerConfig.drain_timeout_seconds``) — for in-flight
        dispatches to finish *and write their responses* (admission
        counters release only after the response frame is sent, so
        pending==0 means zero dropped results), flush the journals,
        then tear down. Without ``drain``, tear down immediately;
        whatever the journal already made durable stays durable.
        """
        drained = True
        if drain:
            self._draining = True
            budget = (
                timeout
                if timeout is not None
                else self.config.drain_timeout_seconds
            )
            deadline = time.monotonic() + budget
            while any(host.pending for host in self._hosts.values()):
                if time.monotonic() >= deadline:
                    drained = False
                    break
                await asyncio.sleep(0.02)
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        for host in self._hosts.values():
            await loop.run_in_executor(None, host.close)
        for store in self._journals.values():
            store.close()  # flush to stable storage (idempotent)
        return drained

    def _abort(self) -> None:
        """The in-process stand-in for ``kill -9``.

        Drops the listening socket and the journal handles *without
        flushing* — only what the fsync policy already made durable
        survives, exactly the guarantee a hard kill tests. Triggered by
        the ``kill-server`` loop fault; the hosting thread still calls
        ``stop()`` afterwards, which is idempotent over the wreckage.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        for store in self._journals.values():
            store.abort()

    async def _reap_idle_pools(self) -> None:
        """Release pooled resources of sessions idle past the TTL."""
        ttl = self.config.pool_idle_ttl_seconds
        while True:
            await asyncio.sleep(self.config.reap_interval_seconds)
            now = time.monotonic()
            loop = asyncio.get_running_loop()
            for host in self._hosts.values():
                session = host.session_if_created()
                if (
                    session is None
                    or host.pending
                    or now - host.last_active < ttl
                ):
                    continue
                if (
                    session._pool is None
                    and session._steal_pool is None
                    and session._export is None
                ):
                    continue  # nothing pooled to release
                # On the session thread: serialized behind any work
                # admitted between this check and the call.
                await loop.run_in_executor(
                    host.executor, session.release_pool
                )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        bound = self.config.max_frame_bytes
        limit = self.config.max_connections
        idle = self.config.idle_timeout_seconds
        admitted = not limit or self.connections_now < limit
        if admitted:
            self.connections_now += 1
        try:
            if not admitted:
                # One typed frame telling the peer why, then hang up —
                # the bound protects the connections already admitted.
                self.connections_rejected += 1
                await self._send(
                    writer,
                    protocol.error_frame(
                        "too-many-connections",
                        f"server at its {limit}-connection bound; "
                        "retry later",
                        retry_after_ms=self.config.retry_after_ms,
                    ),
                )
                return
            while True:
                try:
                    read = read_frame_async(reader, bound)
                    if idle > 0:
                        # A connection that sends nothing for this long
                        # is hung up on (TimeoutError -> outer except).
                        payload = await asyncio.wait_for(read, idle)
                    else:
                        payload = await read
                except FrameTooLarge as error:
                    # Tell the peer why, then hang up: the oversized
                    # payload is still in flight and unskippable.
                    await self._send(
                        writer,
                        protocol.error_frame("frame-too-large", str(error)),
                    )
                    return
                except (ConnectionClosed, TruncatedFrame):
                    return
                self.frames_in += 1
                await self._dispatch(writer, payload)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # peer vanished / went mute mid-exchange
        finally:
            if admitted:
                self.connections_now -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # Server stop may cancel this handler while it drains
                # the close; the connection is already down, and
                # letting the cancellation escape here only produces
                # "Exception in callback" noise from asyncio.streams.
                asyncio.CancelledError,
            ):
                pass

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        write = write_frame_async(
            writer, self._codec.encode(frame), self.config.max_frame_bytes
        )
        if self.config.write_timeout_seconds > 0:
            # A peer too slow to drain its responses must not pin
            # server buffers; TimeoutError closes the connection.
            await asyncio.wait_for(write, self.config.write_timeout_seconds)
        else:
            await write
        self.frames_out += 1

    async def _dispatch(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        """Decode one request frame and answer it (errors included)."""
        try:
            try:
                data = self._codec.decode(payload)
            except ValueError as error:
                raise protocol.ProtocolError(
                    "bad-frame", f"undecodable frame ({error})"
                ) from None
            kind, frame = protocol.open_envelope(data)
            handler = getattr(self, f"_op_{kind.replace('-', '_')}", None)
            if handler is None:
                raise protocol.ProtocolError(
                    "bad-request", f"unknown request kind {kind!r}"
                )
            await handler(writer, frame)
        except protocol.ProtocolError as error:
            await self._send(
                writer,
                protocol.error_frame(
                    error.code, str(error), **getattr(error, "extra", {})
                ),
            )

    def _host_for(self, frame: dict) -> _SessionHost:
        name = frame.get("graph", "default")
        host = self._hosts.get(name)
        if host is None:
            raise protocol.ProtocolError(
                "unknown-graph",
                f"no graph named {name!r}; hosted: "
                f"{sorted(self._hosts)}",
            )
        return host

    def _admit(self, host: _SessionHost) -> None:
        """Admission control: typed refusal when draining or full."""
        if self._draining:
            self.rejected += 1
            raise protocol.ProtocolError(
                "shutting-down",
                "server is draining and no longer admits work; retry "
                "against another replica or after it restarts",
                retry_after_ms=self.config.retry_after_ms,
            )
        if host.pending >= self.config.max_pending:
            self.rejected += 1
            raise protocol.ProtocolError(
                "overloaded",
                f"graph {host.name!r} has {host.pending} pending "
                f"request(s) (bound {self.config.max_pending}); retry "
                "with backoff",
                retry_after_ms=self.config.retry_after_ms,
            )
        host.pending += 1
        host.requests += 1
        host.last_active = time.monotonic()

    async def _inject_loop_fault(self, host: _SessionHost) -> None:
        """Apply the fault plan directive for this workload request.

        Consulted by the workload ops (explain/run/stream) only, keyed
        on arrival ordinal: "delay" stalls handling on the event loop
        (what makes client deadlines testable without timing luck),
        "overload" forces an admission rejection regardless of queue
        depth (what makes client backoff testable), "kill-server"
        hard-aborts the whole server mid-batch — the deterministic
        stand-in for ``kill -9`` that pins journal recovery in tests.
        Other kinds are worker-side and ignored here.
        """
        if self._loop_faults is None:
            return
        ordinal = self._workload_ordinal
        self._workload_ordinal += 1
        fault = self._loop_faults.for_request(ordinal)
        if fault is None:
            return
        if fault.kind == "delay":
            await asyncio.sleep(fault.seconds)
        elif fault.kind == "overload":
            self.rejected += 1
            raise protocol.ProtocolError(
                "overloaded",
                f"graph {host.name!r} rejected request {ordinal} by "
                "fault plan; retry with backoff",
                retry_after_ms=self.config.retry_after_ms,
            )
        elif fault.kind == "kill-server":
            self._abort()
            # No farewell frame — a killed process sends none; the
            # reset propagates to _handle_client, which hangs up.
            raise ConnectionResetError(
                f"server killed by fault plan at request {ordinal}"
            )

    @staticmethod
    def _deadline_from(frame: dict) -> float | None:
        """Absolute monotonic expiry from an optional ``deadline_ms``.

        The field is optional (absent = no deadline), so adding it did
        not bump :data:`~repro.api.protocol.PROTOCOL_VERSION`; servers
        that predate it simply never enforce one.
        """
        value = frame.get("deadline_ms")
        if value is None:
            return None
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or value < 0
        ):
            raise protocol.ProtocolError(
                "bad-request", "'deadline_ms' must be a non-negative number"
            )
        return time.monotonic() + value / 1000.0

    @staticmethod
    def _trace_id_from(frame: dict) -> str | None:
        """Optional client-stamped ``trace_id`` — same optional-field
        contract as ``deadline_ms``, so no protocol-version bump:
        servers that predate it simply ignore the field, and the
        session mints its own id when tracing is on."""
        value = frame.get("trace_id")
        if value is None:
            return None
        if not isinstance(value, str) or not value:
            raise protocol.ProtocolError(
                "bad-request",
                "'trace_id' must be a non-empty string when present",
            )
        return value

    @staticmethod
    def _check_deadline(expires: float | None) -> None:
        """Drop expired work; runs where the work *starts* (session
        thread), so requests that aged out while queued behind a busy
        session are rejected instead of computed for nobody."""
        if expires is not None and time.monotonic() > expires:
            raise protocol.ProtocolError(
                "deadline-exceeded",
                "client deadline expired before the request started; "
                "dropped without computing",
            )

    def _release(self, host: _SessionHost) -> None:
        host.pending -= 1
        host.last_active = time.monotonic()

    async def _run_on_session(self, host: _SessionHost, fn, *args):
        """Run blocking session work on the host's thread; map errors."""
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(host.executor, fn, *args)
        except protocol.ProtocolError:
            raise
        except (ValueError, KeyError, TypeError) as error:
            raise protocol.ProtocolError(
                "task-error", f"{type(error).__name__}: {error}"
            ) from error
        except Exception as error:  # pool/shm infrastructure failures
            raise protocol.ProtocolError(
                "internal", f"{type(error).__name__}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Request handlers (one per envelope kind)
    # ------------------------------------------------------------------
    async def _op_ping(self, writer, frame) -> None:
        await self._send(
            writer, protocol.envelope("pong", {"graphs": sorted(self._hosts)})
        )

    async def _op_methods(self, writer, frame) -> None:
        await self._send(
            writer,
            protocol.envelope(
                "methods", {"methods": list(available_methods())}
            ),
        )

    async def _op_stats(self, writer, frame) -> None:
        host = self._host_for(frame)
        session = host.session_if_created()
        stats = {}
        store_stats = None
        if session is not None:
            stats = session.stats.to_dict()
            store_stats = session.store_stats()
        await self._send(
            writer,
            protocol.envelope(
                "stats",
                {
                    "graph": host.name,
                    "session": stats,
                    # Live shared-closure-store counters (None when the
                    # store is off or not yet created for this version).
                    "store": store_stats,
                    "pending": host.pending,
                    "requests": host.requests,
                    "uptime_seconds": (
                        time.monotonic() - self._started_at
                        if self._started_at is not None
                        else 0.0
                    ),
                    "server": {
                        "frames_in": self.frames_in,
                        "frames_out": self.frames_out,
                        "rejected": self.rejected,
                        "requests": {
                            name: h.requests
                            for name, h in sorted(self._hosts.items())
                        },
                    },
                },
            ),
        )

    async def _op_explain(self, writer, frame) -> None:
        host = self._host_for(frame)
        request = protocol.request_from_json(
            protocol._expect(frame, "request", dict, "explain")
        )
        expires = self._deadline_from(frame)
        trace_id = self._trace_id_from(frame)
        await self._inject_loop_fault(host)
        self._admit(host)
        admitted = time.monotonic()

        def work():
            self._check_deadline(expires)
            wait = time.monotonic() - admitted
            if self._obs.metrics:
                _QUEUE_WAIT_SECONDS.observe(wait)
            return host.session.explain(
                request, trace_id=trace_id, queue_wait_seconds=wait
            )

        # Release only after the response frame is written: draining
        # waits on pending==0, which must cover the write, so a drain
        # never cuts a connection between compute and response.
        try:
            explanation = await self._run_on_session(host, work)
            await self._send(
                writer,
                protocol.envelope(
                    "explanation",
                    {
                        "explanation": protocol.explanation_to_json(
                            explanation
                        )
                    },
                ),
            )
        finally:
            self._release(host)

    async def _op_run(self, writer, frame) -> None:
        host = self._host_for(frame)
        requests = self._decode_requests(frame, "run")
        expires = self._deadline_from(frame)
        trace_id = self._trace_id_from(frame)
        await self._inject_loop_fault(host)
        self._admit(host)
        admitted = time.monotonic()

        def work():
            self._check_deadline(expires)
            wait = time.monotonic() - admitted
            if self._obs.metrics:
                _QUEUE_WAIT_SECONDS.observe(wait)
            return host.session.run(
                requests, trace_id=trace_id, queue_wait_seconds=wait
            )

        try:
            report = await self._run_on_session(host, work)
            await self._send(
                writer,
                protocol.envelope(
                    "report", {"report": protocol.report_to_json(report)}
                ),
            )
        finally:
            self._release(host)

    async def _op_stream(self, writer, frame) -> None:
        """Frame each result the moment the scheduler yields it."""
        host = self._host_for(frame)
        requests = self._decode_requests(frame, "stream")
        expires = self._deadline_from(frame)
        trace_id = self._trace_id_from(frame)
        await self._inject_loop_fault(host)
        self._admit(host)
        admitted = time.monotonic()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        done = object()

        def pump() -> None:
            # Session thread: drive the stream, hand each result to the
            # event loop as soon as the scheduler yields it.
            try:
                self._check_deadline(expires)
                wait = time.monotonic() - admitted
                if self._obs.metrics:
                    _QUEUE_WAIT_SECONDS.observe(wait)
                for result in host.session.stream(
                    requests, trace_id=trace_id, queue_wait_seconds=wait
                ):
                    loop.call_soon_threadsafe(queue.put_nowait, result)
                loop.call_soon_threadsafe(queue.put_nowait, done)
            except BaseException as error:  # delivered, not swallowed
                loop.call_soon_threadsafe(queue.put_nowait, error)

        future = loop.run_in_executor(host.executor, pump)
        count = 0
        try:
            while True:
                item = await queue.get()
                if item is done:
                    break
                if isinstance(item, protocol.ProtocolError):
                    raise item  # keep the typed code (deadline-exceeded)
                if isinstance(item, BaseException):
                    raise protocol.ProtocolError(
                        "task-error", f"{type(item).__name__}: {item}"
                    )
                await self._send(
                    writer,
                    protocol.envelope(
                        "result", {"result": protocol.result_to_json(item)}
                    ),
                )
                count += 1
            # End frame before releasing: a drain that begins mid-
            # stream holds the server open until every result AND the
            # terminator reach the client — zero dropped results.
            await self._send(
                writer, protocol.envelope("end", {"count": count})
            )
        finally:
            await asyncio.wait([future])
            self._release(host)

    async def _op_mutate(self, writer, frame) -> None:
        """Apply graph edits, serialized against in-flight session work.

        With a ``state_dir``, the validated op batch is journaled —
        durably, per the fsync policy — *before* it is applied, and
        applied before it is acknowledged. A crash after the journal
        write but before the ack replays the ops on restart while the
        client (which never saw an ack) retries: both sides converge.
        """
        host = self._host_for(frame)
        ops = protocol._expect(frame, "ops", list, "mutate")
        plan = []
        canon = []
        for op in ops:
            name = protocol._expect(op, "op", str, "mutate op")
            if name not in MUTATION_OPS:
                raise protocol.ProtocolError(
                    "bad-request",
                    f"unknown mutation op {name!r}; supported: "
                    f"{sorted(MUTATION_OPS)}",
                )
            args = op.get("args", [])
            if not isinstance(args, list):
                raise protocol.ProtocolError(
                    "bad-request", "mutate op 'args' must be a list"
                )
            plan.append((MUTATION_OPS[name], args))
            canon.append({"op": name, "args": args})
        self._admit(host)
        store = self._journals.get(host.name)

        def apply() -> int:
            if store is not None:
                store.record(canon)  # write-ahead: journal, THEN apply
            for method, args in plan:
                getattr(host.graph, method)(*args)
            if store is not None:
                store.maybe_compact()
            return host.graph.version

        try:
            version = await self._run_on_session(host, apply)
            await self._send(
                writer,
                protocol.envelope(
                    "ok", {"graph": host.name, "version": version}
                ),
            )
        finally:
            self._release(host)

    async def _op_release(self, writer, frame) -> None:
        """Drop a session's pooled resources now (client-driven shrink)."""
        host = self._host_for(frame)
        session = host.session_if_created()
        if session is not None:
            self._admit(host)
            try:
                await self._run_on_session(host, session.release_pool)
                await self._send(
                    writer, protocol.envelope("ok", {"graph": host.name})
                )
            finally:
                self._release(host)
        else:
            await self._send(
                writer, protocol.envelope("ok", {"graph": host.name})
            )

    async def _op_compact(self, writer, frame) -> None:
        """Fold a graph's journal into a fresh snapshot on demand."""
        host = self._host_for(frame)
        store = self._journals.get(host.name)
        if store is None:
            raise protocol.ProtocolError(
                "bad-request",
                f"graph {host.name!r} has no state_dir; nothing to "
                "compact",
            )
        self._admit(host)

        def work() -> dict:
            store.compact()
            return store.stats()

        try:
            stats = await self._run_on_session(host, work)
            await self._send(
                writer,
                protocol.envelope("ok", {"graph": host.name, **stats}),
            )
        finally:
            self._release(host)

    async def _op_health(self, writer, frame) -> None:
        """Liveness/readiness/draining + per-graph depth and counters.

        Never admission-gated: a draining or saturated server must
        still answer its load balancer. ``ready`` is the routable bit
        (False the moment draining starts); ``live`` distinguishes
        "answering at all" from ready.
        """
        graphs = {}
        for name, host in self._hosts.items():
            info: dict = {
                "pending": host.pending,
                "version": host.graph.version,
            }
            session = host.session_if_created()
            if session is not None:
                info["resilience"] = {
                    "worker_deaths": session.stats.worker_deaths,
                    "task_retries": session.stats.task_retries,
                    "task_timeouts": session.stats.task_timeouts,
                    "local_fallbacks": session.stats.local_fallbacks,
                }
                closure_store = session.store_stats()
                if closure_store is not None:
                    info["store"] = closure_store
            store = self._journals.get(name)
            if store is not None:
                info["journal"] = store.stats()
            graphs[name] = info
        await self._send(
            writer,
            protocol.envelope(
                "health",
                {
                    "status": "draining" if self._draining else "ok",
                    "live": True,
                    "ready": not self._draining,
                    "draining": self._draining,
                    "durable": bool(self._journals),
                    "connections": self.connections_now,
                    # Registry liveness only — family count and config
                    # bits, never a render or graph-lock acquisition, so
                    # health stays cheap under load.
                    "metrics": {
                        "enabled": self._obs.metrics,
                        "tracing": self._obs.trace,
                        "families": get_registry().family_count(),
                    },
                    "graphs": graphs,
                },
            ),
        )

    async def _op_trace(self, writer, frame) -> None:
        """Fetch one finished request trace (by id, or the latest).

        Never admission-gated: the collector is a small ring buffer
        behind its own lock, so reading it does not contend with the
        session thread. ``trace`` is None when tracing is off, the
        session has served nothing yet, or the id has been evicted.
        """
        host = self._host_for(frame)
        trace_id = self._trace_id_from(frame)
        session = host.session_if_created()
        trace = None
        if session is not None:
            trace = (
                session.get_trace(trace_id)
                if trace_id is not None
                else session.last_trace()
            )
        await self._send(
            writer,
            protocol.envelope(
                "trace", {"graph": host.name, "trace": trace}
            ),
        )

    async def _op_metrics(self, writer, frame) -> None:
        """Prometheus text exposition of every process-wide family.

        The process-wide registry renders first (task/batch latency
        histograms, journal counters, queue-wait); per-session lifetime
        counters follow as render-time views built from
        ``SessionStats.to_dict()`` — views, not registered families, so
        session counters are never double-counted and sessions that die
        leave no stale registrations behind.
        """
        parts = [get_registry().render()]
        samples = []
        for name, host in sorted(self._hosts.items()):
            session = host.session_if_created()
            if session is None:
                continue
            for counter, value in session.stats.to_dict().items():
                samples.append(
                    ({"graph": name, "counter": counter}, value)
                )
        if samples:
            parts.append(
                render_simple(
                    "repro_session_counter",
                    "gauge",
                    "Lifetime session counters "
                    "(SessionStats.to_dict view)",
                    samples,
                )
            )
        parts.append(
            render_simple(
                "repro_server_requests_total",
                "counter",
                "Workload requests admitted per hosted graph",
                [
                    ({"graph": name}, host.requests)
                    for name, host in sorted(self._hosts.items())
                ],
            )
        )
        await self._send(
            writer,
            protocol.envelope("metrics", {"text": "".join(parts)}),
        )

    @staticmethod
    def _decode_requests(frame: dict, what: str):
        items = protocol._expect(frame, "requests", list, what)
        return [protocol.request_from_json(item) for item in items]


class ServerThread:
    """Run an :class:`ExplanationServer` on a background event loop.

    For tests, the demo and the bench harness: construction blocks
    until the socket is bound (``.port`` is live), ``stop()`` shuts
    the server and the loop down. Usable as a context manager.
    """

    def __init__(self, server: ExplanationServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="explanation-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                raise
            finally:
                self._started.set()

        try:
            self._loop.run_until_complete(main())
            self._loop.run_forever()
        except BaseException:
            pass
        finally:
            # Drain whatever the stop left behind (half-closed
            # transports, cancelled handlers) so closing the loop
            # doesn't strand callbacks that would warn at GC time.
            try:
                pending = asyncio.all_tasks(self._loop)
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens()
                )
            except BaseException:
                pass
            self._loop.close()

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def request_stop(self) -> None:
        """Flip the server into draining without tearing it down."""
        self.server.request_stop()

    def stop(self, drain: bool = False, timeout: float | None = None) -> None:
        if self._loop.is_closed():
            return

        async def shutdown() -> None:
            await self.server.stop(drain=drain, timeout=timeout)
            self._loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            # A silent timeout here would leak the loop thread (and
            # every session it owns) while the caller believes the
            # server is down; fail loudly instead.
            raise RuntimeError(
                "server loop thread did not exit within 30s of stop(); "
                "the event loop (and its sessions) are still running"
            )

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
