"""Thin blocking client for :class:`repro.serving.server.ExplanationServer`.

:class:`ExplanationClient` mirrors the in-process
:class:`~repro.api.ExplanationSession` surface — ``explain`` /
``run`` / ``stream`` take :class:`~repro.api.SummaryRequest`\\ s or bare
:class:`~repro.core.scenarios.SummaryTask`\\ s — but moves the work
over TCP: requests are encoded with :mod:`repro.api.protocol`, framed
by :mod:`repro.serving.frames`, and the decoded results are
bit-identical to what the server's session produced (the payload codec
preserves every iteration order).

Failure semantics:

- Server-reported problems raise :class:`ServerError` carrying the
  typed protocol ``code``; admission-control rejections raise the
  :class:`OverloadedError` subclass so callers can branch to backoff
  without string matching.
- A dead connection (server restarted, idle socket reaped) triggers
  one transparent reconnect-and-retry for *idempotent* request kinds —
  every summarization read is one — before the error propagates.
  Reconnects are lazy: the socket is (re)dialed on the next call, so a
  client object constructed before the server starts still works.
- ``stream`` yields each :class:`~repro.core.batch.BatchResult` as its
  frame arrives — task by task under the server's work-stealing
  scheduler — and verifies the terminating ``end`` frame's count.
"""

from __future__ import annotations

import socket
from collections.abc import Iterable, Iterator

from repro.api import protocol
from repro.api.requests import SummaryRequest, as_request
from repro.core.batch import BatchReport, BatchResult
from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.serving.frames import (
    MAX_FRAME_BYTES,
    FrameError,
    get_codec,
    read_frame,
    write_frame,
)


class ServerError(RuntimeError):
    """The server answered with a typed ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code

    @staticmethod
    def from_frame(frame: dict) -> "ServerError":
        code = frame.get("code", "internal")
        message = frame.get("message", "")
        if code == "overloaded":
            return OverloadedError(code, message)
        return ServerError(code, message)


class OverloadedError(ServerError):
    """Admission control rejected the request; retry with backoff."""


class ExplanationClient:
    """Blocking TCP client bound to one named graph on one server.

    ``graph`` selects the server-side session ("default" matches a
    server constructed from a bare graph). The socket dials lazily on
    first use and redials once per call after a connection failure
    when ``reconnect`` is on.
    """

    def __init__(
        self,
        host: str,
        port: int,
        graph: str = "default",
        *,
        codec: str = "json",
        timeout: float | None = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        reconnect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.graph = graph
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.reconnect = reconnect
        self._codec = get_codec(codec)
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the socket (the client redials if used again)."""
        self._drop_connection()

    def __enter__(self) -> "ExplanationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send_request(self, kind: str, body: dict) -> None:
        frame = protocol.envelope(kind, {"graph": self.graph, **body})
        write_frame(
            self._connection(),
            self._codec.encode(frame),
            self.max_frame_bytes,
        )

    def _read_response(self) -> tuple[str, dict]:
        payload = read_frame(self._connection(), self.max_frame_bytes)
        kind, frame = protocol.open_envelope(self._codec.decode(payload))
        if kind == "error":
            raise ServerError.from_frame(frame)
        return kind, frame

    def _call(self, kind: str, body: dict) -> tuple[str, dict]:
        """One request/response round trip, with one reconnect retry."""
        try:
            self._send_request(kind, body)
            return self._read_response()
        except (FrameError, OSError):
            self._drop_connection()
            if not self.reconnect:
                raise
        # Retry exactly once on a fresh connection; a second failure
        # means the server really is gone and propagates.
        self._send_request(kind, body)
        return self._read_response()

    @staticmethod
    def _expect_kind(kind: str, frame: dict, want: str) -> dict:
        if kind != want:
            raise ServerError(
                "bad-frame",
                f"expected a {want!r} response, got {kind!r}",
            )
        return frame

    # ------------------------------------------------------------------
    # Session-mirror surface
    # ------------------------------------------------------------------
    def ping(self) -> list[str]:
        """Round-trip liveness check; returns the hosted graph names."""
        kind, frame = self._call("ping", {})
        return self._expect_kind(kind, frame, "pong").get("graphs", [])

    def methods(self) -> list[str]:
        """Summarization methods registered on the server."""
        kind, frame = self._call("methods", {})
        return self._expect_kind(kind, frame, "methods")["methods"]

    def stats(self) -> dict:
        """Server + session counters for this client's graph."""
        kind, frame = self._call("stats", {})
        return self._expect_kind(kind, frame, "stats")

    def explain(
        self, item: SummaryRequest | SummaryTask
    ) -> SubgraphExplanation:
        """Summarize one task; bit-identical to the in-process session."""
        request = as_request(item)
        kind, frame = self._call(
            "explain", {"request": protocol.request_to_json(request)}
        )
        body = self._expect_kind(kind, frame, "explanation")
        return protocol.explanation_from_json(
            body["explanation"], request.task
        )

    def run(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> BatchReport:
        """Serve a batch; the full report decodes losslessly."""
        kind, frame = self._call("run", {"requests": self._encode(items)})
        body = self._expect_kind(kind, frame, "report")
        return protocol.report_from_json(body["report"])

    def stream(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> Iterator[BatchResult]:
        """Yield results as their frames arrive (completion order).

        The request is sent with the reconnect retry, but once the
        first frame is in flight a connection failure propagates —
        silently re-running a half-consumed stream could double-serve
        side-effect-sensitive callers.
        """
        body = {"requests": self._encode(items)}
        try:
            self._send_request("stream", body)
        except (FrameError, OSError):
            self._drop_connection()
            if not self.reconnect:
                raise
            self._send_request("stream", body)
        count = 0
        while True:
            kind, frame = self._read_response()
            if kind == "end":
                declared = frame.get("count")
                if declared != count:
                    raise ServerError(
                        "bad-frame",
                        f"stream ended after {count} result(s) but "
                        f"declared {declared}",
                    )
                return
            body = self._expect_kind(kind, frame, "result")
            count += 1
            yield protocol.result_from_json(body["result"])

    # ------------------------------------------------------------------
    # Graph mutation + resource RPCs
    # ------------------------------------------------------------------
    def mutate(self, ops: list[dict]) -> int:
        """Apply graph edits server-side; returns the new graph version.

        Each op is ``{"op": name, "args": [...]}`` with names from
        :data:`repro.serving.server.MUTATION_OPS`. The server applies
        them serialized against in-flight work; the session invalidates
        its derived state on the next request.
        """
        kind, frame = self._call("mutate", {"ops": ops})
        return self._expect_kind(kind, frame, "ok")["version"]

    def add_edge(
        self,
        source: str,
        target: str,
        weight: float = 1.0,
        relation: str = "",
    ) -> int:
        return self.mutate(
            [{"op": "add_edge", "args": [source, target, weight, relation]}]
        )

    def set_weight(self, source: str, target: str, weight: float) -> int:
        return self.mutate(
            [{"op": "set_weight", "args": [source, target, weight]}]
        )

    def remove_edge(self, source: str, target: str) -> int:
        return self.mutate([{"op": "remove_edge", "args": [source, target]}])

    def remove_node(self, node: str) -> int:
        return self.mutate([{"op": "remove_node", "args": [node]}])

    def release_pool(self) -> None:
        """Ask the server to drop this graph's pooled resources now."""
        kind, frame = self._call("release", {})
        self._expect_kind(kind, frame, "ok")

    def _encode(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> list[dict]:
        return [
            protocol.request_to_json(as_request(item)) for item in items
        ]
