"""Thin blocking client for :class:`repro.serving.server.ExplanationServer`.

:class:`ExplanationClient` mirrors the in-process
:class:`~repro.api.ExplanationSession` surface — ``explain`` /
``run`` / ``stream`` take :class:`~repro.api.SummaryRequest`\\ s or bare
:class:`~repro.core.scenarios.SummaryTask`\\ s — but moves the work
over TCP: requests are encoded with :mod:`repro.api.protocol`, framed
by :mod:`repro.serving.frames`, and the decoded results are
bit-identical to what the server's session produced (the payload codec
preserves every iteration order).

Failure semantics:

- Server-reported problems raise :class:`ServerError` carrying the
  typed protocol ``code``; retry-invited refusals — admission-control
  ``overloaded`` and drain-time ``shutting-down`` — raise the
  :class:`OverloadedError` / :class:`ShuttingDownError` subclasses of
  :class:`RetryAdvisedError` (with the server's ``retry_after_ms``
  hint attached) so callers can branch to backoff without string
  matching.
- A dead connection (server restarted, idle socket reaped) triggers
  one transparent reconnect-and-retry for *idempotent* request kinds —
  every summarization read is one — before the error propagates.
  Reconnects are lazy: the socket is (re)dialed on the next call, so a
  client object constructed before the server starts still works.
- With ``retries > 0`` the client absorbs retry-invited refusals and
  connection failures itself: jittered exponential backoff (seeded,
  so tests are deterministic), floored at the server's
  ``retry_after_ms`` hint, bounded by the per-call ``deadline``.
  The default is 0 — failing fast is the right contract for callers
  that own their retry loop, and it keeps overload latency typed and
  immediate.
- ``explain`` / ``run`` / ``stream`` accept ``deadline`` (seconds of
  total budget, client clock). The remaining budget travels as the
  optional ``deadline_ms`` request field; the server drops work whose
  deadline expired while queued (typed ``deadline-exceeded``) instead
  of computing summaries nobody is waiting for.
- ``stream`` yields each :class:`~repro.core.batch.BatchResult` as its
  frame arrives — task by task under the server's work-stealing
  scheduler, failed tasks as typed ``failure`` results in place — and
  verifies the terminating ``end`` frame's count, so "exactly one
  frame per submitted task" holds even under injected worker crashes.
  Backoff retries cover only the window before the first frame is
  consumed; a half-consumed stream propagates its error.
"""

from __future__ import annotations

import random
import socket
import time
from collections.abc import Iterable, Iterator

from repro.api import protocol
from repro.api.requests import SummaryRequest, as_request
from repro.core.batch import BatchReport, BatchResult
from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.obs.trace import new_trace_id
from repro.serving.frames import (
    MAX_FRAME_BYTES,
    FrameError,
    get_codec,
    read_frame,
    write_frame,
)


class ServerError(RuntimeError):
    """The server answered with a typed ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code

    @staticmethod
    def from_frame(frame: dict) -> "ServerError":
        code = frame.get("code", "internal")
        message = frame.get("message", "")
        retryable = {
            "overloaded": OverloadedError,
            "shutting-down": ShuttingDownError,
        }.get(code)
        if retryable is not None:
            error = retryable(code, message)
            hint = frame.get("retry_after_ms")
            if isinstance(hint, (int, float)) and not isinstance(
                hint, bool
            ):
                error.retry_after_ms = float(hint)
            return error
        return ServerError(code, message)


class RetryAdvisedError(ServerError):
    """The server refused this request but invited a retry.

    ``retry_after_ms`` is the server's backoff-floor hint (None when
    the frame carried none — an older server). The client's seeded
    backoff treats every subclass identically; the subclasses exist so
    callers can still branch on *why* without string matching.
    """

    retry_after_ms: float | None = None


class OverloadedError(RetryAdvisedError):
    """Admission control rejected the request; retry with backoff."""


class ShuttingDownError(RetryAdvisedError):
    """The server is draining; retry elsewhere or after its restart."""


class ExplanationClient:
    """Blocking TCP client bound to one named graph on one server.

    ``graph`` selects the server-side session ("default" matches a
    server constructed from a bare graph). The socket dials lazily on
    first use and redials once per call after a connection failure
    when ``reconnect`` is on.

    ``retries`` (default 0: fail fast) arms jittered exponential
    backoff for overload rejections and connection failures:
    attempt ``n`` sleeps ``min(cap, base * 2**n)`` scaled by a random
    factor in [0.5, 1.0] from ``random.Random(backoff_seed)``, floored
    at the server's ``retry_after_ms`` hint, and never past the
    per-call ``deadline``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        graph: str = "default",
        *,
        codec: str = "json",
        timeout: float | None = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        reconnect: bool = True,
        retries: int = 0,
        backoff_base_seconds: float = 0.05,
        backoff_cap_seconds: float = 2.0,
        backoff_seed: int | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_base_seconds < 0 or backoff_cap_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        self.host = host
        self.port = port
        self.graph = graph
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.reconnect = reconnect
        self.retries = retries
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._backoff_rng = random.Random(backoff_seed)
        self._codec = get_codec(codec)
        self._sock: socket.socket | None = None
        #: Trace id stamped into the most recent workload request —
        #: the handle for ``client.trace()`` / the server ``trace`` op
        #: when the server runs with ``ObservabilityConfig(trace=True)``.
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the socket (the client redials if used again)."""
        self._drop_connection()

    def __enter__(self) -> "ExplanationClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send_request(self, kind: str, body: dict) -> None:
        frame = protocol.envelope(kind, {"graph": self.graph, **body})
        write_frame(
            self._connection(),
            self._codec.encode(frame),
            self.max_frame_bytes,
        )

    def _read_response(self) -> tuple[str, dict]:
        payload = read_frame(self._connection(), self.max_frame_bytes)
        kind, frame = protocol.open_envelope(self._codec.decode(payload))
        if kind == "error":
            raise ServerError.from_frame(frame)
        return kind, frame

    def _call_once(self, kind: str, body: dict) -> tuple[str, dict]:
        """One request/response round trip, with one reconnect retry."""
        try:
            self._send_request(kind, body)
            return self._read_response()
        except (FrameError, OSError):
            self._drop_connection()
            if not self.reconnect:
                raise
        # Retry exactly once on a fresh connection; a second failure
        # means the server really is gone and propagates.
        self._send_request(kind, body)
        return self._read_response()

    # ------------------------------------------------------------------
    # Deadline + backoff plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _expires(deadline: float | None) -> float | None:
        """Caller's seconds-of-budget -> absolute monotonic expiry."""
        if deadline is None:
            return None
        if deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        return time.monotonic() + deadline

    @staticmethod
    def _with_deadline(body: dict, expires: float | None) -> dict:
        """Stamp the *remaining* budget into the request body.

        Recomputed per attempt, so a retried request tells the server
        how much patience is actually left, not the original budget.
        """
        if expires is None:
            return body
        remaining = expires - time.monotonic()
        if remaining <= 0:
            raise ServerError(
                "deadline-exceeded",
                "call deadline expired client-side before the request "
                "was sent",
            )
        return {**body, "deadline_ms": remaining * 1000.0}

    def _retry_delay(
        self, attempt: int, expires: float | None, floor_ms: float | None
    ) -> float | None:
        """Next backoff sleep; None when the call must fail instead.

        Jittered exponential — ``min(cap, base * 2**attempt)`` scaled
        into [0.5, 1.0] so a thundering herd of retrying clients
        decorrelates — floored at the server's ``retry_after_ms`` hint,
        and refused entirely when sleeping would cross the deadline.
        """
        if attempt >= self.retries:
            return None
        delay = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2**attempt),
        )
        delay *= 0.5 + 0.5 * self._backoff_rng.random()
        if floor_ms is not None:
            delay = max(delay, floor_ms / 1000.0)
        if expires is not None and time.monotonic() + delay >= expires:
            return None
        return delay

    def _call(
        self, kind: str, body: dict, *, expires: float | None = None
    ) -> tuple[str, dict]:
        """Round trip with backoff retries for overload / dead server."""
        attempt = 0
        while True:
            try:
                return self._call_once(
                    kind, self._with_deadline(body, expires)
                )
            except RetryAdvisedError as error:
                delay = self._retry_delay(
                    attempt, expires, error.retry_after_ms
                )
                if delay is None:
                    raise
            except (FrameError, OSError):
                self._drop_connection()
                if not self.reconnect:
                    raise
                delay = self._retry_delay(attempt, expires, None)
                if delay is None:
                    raise
            time.sleep(delay)
            attempt += 1

    @staticmethod
    def _expect_kind(kind: str, frame: dict, want: str) -> dict:
        if kind != want:
            raise ServerError(
                "bad-frame",
                f"expected a {want!r} response, got {kind!r}",
            )
        return frame

    # ------------------------------------------------------------------
    # Session-mirror surface
    # ------------------------------------------------------------------
    def ping(self) -> list[str]:
        """Round-trip liveness check; returns the hosted graph names."""
        kind, frame = self._call("ping", {})
        return self._expect_kind(kind, frame, "pong").get("graphs", [])

    def methods(self) -> list[str]:
        """Summarization methods registered on the server."""
        kind, frame = self._call("methods", {})
        return self._expect_kind(kind, frame, "methods")["methods"]

    def stats(self) -> dict:
        """Server + session counters for this client's graph."""
        kind, frame = self._call("stats", {})
        return self._expect_kind(kind, frame, "stats")

    def health(self) -> dict:
        """Liveness/readiness report; answered even while draining.

        Returns the server's ``health`` frame: ``status`` ("ok" /
        "draining"), ``live``, ``ready``, ``draining``, ``durable``,
        ``connections``, and per-graph ``pending`` / ``version`` plus
        journal and resilience counters where they exist. Never
        retried as ``shutting-down`` — the health op is not admission
        gated, so a draining server still answers it.
        """
        kind, frame = self._call("health", {})
        return self._expect_kind(kind, frame, "health")

    def _stamp_trace(self, body: dict) -> dict:
        """Mint + attach this request's trace id (optional field).

        Always stamped — one ``os.urandom`` call — so a server running
        with tracing enabled correlates the request without any client
        reconfiguration; servers with tracing off ignore the field.
        The id is kept on :attr:`last_trace_id` for a follow-up
        :meth:`trace` fetch.
        """
        self.last_trace_id = new_trace_id()
        return {**body, "trace_id": self.last_trace_id}

    def explain(
        self,
        item: SummaryRequest | SummaryTask,
        *,
        deadline: float | None = None,
    ) -> SubgraphExplanation:
        """Summarize one task; bit-identical to the in-process session."""
        request = as_request(item)
        kind, frame = self._call(
            "explain",
            self._stamp_trace(
                {"request": protocol.request_to_json(request)}
            ),
            expires=self._expires(deadline),
        )
        body = self._expect_kind(kind, frame, "explanation")
        return protocol.explanation_from_json(
            body["explanation"], request.task
        )

    def run(
        self,
        items: Iterable[SummaryRequest | SummaryTask],
        *,
        deadline: float | None = None,
    ) -> BatchReport:
        """Serve a batch; the full report decodes losslessly."""
        kind, frame = self._call(
            "run",
            self._stamp_trace({"requests": self._encode(items)}),
            expires=self._expires(deadline),
        )
        body = self._expect_kind(kind, frame, "report")
        return protocol.report_from_json(body["report"])

    def stream(
        self,
        items: Iterable[SummaryRequest | SummaryTask],
        *,
        deadline: float | None = None,
    ) -> Iterator[BatchResult]:
        """Yield results as their frames arrive (completion order).

        Backoff retries (when armed) cover only the opening — the send
        plus the first response frame, which is where overload
        rejections land. Once a result frame is consumed a failure
        propagates: silently re-running a half-consumed stream could
        double-serve side-effect-sensitive callers.
        """
        request_body = self._stamp_trace(
            {"requests": self._encode(items)}
        )
        expires = self._expires(deadline)
        attempt = 0
        while True:
            try:
                framed = self._with_deadline(request_body, expires)
                try:
                    self._send_request("stream", framed)
                    kind, frame = self._read_response()
                except (FrameError, OSError):
                    self._drop_connection()
                    if not self.reconnect:
                        raise
                    self._send_request("stream", framed)
                    kind, frame = self._read_response()
                break
            except RetryAdvisedError as error:
                delay = self._retry_delay(
                    attempt, expires, error.retry_after_ms
                )
                if delay is None:
                    raise
            except (FrameError, OSError):
                self._drop_connection()
                if not self.reconnect:
                    raise
                delay = self._retry_delay(attempt, expires, None)
                if delay is None:
                    raise
            time.sleep(delay)
            attempt += 1
        count = 0
        while True:
            if kind == "end":
                declared = frame.get("count")
                if declared != count:
                    raise ServerError(
                        "bad-frame",
                        f"stream ended after {count} result(s) but "
                        f"declared {declared}",
                    )
                return
            body = self._expect_kind(kind, frame, "result")
            count += 1
            yield protocol.result_from_json(body["result"])
            kind, frame = self._read_response()

    # ------------------------------------------------------------------
    # Observability RPCs
    # ------------------------------------------------------------------
    def trace(self, trace_id: str | None = None) -> dict | None:
        """Fetch one finished request trace from the server.

        ``trace_id=None`` asks for this client's most recent workload
        request (``last_trace_id``) when one exists, else the server's
        latest trace. Returns the span tree dict, or None when the
        server traces nothing (``ObservabilityConfig(trace=False)``,
        the default) or the id was evicted from the ring buffer.
        """
        body: dict = {}
        wanted = trace_id or self.last_trace_id
        if wanted is not None:
            body["trace_id"] = wanted
        kind, frame = self._call("trace", body)
        return self._expect_kind(kind, frame, "trace").get("trace")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (all graphs)."""
        kind, frame = self._call("metrics", {})
        return self._expect_kind(kind, frame, "metrics")["text"]

    # ------------------------------------------------------------------
    # Graph mutation + resource RPCs
    # ------------------------------------------------------------------
    def mutate(self, ops: list[dict]) -> int:
        """Apply graph edits server-side; returns the new graph version.

        Each op is ``{"op": name, "args": [...]}`` with names from
        :data:`repro.serving.server.MUTATION_OPS`. The server applies
        them serialized against in-flight work; the session invalidates
        its derived state on the next request.
        """
        kind, frame = self._call("mutate", {"ops": ops})
        return self._expect_kind(kind, frame, "ok")["version"]

    def add_edge(
        self,
        source: str,
        target: str,
        weight: float = 1.0,
        relation: str = "",
    ) -> int:
        return self.mutate(
            [{"op": "add_edge", "args": [source, target, weight, relation]}]
        )

    def set_weight(self, source: str, target: str, weight: float) -> int:
        return self.mutate(
            [{"op": "set_weight", "args": [source, target, weight]}]
        )

    def remove_edge(self, source: str, target: str) -> int:
        return self.mutate([{"op": "remove_edge", "args": [source, target]}])

    def remove_node(self, node: str) -> int:
        return self.mutate([{"op": "remove_node", "args": [node]}])

    def release_pool(self) -> None:
        """Ask the server to drop this graph's pooled resources now."""
        kind, frame = self._call("release", {})
        self._expect_kind(kind, frame, "ok")

    def compact(self) -> dict:
        """Fold this graph's mutation journal into a fresh snapshot.

        Requires the server to host the graph with a ``state_dir``;
        returns the post-compaction journal stats.
        """
        kind, frame = self._call("compact", {})
        return self._expect_kind(kind, frame, "ok")

    def _encode(
        self, items: Iterable[SummaryRequest | SummaryTask]
    ) -> list[dict]:
        return [
            protocol.request_to_json(as_request(item)) for item in items
        ]
