"""Serving layer: scheduler, wire formats, and the network front door.

The in-process pieces, consumed by
:class:`repro.api.ExplanationSession`:

- :class:`SchedulerConfig` (:mod:`repro.serving.config`) — dispatch
  discipline ("work-stealing" / "chunked") and the elastic-pool bounds
  (``min_workers`` / ``max_workers``, grow pressure, idle shrink).
- :class:`ResilienceConfig` (:mod:`repro.serving.config`) — per-task
  retry budget, per-task deadline, and the worker-respawn circuit
  breaker governing supervised recovery.
- :class:`ElasticWorkerPool` (:mod:`repro.serving.pool`) — the shared
  task queue, per-task result pipe, steal accounting, grow/shrink
  machinery, and worker supervision (lease tracking, in-place
  respawn, per-task retry) over the shared-memory graph plane.
- :class:`Fault` / :class:`FaultPlan` (:mod:`repro.serving.faults`) —
  seeded, picklable fault directives (crash / hang / delay /
  malformed / overload) for deterministic chaos testing.
- :mod:`repro.serving.wire` — the compact edge-list result format
  (parent-CSR int arrays + weights) workers ship back instead of
  pickled subgraph objects.

The network tier, layered on top of the session:

- :mod:`repro.serving.frames` — length-prefixed frame transport with
  bounds checking (json default, msgpack optional).
- :class:`ExplanationServer` / :class:`ServerConfig` / helper
  :class:`ServerThread` (:mod:`repro.serving.server`) — the asyncio
  TCP front door: multi-tenant named sessions, admission control,
  per-task result streaming, mutation RPCs and an idle-pool reaper.
- :class:`ExplanationClient` (:mod:`repro.serving.client`) — the
  blocking client mirroring the session surface, with reconnect and
  typed :class:`ServerError` / :class:`OverloadedError` /
  :class:`ShuttingDownError` failures.
- :class:`GraphJournal` / :class:`MutationJournal`
  (:mod:`repro.serving.journal`) — the durability layer under
  ``ExplanationServer(state_dir=...)``: CRC-checksummed write-ahead
  log of mutation RPCs plus atomic snapshots, with
  :class:`JournalConfig` fsync policies, torn-tail recovery, typed
  :class:`JournalCorruption`, and journal-into-snapshot compaction.

The network-tier names are exported lazily (PEP 562): the session
imports this package's scheduler plumbing while the server imports the
session, so eager re-export would be circular.
"""

from repro.serving.config import (
    FSYNC_POLICIES,
    SCHEDULER_MODES,
    JournalConfig,
    ResilienceConfig,
    SchedulerConfig,
    static_chunks,
)
from repro.serving.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    SimulatedCrash,
)
from repro.serving.pool import ElasticWorkerPool
from repro.serving.wire import (
    WireExplanation,
    decode_explanation,
    encode_explanation,
)

#: Lazily exported network-tier names -> defining submodule.
_NETWORK_EXPORTS = {
    "ExplanationServer": "repro.serving.server",
    "ServerConfig": "repro.serving.server",
    "ServerThread": "repro.serving.server",
    "MUTATION_OPS": "repro.serving.server",
    "ExplanationClient": "repro.serving.client",
    "ServerError": "repro.serving.client",
    "RetryAdvisedError": "repro.serving.client",
    "OverloadedError": "repro.serving.client",
    "ShuttingDownError": "repro.serving.client",
    "GraphJournal": "repro.serving.journal",
    "MutationJournal": "repro.serving.journal",
    "JournalError": "repro.serving.journal",
    "JournalCorruption": "repro.serving.journal",
}

__all__ = [
    "FAULT_KINDS",
    "FSYNC_POLICIES",
    "SCHEDULER_MODES",
    "JournalConfig",
    "ElasticWorkerPool",
    "Fault",
    "FaultPlan",
    "ResilienceConfig",
    "SchedulerConfig",
    "SimulatedCrash",
    "WireExplanation",
    "decode_explanation",
    "encode_explanation",
    "static_chunks",
    *sorted(_NETWORK_EXPORTS),
]


def __getattr__(name: str):
    if name in _NETWORK_EXPORTS:
        import importlib

        module = importlib.import_module(_NETWORK_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(set(globals()) | set(_NETWORK_EXPORTS))
