"""Serving layer: the work-stealing scheduler behind the session API.

Three pieces, consumed by :class:`repro.api.ExplanationSession`:

- :class:`SchedulerConfig` (:mod:`repro.serving.config`) — dispatch
  discipline ("work-stealing" / "chunked") and the elastic-pool bounds
  (``min_workers`` / ``max_workers``, grow pressure, idle shrink).
- :class:`ElasticWorkerPool` (:mod:`repro.serving.pool`) — the shared
  task queue, per-task result pipe, steal accounting, and grow/shrink
  machinery over the shared-memory graph plane.
- :mod:`repro.serving.wire` — the compact edge-list result format
  (parent-CSR int arrays + weights) workers ship back instead of
  pickled subgraph objects.
"""

from repro.serving.config import (
    SCHEDULER_MODES,
    SchedulerConfig,
    static_chunks,
)
from repro.serving.pool import ElasticWorkerPool
from repro.serving.wire import (
    WireExplanation,
    decode_explanation,
    encode_explanation,
)

__all__ = [
    "SCHEDULER_MODES",
    "ElasticWorkerPool",
    "SchedulerConfig",
    "WireExplanation",
    "decode_explanation",
    "encode_explanation",
    "static_chunks",
]
