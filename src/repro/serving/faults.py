"""Deterministic fault injection for the serving stack.

Proving that the resilience layer works — leased tasks re-queued after
a worker crash, hung workers terminated at their deadline, malformed
result frames demoted to typed failures, overloaded clients backing
off — needs failures that happen *on demand, at a pinned task, every
run*. Killing random PIDs and racing ``sleep()`` calls cannot pin a
``SessionStats.worker_deaths == 1`` assertion; a seeded
:class:`FaultPlan` can.

A plan is a frozen, picklable set of :class:`Fault` directives keyed
by task index (or, server-side, request ordinal). The parent pool
threads the matching directive into each job envelope it submits
(:meth:`FaultPlan.for_task` also sees the attempt number, so a fault
with ``attempts=1`` fires on the first try and lets the retry
succeed — the supervised-recovery scenario — while ``attempts`` large
keeps firing until the retry budget is spent — the typed-failure
scenario). Workers apply their directive *after* posting the lease
message, so the parent always knows which task died with the worker.

Fault kinds
-----------
- ``"crash"`` — the worker hard-exits (``os._exit``) while holding the
  task's lease, after a short grace so the queue feeder thread flushes
  the lease message. Models OOM kills / segfaults.
- ``"hang"`` — the worker sleeps ``seconds`` (default far past any
  deadline) before computing. Models wedged workers; the pool's
  deadline monitor terminates it.
- ``"delay"`` — the worker sleeps ``seconds`` then computes normally.
  Models slow tasks; server-side, delays one request's handling so
  deadline expiry is testable without luck.
- ``"malformed"`` — the worker computes but posts an undecodable
  result payload. Models codec/transport corruption; the parent
  demotes it to a typed ``TaskFailure(cause="error")``.
- ``"overload"`` — server loop only: the matching request is rejected
  with a typed ``overloaded`` frame (and its ``retry_after_ms`` hint)
  regardless of actual queue depth, so client backoff is testable
  deterministically.
- ``"kill-server"`` — server loop only: the matching workload request
  aborts the whole server process state hard (listening socket and
  every connection dropped, no drain, no journal flush beyond what is
  already durable) — the in-process stand-in for ``kill -9`` that
  makes snapshot + journal recovery testable deterministically.
- ``"torn-write"`` — journal only: the append at the matching record
  ordinal writes only a prefix of its record bytes and then simulates
  a crash (:class:`SimulatedCrash`), leaving a torn tail that recovery
  must truncate back to the last complete record.
- ``"truncated-journal"`` — journal only: the append at the matching
  ordinal completes, then the file loses its final ``seconds``-as-bytes
  tail (default 1 byte) before the simulated crash — the
  lost-unsynced-page shape of power loss. The un-acked record must
  vanish on recovery without poisoning the records before it.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

#: Every directive kind a plan may carry. Workers apply the first
#: three; "malformed" corrupts the result payload post-compute;
#: "overload" and "kill-server" are consulted only by the server loop;
#: "torn-write" and "truncated-journal" only by the mutation journal.
FAULT_KINDS = (
    "crash",
    "hang",
    "delay",
    "malformed",
    "overload",
    "kill-server",
    "torn-write",
    "truncated-journal",
)


class SimulatedCrash(RuntimeError):
    """An injected journal fault 'killed the process' at this point.

    Raised by :class:`~repro.serving.journal.MutationJournal` appends
    hit by a ``torn-write`` / ``truncated-journal`` directive after the
    on-disk damage is done: the journal closes itself first, so — like
    a real crash — nothing else can be written past the damage, and
    the next open exercises recovery.
    """

#: Grace before a "crash" hard-exits: long enough for the queue feeder
#: thread to flush the already-posted lease message to the parent.
CRASH_FLUSH_SECONDS = 0.2

#: Default "hang" duration when none is given — far past any sane
#: task deadline, so an unarmed monitor is an obvious test failure
#: (timeout) instead of a silent pass.
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class Fault:
    """One injected failure, pinned to a task index (or request ordinal).

    ``attempts`` bounds how many tries of the task the fault fires on:
    the default 1 fires only on the first attempt (``attempt == 0``),
    so a retried task succeeds — the recovery scenario. A larger value
    keeps firing through retries until the budget is spent.
    """

    kind: str
    at: int
    seconds: float = 0.0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError("fault 'at' must be >= 0")
        if self.seconds < 0:
            raise ValueError("fault 'seconds' must be >= 0")
        if self.attempts < 1:
            raise ValueError("fault 'attempts' must be >= 1")

    def apply_in_worker(self) -> None:
        """Execute the pre-compute side of this fault inside a worker.

        Called after the lease message is posted. "crash" never
        returns; "hang"/"delay" sleep (a hang is terminated by the
        parent's deadline monitor mid-sleep); "malformed"/"overload"
        are no-ops here (handled post-compute / server-side).
        """
        if self.kind == "crash":
            time.sleep(max(self.seconds, CRASH_FLUSH_SECONDS))
            os._exit(1)
        elif self.kind == "hang":
            time.sleep(self.seconds or HANG_SECONDS)
        elif self.kind == "delay":
            time.sleep(self.seconds)

    def corrupt(self, payload):
        """The "malformed" post-compute step: an undecodable payload."""
        return ("corrupt-result-frame", self.kind, self.at)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of fault directives for one run.

    ``seed`` documents (and, via :meth:`scatter`, produces) the plan's
    randomness; two plans built from the same seed and shape are equal,
    so a failing chaos test names everything needed to replay it.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_task(self, index: int, attempt: int = 0) -> Fault | None:
        """The directive armed for this (task, attempt), if any.

        First match wins; a fault stops firing once ``attempt`` reaches
        its ``attempts`` budget.
        """
        for fault in self.faults:
            if fault.at == index and attempt < fault.attempts:
                return fault
        return None

    def for_request(self, ordinal: int) -> Fault | None:
        """Server-loop lookup: faults keyed by request arrival ordinal."""
        return self.for_task(ordinal, 0)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def scatter(
        cls,
        seed: int,
        num_tasks: int,
        *,
        crashes: int = 0,
        hangs: int = 0,
        hang_seconds: float = HANG_SECONDS,
    ) -> "FaultPlan":
        """Scatter crash/hang faults over distinct task indices.

        The selection is drawn from ``random.Random(seed)`` only, so
        the same (seed, num_tasks, crashes, hangs) always yields the
        same plan — what lets the resilience benchmark compare 0/1/2
        injected crashes on identical workloads.
        """
        wanted = crashes + hangs
        if wanted > num_tasks:
            raise ValueError(
                f"cannot scatter {wanted} fault(s) over {num_tasks} task(s)"
            )
        picks = random.Random(seed).sample(range(num_tasks), wanted)
        faults = tuple(
            Fault(kind="crash", at=index) for index in picks[:crashes]
        ) + tuple(
            Fault(kind="hang", at=index, seconds=hang_seconds)
            for index in picks[crashes:]
        )
        return cls(faults=faults, seed=seed)
