"""Length-prefixed frame transport for the network serving tier.

One frame = a 4-byte big-endian unsigned length prefix (``!I``)
followed by exactly that many payload bytes. The payload is an encoded
:mod:`repro.api.protocol` envelope; this module only moves bytes and
enforces the two transport-level invariants the protocol's error codes
name:

- ``frame-too-large`` — a peer declaring a length above the receiver's
  bound is rejected *before* any payload is read
  (:class:`FrameTooLarge`), so a hostile or confused peer cannot make
  the receiver buffer gigabytes.
- a stream that ends mid-frame (connection cut between prefix and
  payload, or inside the prefix after at least one byte) raises
  :class:`TruncatedFrame` — distinct from a clean EOF *between* frames,
  which reads as ``None`` / ``ConnectionClosed`` and means the peer
  simply hung up.

Payload encoding is pluggable via :func:`get_codec`: ``"json"`` (always
available, UTF-8) and ``"msgpack"`` when the optional dependency is
installed — the import is gated so the serving tier works on bare
installs, and asking for msgpack without it raises an actionable error
instead of an ImportError mid-connection.

Both sync (blocking socket; the client) and asyncio (StreamReader /
StreamWriter; the server) read/write pairs are provided, sharing the
same bounds checking.
"""

from __future__ import annotations

import json
import socket
import struct
from asyncio import IncompleteReadError, StreamReader, StreamWriter

#: Frame length prefix: 4-byte big-endian unsigned int.
_PREFIX = struct.Struct("!I")

#: Default cap on a single frame's payload. A whole-batch report for
#: thousands of tasks fits comfortably; anything larger is almost
#: certainly a confused or hostile peer.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(ConnectionError):
    """Base class for transport-level framing failures."""


class FrameTooLarge(FrameError):
    """A peer declared (or asked us to send) an over-bound frame."""

    def __init__(self, declared: int, bound: int) -> None:
        super().__init__(
            f"frame of {declared} bytes exceeds the {bound}-byte bound"
        )
        self.declared = declared
        self.bound = bound


class TruncatedFrame(FrameError):
    """The stream ended partway through a frame."""


class ConnectionClosed(FrameError):
    """Clean EOF between frames — the peer hung up."""


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
class _JsonCodec:
    name = "json"

    @staticmethod
    def encode(obj: dict) -> bytes:
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def decode(payload: bytes) -> dict:
        return json.loads(payload.decode("utf-8"))


class _MsgpackCodec:
    name = "msgpack"

    def __init__(self) -> None:
        import msgpack  # gated: optional dependency

        self._packb = msgpack.packb
        self._unpackb = msgpack.unpackb

    def encode(self, obj: dict) -> bytes:
        return self._packb(obj, use_bin_type=True)

    def decode(self, payload: bytes) -> dict:
        return self._unpackb(payload, raw=False)


#: Codec names accepted by :func:`get_codec`.
CODECS = ("json", "msgpack")


def get_codec(name: str):
    """Resolve a payload codec by name; availability-checked."""
    if name == "json":
        return _JsonCodec()
    if name == "msgpack":
        try:
            return _MsgpackCodec()
        except ImportError as error:
            raise ValueError(
                "codec 'msgpack' requires the optional msgpack package "
                "(not installed); use codec='json'"
            ) from error
    raise ValueError(f"unknown codec {name!r}; choose from {CODECS}")


def _check_outbound(payload: bytes, max_bytes: int) -> bytes:
    if len(payload) > max_bytes:
        raise FrameTooLarge(len(payload), max_bytes)
    return _PREFIX.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# Blocking socket I/O (client side)
# ----------------------------------------------------------------------
def write_frame(
    sock: socket.socket, payload: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(_check_outbound(payload, max_bytes))


def read_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Receive one frame from a blocking socket.

    Raises :class:`ConnectionClosed` on clean EOF before any prefix
    byte, :class:`TruncatedFrame` if the stream dies mid-frame, and
    :class:`FrameTooLarge` on an over-bound declared length.
    """
    prefix = _recv_exactly(sock, _PREFIX.size, at_boundary=True)
    (length,) = _PREFIX.unpack(prefix)
    if length > max_bytes:
        raise FrameTooLarge(length, max_bytes)
    return _recv_exactly(sock, length, at_boundary=False)


def _recv_exactly(
    sock: socket.socket, count: int, at_boundary: bool
) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise TruncatedFrame(
                f"stream ended {remaining} byte(s) short of a "
                f"{count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Asyncio stream I/O (server side)
# ----------------------------------------------------------------------
async def write_frame_async(
    writer: StreamWriter, payload: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Send one frame over an asyncio stream (drains the buffer)."""
    writer.write(_check_outbound(payload, max_bytes))
    await writer.drain()


async def read_frame_async(
    reader: StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Receive one frame from an asyncio stream (same errors as sync)."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except IncompleteReadError as error:
        if not error.partial:
            raise ConnectionClosed("peer closed the connection") from None
        raise TruncatedFrame(
            "stream ended inside a frame length prefix"
        ) from None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_bytes:
        raise FrameTooLarge(length, max_bytes)
    try:
        return await reader.readexactly(length)
    except IncompleteReadError:
        raise TruncatedFrame(
            f"stream ended inside a {length}-byte frame payload"
        ) from None
