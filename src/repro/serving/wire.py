"""Compact worker→parent wire format for summary explanations.

Process-backend workers used to ship each result back as a pickled
:class:`~repro.core.explanation.SubgraphExplanation` — a dict-of-dicts
subgraph whose every node id travels as a Python string object, plus a
redundant copy of the task the parent already holds. Since worker and
parent attach the *same* exported frozen view, node identity can travel
as dense CSR integers instead:

- nodes: one ``array('q')`` of parent-CSR indices, in the subgraph's
  insertion order;
- adjacency: a local CSR (offsets / targets / weights) over positions
  into that node list, rows and row entries in the original dict
  insertion order;
- names / relations: side tables by local position, with relation
  strings deduplicated through a tiny vocabulary.

Rehydration (:func:`decode_explanation`) rebuilds the adjacency dict
directly from those rows — the same replay technique
:func:`repro.graph.shared.attach_knowledge_graph` uses — so the decoded
subgraph is bit-identical to the worker's: same node order, same
neighbor order inside every row, same names/relations insertion order,
same edge count and mutation counter. The task is *not* shipped at all;
the parent re-attaches its own copy, which is equal by construction.

Explanations whose subgraph mentions a node outside the frozen view
(possible only for exotic custom methods) fall back to the pickled
object — :func:`encode_explanation` returns the explanation itself and
:func:`decode_explanation` passes it through.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import SummaryTask
from repro.graph.csr import FrozenGraph
from repro.graph.knowledge_graph import KnowledgeGraph


@dataclass(frozen=True)
class WireExplanation:
    """One summary explanation as flat arrays over parent-CSR node ids."""

    #: Parent-CSR index of each subgraph node, insertion order.
    nodes: array
    #: Local CSR over positions into ``nodes`` (symmetric adjacency).
    offsets: array
    targets: array
    weights: array
    #: ``(position, display name)`` pairs, insertion order.
    names: tuple[tuple[int, str], ...]
    #: ``(position_a, position_b, vocab index)`` triples, insertion order.
    relations: tuple[tuple[int, int, int], ...]
    relation_vocab: tuple[str, ...]
    num_edges: int
    version: int
    method: str
    params: dict


def encode_explanation(
    explanation: SubgraphExplanation, frozen: FrozenGraph
) -> WireExplanation | SubgraphExplanation:
    """Flatten an explanation into arrays of parent-CSR node indices.

    Returns the explanation itself (pickled-object fallback) when any
    subgraph node is missing from the frozen view.
    """
    subgraph = explanation.subgraph
    index = frozen._index
    positions: dict[str, int] = {}
    nodes = array("q")
    for node in subgraph.nodes():
        slot = index.get(node)
        if slot is None:
            return explanation
        positions[node] = len(positions)
        nodes.append(slot)
    offsets = array("q", [0])
    targets = array("q")
    weights = array("d")
    for node in subgraph.nodes():
        for neighbor, weight in subgraph.neighbors(node).items():
            targets.append(positions[neighbor])
            weights.append(weight)
        offsets.append(len(targets))
    names = tuple(
        (positions[node], name) for node, name in subgraph._names.items()
    )
    vocab: dict[str, int] = {}
    relations = tuple(
        (positions[a], positions[b], vocab.setdefault(rel, len(vocab)))
        for (a, b), rel in subgraph._relations.items()
    )
    return WireExplanation(
        nodes=nodes,
        offsets=offsets,
        targets=targets,
        weights=weights,
        names=names,
        relations=relations,
        relation_vocab=tuple(vocab),
        num_edges=subgraph.num_edges,
        version=subgraph.version,
        method=explanation.method,
        params=dict(explanation.params),
    )


def decode_explanation(
    payload: WireExplanation | SubgraphExplanation,
    frozen: FrozenGraph,
    task: SummaryTask,
) -> SubgraphExplanation:
    """Rehydrate a wire payload against the parent's frozen view.

    The adjacency dict is rebuilt row by row in the encoded order, so
    iteration order (nodes, per-row neighbors, names, relations) is
    bit-identical to the worker-side original; ``task`` is the parent's
    own copy of the request's task.
    """
    if isinstance(payload, SubgraphExplanation):
        return payload
    ids = frozen.ids
    local = [ids[i] for i in payload.nodes]
    offsets, targets, weights = (
        payload.offsets,
        payload.targets,
        payload.weights,
    )
    adjacency: dict[str, dict[str, float]] = {}
    for position, node in enumerate(local):
        row = {}
        for slot in range(offsets[position], offsets[position + 1]):
            row[local[targets[slot]]] = weights[slot]
        adjacency[node] = row
    subgraph = KnowledgeGraph()
    subgraph._adjacency = adjacency
    subgraph._names = {local[p]: name for p, name in payload.names}
    subgraph._relations = {
        (local[pa], local[pb]): payload.relation_vocab[r]
        for pa, pb, r in payload.relations
    }
    subgraph._num_edges = payload.num_edges
    subgraph._version = payload.version
    return SubgraphExplanation(
        subgraph=subgraph,
        task=task,
        method=payload.method,
        params=dict(payload.params),
    )
