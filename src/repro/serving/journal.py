"""Crash-safe graph state: mutation write-ahead log + snapshots.

PR 7 made the *workers* fault-tolerant; the server process itself was
still a single point of total state loss — every mutation RPC applied
over the wire lived only in the hosting process's heap. This module is
the durability layer under :class:`repro.serving.server.ExplanationServer`
(``state_dir=``): every accepted mutation is journaled *before* it is
acknowledged, so an acknowledged edit survives ``kill -9``; startup
replays snapshot + journal tail back to a bit-identical graph.

Layout (one directory per hosted graph name)::

    <state_dir>/<graph-name>/snapshot.json   atomic, whole-graph state
    <state_dir>/<graph-name>/journal.wal     append-only mutation log

**Snapshot.** The order-preserving
:func:`repro.api.protocol.graph_state_to_json` codec (NOT the sorting
``repro.graph.io`` file codec): a recovered graph has the same node
insertion order, neighbor order, name/relation tables and mutation
``version`` counter as the pre-crash live graph — so its frozen CSR
arrays, and therefore every tie-break downstream, are bit-identical.
Snapshots are written to a temp file, fsynced, and ``os.replace``\\ d
into place, so a crash mid-snapshot leaves the previous one intact.

**Journal.** Length-prefixed, CRC-checksummed records::

    !II header = (payload_bytes, crc32(payload)) + payload

where the payload is the UTF-8 JSON of ``{"version": v, "ops": [...]}``
— ``ops`` in exactly the shape the ``mutate`` RPC carries
(``{"op": name, "args": [...]}``, names from :data:`MUTATION_OPS`) and
``v`` the graph's version *before* the record applies. The stored
version is what makes compaction crash-safe: recovery skips records
already folded into the snapshot (``record version < snapshot
version``) and refuses a journal that does not continue from the
snapshot (a gap is a typed :class:`JournalError`).

**Failure tolerance is asymmetric by design.** A *torn tail* — the
file ends inside a record's header or payload, the shape a crash
mid-``write()`` (or a lost unsynced page) produces — is expected:
recovery truncates back to the last complete record and the journal
resumes appending there. A *corrupt mid-file record* — full length
present, CRC mismatch, more data after it — means storage damage, not
a crash, and raises the typed :class:`JournalCorruption` instead of
silently dropping acknowledged history.

**Fsync policy** (:class:`repro.serving.config.JournalConfig`):
``"always"`` fsyncs before every ack (survives power loss),
``"interval"`` batches fsyncs (bounded loss window), ``"never"``
trusts the OS page cache (survives process death only).

**Compaction** folds the journal into a fresh snapshot — snapshot
first, truncate after, so a crash between the two replays into the
version-skip path instead of double-applying.

Deterministic chaos: a :class:`~repro.serving.faults.FaultPlan` keyed
on append ordinal can injure the journal on purpose — ``"torn-write"``
stops an append halfway through its record bytes, ``"truncated-journal"``
chops the tail off a completed append — then raises
:class:`~repro.serving.faults.SimulatedCrash` with the journal closed,
so recovery of exactly that damage is pinned in tests.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.api import protocol
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.obs.registry import exponential_buckets, get_registry
from repro.serving.config import JournalConfig
from repro.serving.faults import FaultPlan, SimulatedCrash

#: Durability instruments (process-wide; cheap enough to record
#: unconditionally — one histogram observe per actual fsync).
_JOURNAL_FSYNC_SECONDS = get_registry().histogram(
    "repro_journal_fsync_seconds",
    "Wall-clock cost of each journal fsync",
    buckets=exponential_buckets(start=0.0001, count=14),
)
_JOURNAL_APPENDS = get_registry().counter(
    "repro_journal_appends_total",
    "Mutation records durably appended to the journal",
)

#: Graph mutation RPC ops -> KnowledgeGraph method names. Every one
#: bumps the graph version. (Defined here — the journal replays them —
#: and re-exported by :mod:`repro.serving.server`, which validates the
#: same table on the wire.)
MUTATION_OPS = {
    "add_edge": "add_edge",
    "remove_edge": "remove_edge",
    "remove_node": "remove_node",
    "set_weight": "set_weight",
    "set_name": "set_name",
    "add_node": "add_node",
}

#: Journal record header: payload byte count + CRC32 of the payload.
_HEADER = struct.Struct("!II")

#: On-disk file names inside a graph's state directory.
SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.wal"

#: Snapshot file format generation (independent of the wire protocol;
#: bumped only if the snapshot layout itself changes incompatibly).
SNAPSHOT_FORMAT = 1


class JournalError(RuntimeError):
    """Base class for durability-layer failures."""


class JournalCorruption(JournalError):
    """A complete mid-file record failed its CRC (or is undecodable).

    Distinct from a torn *tail*, which recovery silently truncates:
    a corrupt record with valid data after it means the acknowledged
    history is damaged, and silently skipping it would replay a graph
    that never existed. ``offset`` / ``ordinal`` locate the damage.
    """

    def __init__(self, message: str, *, offset: int, ordinal: int) -> None:
        super().__init__(
            f"{message} (record {ordinal} at byte {offset})"
        )
        self.offset = offset
        self.ordinal = ordinal


def apply_mutations(graph: KnowledgeGraph, ops: list[dict]) -> int:
    """Apply wire-shape mutation ops to ``graph``; returns the version.

    Ops are applied strictly in order and the first failing op raises —
    leaving the prefix applied, exactly like the live ``mutate`` RPC
    path. Replay leans on that equivalence: a record whose apply failed
    live fails at the same op with the same prefix applied on replay.
    """
    for op in ops:
        method = MUTATION_OPS.get(op.get("op"))
        if method is None:
            raise ValueError(f"unknown mutation op {op.get('op')!r}")
        getattr(graph, method)(*op.get("args", []))
    return graph.version


# ----------------------------------------------------------------------
# Journal scanning (recovery read path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalScan:
    """What a journal file held: decoded records + tail accounting."""

    records: tuple[dict, ...]
    clean_bytes: int      # file offset after the last complete record
    torn_bytes: int       # bytes of torn tail discarded past it


def scan_journal(path: str | os.PathLike) -> JournalScan:
    """Read every complete record; tolerate a torn tail.

    A file ending inside a header or payload is the expected crash
    shape: scanning stops at the last complete record and reports the
    torn remainder. A *complete* record whose CRC mismatches — or whose
    payload is not the expected JSON object — raises
    :class:`JournalCorruption` regardless of position: unlike a torn
    tail it cannot be explained by an interrupted append.
    """
    try:
        blob = Path(path).read_bytes()
    except FileNotFoundError:
        return JournalScan(records=(), clean_bytes=0, torn_bytes=0)
    records: list[dict] = []
    offset = 0
    while True:
        if offset + _HEADER.size > len(blob):
            break  # torn (or clean EOF): no complete header
        length, checksum = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        if start + length > len(blob):
            break  # torn: payload shorter than declared
        payload = blob[start : start + length]
        if zlib.crc32(payload) != checksum:
            raise JournalCorruption(
                "journal record failed its CRC check",
                offset=offset,
                ordinal=len(records),
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise JournalCorruption(
                f"journal record is undecodable ({error})",
                offset=offset,
                ordinal=len(records),
            ) from None
        if not isinstance(record, dict) or "ops" not in record:
            raise JournalCorruption(
                "journal record is not a mutation record",
                offset=offset,
                ordinal=len(records),
            )
        records.append(record)
        offset = start + length
    return JournalScan(
        records=tuple(records),
        clean_bytes=offset,
        torn_bytes=len(blob) - offset,
    )


def encode_record(version: int, ops: list[dict]) -> bytes:
    """One framed journal record (header + checksummed JSON payload)."""
    payload = json.dumps(
        {"version": version, "ops": ops}, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# ----------------------------------------------------------------------
# Append path
# ----------------------------------------------------------------------
class MutationJournal:
    """Append-only CRC-checksummed mutation log for one graph.

    Opening truncates any torn tail left by a crash (after
    :func:`scan_journal` validated everything before it), then appends
    resume at the last complete record. ``faults`` arms deterministic
    ``torn-write`` / ``truncated-journal`` injection keyed on the
    append ordinal (records already in the file count first).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "always",
        fsync_interval_seconds: float = 1.0,
        faults: FaultPlan | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        self._faults = faults
        scan = scan_journal(self.path)
        self.records = len(scan.records)
        self.recovered_torn_bytes = scan.torn_bytes
        self._fh = open(self.path, "ab")
        if scan.torn_bytes:
            # Truncate the torn tail so new appends start at a record
            # boundary; the damage is accounted, not silently absorbed.
            self._fh.truncate(scan.clean_bytes)
            self._fh.seek(scan.clean_bytes)
        self._last_sync = time.monotonic()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    @property
    def size_bytes(self) -> int:
        self._fh.flush()
        return self.path.stat().st_size

    def append(self, version: int, ops: list[dict]) -> int:
        """Durably append one mutation record; returns its ordinal.

        Durability follows the fsync policy; on return (without a
        simulated-crash injection) the record is at least in the OS
        page cache, and under ``"always"`` on stable storage.
        """
        if self._fh.closed:
            raise JournalError("journal is closed")
        ordinal = self.records
        frame = encode_record(version, ops)
        fault = (
            self._faults.for_request(ordinal)
            if self._faults is not None
            else None
        )
        if fault is not None and fault.kind == "torn-write":
            # Crash mid-write(): a prefix of the record reaches the
            # file, then the process "dies". Recovery must truncate it.
            self._fh.write(frame[: max(1, len(frame) // 2)])
            self._fh.flush()
            self._fh.close()
            raise SimulatedCrash(
                f"torn-write fault at journal record {ordinal}"
            )
        self._fh.write(frame)
        if fault is not None and fault.kind == "truncated-journal":
            # Power loss after a full write(): the tail page never hit
            # the platter. Chop `seconds`-as-bytes off the end.
            self._fh.flush()
            lost = max(1, int(fault.seconds) or 1)
            size = self.path.stat().st_size
            self._fh.truncate(max(0, size - lost))
            self._fh.close()
            raise SimulatedCrash(
                f"truncated-journal fault at journal record {ordinal}"
            )
        self._sync()
        self.records += 1
        _JOURNAL_APPENDS.inc()
        return ordinal

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync_policy == "always":
            self._timed_fsync()
            self._last_sync = time.monotonic()
        elif self.fsync_policy == "interval":
            now = time.monotonic()
            if now - self._last_sync >= self.fsync_interval_seconds:
                self._timed_fsync()
                self._last_sync = now

    def _timed_fsync(self) -> None:
        start = time.perf_counter()
        os.fsync(self._fh.fileno())
        _JOURNAL_FSYNC_SECONDS.observe(time.perf_counter() - start)

    def flush(self) -> None:
        """Force everything appended so far to stable storage."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._last_sync = time.monotonic()

    def reset(self) -> None:
        """Drop every record (post-compaction: the snapshot owns them)."""
        if self._fh.closed:
            raise JournalError("journal is closed")
        self._fh.truncate(0)
        self._fh.seek(0)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records = 0

    def close(self) -> None:
        """Flush to stable storage and close (idempotent)."""
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def abort(self) -> None:
        """Close *without* the final fsync (simulated hard kill).

        Every append already flushed its bytes to the OS, so — like a
        real ``kill -9``, which keeps the page cache — nothing buffered
        is lost here; what differs from :meth:`close` is only that
        unsynced pages were never forced to the platter.
        """
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def write_snapshot(path: str | os.PathLike, graph: KnowledgeGraph) -> None:
    """Atomically replace ``path`` with a snapshot of ``graph``.

    Write to a sibling temp file, fsync it, then ``os.replace`` — a
    crash at any point leaves either the old snapshot or the new one,
    never a half-written file. The directory is fsynced afterwards so
    the rename itself is durable.
    """
    path = Path(path)
    tmp = path.with_suffix(".tmp")
    body = json.dumps(
        {
            "format": SNAPSHOT_FORMAT,
            "graph": protocol.graph_state_to_json(graph),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    with open(tmp, "wb") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_snapshot(path: str | os.PathLike) -> KnowledgeGraph | None:
    """Load a snapshot; None when absent, :class:`JournalError` on junk."""
    try:
        blob = Path(path).read_bytes()
    except FileNotFoundError:
        return None
    try:
        data = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise JournalError(f"snapshot {path} is undecodable ({error})")
    if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
        raise JournalError(
            f"snapshot {path} has unsupported format "
            f"{data.get('format') if isinstance(data, dict) else data!r}"
        )
    try:
        return protocol.graph_state_from_json(data["graph"])
    except (KeyError, protocol.ProtocolError) as error:
        raise JournalError(f"snapshot {path} is malformed ({error})")


# ----------------------------------------------------------------------
# Per-graph store: snapshot + journal + recovery + compaction
# ----------------------------------------------------------------------
class GraphJournal:
    """One hosted graph's durable state directory.

    Construction recovers: the snapshot (or, on first boot, the seed
    graph — which is immediately snapshotted) plus every complete
    journal record on top. The recovered graph is bit-identical to the
    pre-crash live graph: same iteration orders, same version counter.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        seed: KnowledgeGraph,
        config: JournalConfig | None = None,
        *,
        faults: FaultPlan | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config if config is not None else JournalConfig()
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.journal_path = self.directory / JOURNAL_NAME
        graph = load_snapshot(self.snapshot_path)
        if graph is None:
            graph = seed
            write_snapshot(self.snapshot_path, graph)
        scan = scan_journal(self.journal_path)
        self.replayed_records = 0
        for ordinal, record in enumerate(scan.records):
            version = record.get("version")
            if not isinstance(version, int) or isinstance(version, bool):
                raise JournalCorruption(
                    "journal record carries no version",
                    offset=-1,
                    ordinal=ordinal,
                )
            if version < graph.version:
                continue  # already folded into the snapshot (compaction)
            if version > graph.version:
                raise JournalError(
                    f"journal does not continue from the snapshot: "
                    f"record {ordinal} expects graph version {version}, "
                    f"snapshot replayed to {graph.version}"
                )
            try:
                apply_mutations(graph, record["ops"])
            except (KeyError, ValueError, TypeError):
                # The live apply failed at the same op with the same
                # prefix applied; the replayed state already matches.
                pass
            self.replayed_records += 1
        #: The recovered (now live) graph this store journals for.
        self.graph = graph
        self.journal = MutationJournal(
            self.journal_path,
            fsync=self.config.fsync,
            fsync_interval_seconds=self.config.fsync_interval_seconds,
            faults=faults,
        )
        self.recovered_torn_bytes = self.journal.recovered_torn_bytes
        self.compactions = 0

    # -- write path ----------------------------------------------------
    def record(self, ops: list[dict]) -> int:
        """Journal one mutation batch *before* it is applied/acked."""
        return self.journal.append(self.graph.version, ops)

    def apply(self, ops: list[dict]) -> int:
        """Write-ahead then apply: the journaled-before-ack contract."""
        self.record(ops)
        return apply_mutations(self.graph, ops)

    def maybe_compact(self) -> bool:
        """Auto-compact once the journal crosses the configured bound."""
        every = self.config.compact_every_records
        if every and self.journal.records >= every:
            self.compact()
            return True
        return False

    def compact(self) -> None:
        """Fold the journal into a fresh snapshot.

        Snapshot first, truncate after: a crash between the two leaves
        records whose stored versions predate the new snapshot, which
        recovery skips — never a window where mutations exist nowhere.
        """
        write_snapshot(self.snapshot_path, self.graph)
        self.journal.reset()
        self.compactions += 1

    def close(self) -> None:
        """Flush the journal to stable storage and release the handle."""
        self.journal.close()

    def abort(self) -> None:
        """Drop the journal handle without flushing (simulated kill)."""
        self.journal.abort()

    # -- introspection (health op / tests) -----------------------------
    def stats(self) -> dict:
        return {
            "journal_records": self.journal.records,
            "replayed_records": self.replayed_records,
            "recovered_torn_bytes": self.recovered_torn_bytes,
            "compactions": self.compactions,
            "version": self.graph.version,
        }
