"""Scheduler and resilience configuration for the serving layer.

One frozen dataclass governs *how a batch's tasks reach workers* —
orthogonal to :class:`repro.api.ParallelConfig`, which picks the backend
(serial / threads / processes) and the nominal pool size. The scheduler
decides what happens once a backend is chosen:

- ``mode="work-stealing"`` (default): every task goes into one shared
  queue and each worker pulls the next task the moment it is free, so a
  slow group task occupies exactly one worker instead of stalling a
  whole pre-assigned chunk. Under the process backend this also enables
  the elastic pool (grow under queue pressure, shrink back on idle) and
  per-task result streaming.
- ``mode="chunked"``: the pre-scheduler behavior — tasks are split into
  static ``ceil(n / (4 * workers))`` chunks submitted as indivisible
  units. Kept as the fallback for spawn-constrained platforms (one
  worker round-trip per chunk instead of per task) and as the baseline
  the work-stealing CI gate measures against.

A second frozen dataclass, :class:`ResilienceConfig`, governs *what
happens when workers misbehave* on the work-stealing process backend:
how many times a crashed or timed-out task is re-queued before it
fails individually (as a typed
:class:`~repro.core.batch.TaskFailure`), how long a single task may
run before its worker is terminated and replaced, and how many worker
respawns the pool tolerates before tripping the circuit breaker back
to the session's whole-batch local fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Valid dispatch disciplines.
SCHEDULER_MODES = ("work-stealing", "chunked")


@dataclass(frozen=True)
class SchedulerConfig:
    """How batch tasks are handed to workers.

    Parameters
    ----------
    mode:
        "work-stealing" (shared task queue, per-task pulls, elastic
        pool, per-task streaming — the default) or "chunked" (static
        chunk dispatch, the legacy discipline).
    min_workers:
        Elastic-pool floor: idle shrink never retires below this many
        workers (process backend, work-stealing mode only).
    max_workers:
        Elastic-pool ceiling. 0 (default) means "the larger of the
        initial pool size and the CPU count" — so a pool pinned below
        the core count may grow toward the hardware under pressure,
        while a pool already at (or above) core count never grows.
    grow_pressure:
        Grow one worker whenever the estimated queue backlog (submitted
        minus finished minus one in-flight task per worker) exceeds
        ``grow_pressure * current_workers`` and the pool is below
        ``max_workers``.
    shrink_idle_seconds:
        Idle workers are retired once the pool has been idle (no task
        finished, none outstanding) at least this long. Shrinking
        happens at the next dispatch — down to the larger of
        ``min_workers`` and that dispatch's own batch size, so a warm
        worker is never retired just to be regrown for the jobs
        arriving in the same call; the pool has no background timer
        thread.
    """

    mode: str = "work-stealing"
    min_workers: int = 1
    max_workers: int = 0
    grow_pressure: float = 2.0
    shrink_idle_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler mode {self.mode!r}; expected one of "
                f"{SCHEDULER_MODES}"
            )
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = auto)")
        if self.max_workers and self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.grow_pressure <= 0:
            raise ValueError("grow_pressure must be positive")
        if self.shrink_idle_seconds < 0:
            raise ValueError("shrink_idle_seconds must be >= 0")


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-task blast radius under the work-stealing process backend.

    Parameters
    ----------
    max_task_retries:
        How many times a task whose worker crashed (or blew its
        deadline) is re-queued onto a replacement worker before it
        fails *individually* — surfacing as a
        :class:`~repro.core.batch.TaskFailure` on its
        :class:`~repro.core.batch.BatchResult` while every other task
        completes normally. 0 fails the task on its first crash.
    task_timeout_seconds:
        Per-task deadline: a worker holding one task's lease longer
        than this is terminated and replaced, and the task is retried
        or failed with cause ``"timeout"``. 0 (default) disables the
        deadline monitor.
    max_worker_respawns:
        Circuit breaker: total replacement workers the pool will spawn
        over its lifetime before deciding the environment itself is
        broken and raising ``BrokenProcessPool`` (which the session
        demotes to its local fallback, exactly as before supervision
        existed). 0 disables supervision entirely — the first dead
        worker breaks the pool, the legacy behavior.
    isolate_errors:
        When True, a task-level exception inside a worker becomes a
        ``TaskFailure(cause="error")`` on that task's result instead
        of raising in the parent and failing the whole batch. Default
        False preserves the historical raise-through contract.
    """

    max_task_retries: int = 2
    task_timeout_seconds: float = 0.0
    max_worker_respawns: int = 8
    isolate_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.task_timeout_seconds < 0:
            raise ValueError("task_timeout_seconds must be >= 0 (0 = off)")
        if self.max_worker_respawns < 0:
            raise ValueError("max_worker_respawns must be >= 0 (0 = off)")


#: Valid journal fsync disciplines.
FSYNC_POLICIES = ("always", "interval", "never")


@dataclass(frozen=True)
class JournalConfig:
    """Durability knobs for the server's mutation journal.

    Parameters
    ----------
    fsync:
        When appended records are forced to stable storage. ``"always"``
        (default) fsyncs before every mutation is acknowledged — the
        ack then survives ``kill -9`` and power loss, at one disk flush
        per mutation. ``"interval"`` flushes to the OS per record but
        fsyncs at most every ``fsync_interval_seconds`` (and on
        close/compaction) — bounded data loss, much cheaper under
        mutation bursts. ``"never"`` leaves syncing entirely to the OS
        page cache — survives process crashes (the write() already
        reached the kernel) but not power loss.
    fsync_interval_seconds:
        The ``"interval"`` policy's flush period.
    compact_every_records:
        Fold the journal into a fresh snapshot automatically once it
        holds this many records, bounding both replay time and file
        growth. 0 disables auto-compaction (explicit ``compact`` RPCs
        and shutdown still compact).
    """

    fsync: str = "always"
    fsync_interval_seconds: float = 1.0
    compact_every_records: int = 1024

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if self.fsync_interval_seconds <= 0:
            raise ValueError("fsync_interval_seconds must be > 0")
        if self.compact_every_records < 0:
            raise ValueError("compact_every_records must be >= 0 (0 = off)")


def static_chunks(items: list, workers: int, chunk_size: int | None) -> list:
    """Split ``items`` into the legacy static chunks.

    ``chunk_size`` overrides; the default is ``ceil(n / (4 * workers))``
    — the formula the chunked scheduler has always used, shared here so
    the session's process and thread paths (and the benchmark that
    gates work-stealing against it) all chunk identically.
    """
    if not items:
        return []
    size = chunk_size or max(1, -(-len(items) // (4 * max(1, workers))))
    return [items[i : i + size] for i in range(0, len(items), size)]
